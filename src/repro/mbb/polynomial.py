"""Polynomial-time solver for near-complete bipartite subgraphs.

This module implements the heart of the dense-graph algorithm
(Observations 1-3, Lemma 3 and Algorithm 2 of the paper): when every
candidate vertex misses at most two neighbours on the other side, the
bipartite complement of the candidate subgraph has maximum degree at most
two and therefore decomposes into disjoint paths and cycles.  Picking a
biclique in the original subgraph is then equivalent to picking an
*independent set* in that complement — the forbidden pairs are exactly the
complement edges — and independent sets on paths and cycles are polynomial.

The solver computes, for each complement component, the Pareto frontier of
``(left vertices chosen, right vertices chosen)`` over its independent
sets, combines the components with a dynamic program over the frontier
(the paper's table ``t``), adds back the "trivial" vertices with no missing
neighbour, and returns the best achievable balanced biclique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph, iter_bits
from repro.mbb.context import SearchContext
from repro.mbb.reductions import BitNodeState, NodeState
from repro.mbb.result import Biclique

VertexKey = Tuple[str, Vertex]


@dataclass(frozen=True)
class _Choice:
    """One Pareto point: how many vertices of each side and which ones."""

    a: int
    b: int
    witness: FrozenSet[VertexKey]

    def extend(self, key: VertexKey) -> "_Choice":
        """Return a new choice with ``key`` added to the selection."""
        if key[0] == LEFT:
            return _Choice(self.a + 1, self.b, self.witness | {key})
        return _Choice(self.a, self.b + 1, self.witness | {key})


_EMPTY_CHOICE = _Choice(0, 0, frozenset())


def _pareto(choices: Sequence[_Choice]) -> List[_Choice]:
    """Keep only Pareto-maximal ``(a, b)`` choices (ties keep one witness)."""
    best_b_for_a: Dict[int, _Choice] = {}
    for choice in choices:
        incumbent = best_b_for_a.get(choice.a)
        if incumbent is None or choice.b > incumbent.b:
            best_b_for_a[choice.a] = choice
    result: List[_Choice] = []
    best_b = -1
    for a in sorted(best_b_for_a, reverse=True):
        choice = best_b_for_a[a]
        if choice.b > best_b:
            result.append(choice)
            best_b = choice.b
    return result


def missing_neighbors(
    graph: BipartiteGraph, state: NodeState
) -> Dict[VertexKey, Set[VertexKey]]:
    """Complement adjacency restricted to the candidate sets of ``state``."""
    complement: Dict[VertexKey, Set[VertexKey]] = {}
    for u in state.ca:
        missing = state.cb - graph.neighbors_left(u)
        complement[(LEFT, u)] = {(RIGHT, v) for v in missing}
    for v in state.cb:
        missing = state.ca - graph.neighbors_right(v)
        complement[(RIGHT, v)] = {(LEFT, u) for u in missing}
    return complement


def is_polynomially_solvable(graph: BipartiteGraph, state: NodeState) -> bool:
    """Lemma 3 precondition: every candidate misses at most two neighbours."""
    for u in state.ca:
        if len(state.cb - graph.neighbors_left(u)) > 2:
            return False
    for v in state.cb:
        if len(state.ca - graph.neighbors_right(v)) > 2:
            return False
    return True


def _component_sequences(
    complement: Dict[VertexKey, Set[VertexKey]],
) -> List[Tuple[List[VertexKey], bool]]:
    """Split the complement into components and linearise each one.

    Returns a list of ``(sequence, is_cycle)`` pairs.  Every component of a
    graph with maximum degree two is a simple path or a simple cycle, so a
    walk from an endpoint (or from an arbitrary vertex for cycles) visits
    each vertex exactly once.
    """
    non_trivial = {key for key, misses in complement.items() if misses}
    seen: Set[VertexKey] = set()
    components: List[Tuple[List[VertexKey], bool]] = []
    for start in sorted(non_trivial, key=repr):
        if start in seen:
            continue
        # Collect the whole component first.
        stack = [start]
        members: Set[VertexKey] = {start}
        while stack:
            current = stack.pop()
            for neighbour in complement[current]:
                if neighbour not in members:
                    members.add(neighbour)
                    stack.append(neighbour)
        seen |= members
        endpoints = sorted(
            (key for key in members if len(complement[key] & members) <= 1),
            key=repr,
        )
        is_cycle = not endpoints
        first = endpoints[0] if endpoints else sorted(members, key=repr)[0]
        # Walk along the path/cycle.
        sequence = [first]
        visited = {first}
        current = first
        while True:
            next_candidates = [
                key for key in complement[current] if key in members and key not in visited
            ]
            if not next_candidates:
                break
            current = sorted(next_candidates, key=repr)[0]
            sequence.append(current)
            visited.add(current)
        components.append((sequence, is_cycle))
    return components


def _path_choices(sequence: Sequence[VertexKey]) -> List[_Choice]:
    """Pareto frontier of independent-set selections along a path."""
    if not sequence:
        return [_EMPTY_CHOICE]
    taken: List[_Choice] = []
    not_taken: List[_Choice] = [_EMPTY_CHOICE]
    for key in sequence:
        new_taken = _pareto([choice.extend(key) for choice in not_taken])
        new_not_taken = _pareto(taken + not_taken)
        taken, not_taken = new_taken, new_not_taken
    return _pareto(taken + not_taken)


def _cycle_choices(sequence: Sequence[VertexKey]) -> List[_Choice]:
    """Pareto frontier of independent-set selections around a cycle."""
    if len(sequence) <= 2:
        # Complement multi-edges cannot occur in a simple bipartite graph;
        # a "cycle" this short degenerates to a path.
        return _path_choices(sequence)
    first = sequence[0]
    without_first = _path_choices(sequence[1:])
    inner = _path_choices(sequence[2:-1])
    with_first = [choice.extend(first) for choice in inner]
    return _pareto(without_first + with_first)


def component_choices(
    sequence: Sequence[VertexKey], is_cycle: bool
) -> List[_Choice]:
    """Pareto ``(a, b)`` selections for one complement path or cycle."""
    if is_cycle:
        return _cycle_choices(sequence)
    return _path_choices(sequence)


def _best_improving_choice(
    complement: Dict[VertexKey, Set[VertexKey]],
    base_left: int,
    base_right: int,
    context: SearchContext,
) -> Optional[_Choice]:
    """Run the component DP and pick the best incumbent-beating choice.

    ``base_left`` / ``base_right`` count the vertices that are selected
    unconditionally (the partial sides plus the trivial candidates with no
    missing neighbour).  Returns ``None`` when even the unconstrained
    optimum of the node does not improve on the incumbent.
    """
    frontier: List[_Choice] = [_EMPTY_CHOICE]
    for sequence, is_cycle in _component_sequences(complement):
        options = component_choices(sequence, is_cycle)
        combined: List[_Choice] = []
        for base in frontier:
            for option in options:
                combined.append(
                    _Choice(
                        base.a + option.a,
                        base.b + option.b,
                        base.witness | option.witness,
                    )
                )
        frontier = _pareto(combined)

    best_choice: Optional[_Choice] = None
    best_side = context.best_side
    for choice in frontier:
        side = min(base_left + choice.a, base_right + choice.b)
        if side > best_side:
            best_side = side
            best_choice = choice
    return best_choice


def _assemble(
    left: Set[Vertex],
    right: Set[Vertex],
    choice: _Choice,
) -> Biclique:
    """Materialise the selected witness on top of the unconditional picks."""
    for side_tag, label in choice.witness:
        if side_tag == LEFT:
            left.add(label)
        else:
            right.add(label)
    return Biclique.of(left, right).balanced()


def solve_polynomial_case(
    graph: BipartiteGraph,
    state: NodeState,
    context: SearchContext,
) -> Optional[Biclique]:
    """Solve a node whose candidate subgraph satisfies Lemma 3 exactly.

    Returns the best balanced biclique extending ``(A, B)`` inside the
    candidate sets, or ``None`` when even the best extension does not beat
    the incumbent stored in ``context``.  The caller is responsible for
    offering the returned biclique to the context.
    """
    complement = missing_neighbors(graph, state)
    trivial_left = [u for u in state.ca if not complement[(LEFT, u)]]
    trivial_right = [v for v in state.cb if not complement[(RIGHT, v)]]

    best_choice = _best_improving_choice(
        complement,
        len(state.a) + len(trivial_left),
        len(state.b) + len(trivial_right),
        context,
    )
    if best_choice is None:
        return None
    left = set(state.a) | set(trivial_left)
    right = set(state.b) | set(trivial_right)
    return _assemble(left, right, best_choice)


#: Mask-based Pareto point used by the bitset polynomial solver: ``(left
#: count, right count, left witness mask, right witness mask)``.  Witness
#: union is two integer ``|`` operations, which is what makes the bitset
#: DP markedly cheaper than the frozenset-witness version above.
_MaskChoice = Tuple[int, int, int, int]

_EMPTY_MASK_CHOICE: _MaskChoice = (0, 0, 0, 0)


def _pareto_masks(choices: List[_MaskChoice]) -> List[_MaskChoice]:
    """Keep only Pareto-maximal ``(a, b)`` mask choices."""
    if len(choices) <= 1:
        return choices
    best_b_for_a: Dict[int, _MaskChoice] = {}
    for choice in choices:
        incumbent = best_b_for_a.get(choice[0])
        if incumbent is None or choice[1] > incumbent[1]:
            best_b_for_a[choice[0]] = choice
    result: List[_MaskChoice] = []
    best_b = -1
    for a in sorted(best_b_for_a, reverse=True):
        choice = best_b_for_a[a]
        if choice[1] > best_b:
            result.append(choice)
            best_b = choice[1]
    return result


def _path_frontier_masks(sequence: List[Tuple[bool, int]]) -> List[_MaskChoice]:
    """Pareto frontier along a complement path of ``(is_left, index)`` steps."""
    taken: List[_MaskChoice] = []
    not_taken: List[_MaskChoice] = [_EMPTY_MASK_CHOICE]
    for is_left, index in sequence:
        bit = 1 << index
        # Extending every element of a Pareto frontier by the same vertex
        # preserves Pareto-maximality, so ``new_taken`` needs no filtering.
        if is_left:
            new_taken = [(a + 1, b, lm | bit, rm) for a, b, lm, rm in not_taken]
        else:
            new_taken = [(a, b + 1, lm, rm | bit) for a, b, lm, rm in not_taken]
        not_taken = _pareto_masks(taken + not_taken) if taken else not_taken
        taken = new_taken
    return _pareto_masks(taken + not_taken)


def _cycle_frontier_masks(sequence: List[Tuple[bool, int]]) -> List[_MaskChoice]:
    """Pareto frontier around a complement cycle of ``(is_left, index)`` steps."""
    if len(sequence) <= 2:
        return _path_frontier_masks(sequence)
    is_left, index = sequence[0]
    bit = 1 << index
    without_first = _path_frontier_masks(sequence[1:])
    inner = _path_frontier_masks(sequence[2:-1])
    if is_left:
        with_first = [(a + 1, b, lm | bit, rm) for a, b, lm, rm in inner]
    else:
        with_first = [(a, b + 1, lm, rm | bit) for a, b, lm, rm in inner]
    return _pareto_masks(without_first + with_first)


def solve_polynomial_case_bits(
    graph: IndexedBitGraph,
    state: BitNodeState,
    context: SearchContext,
) -> Optional[Biclique]:
    """Bitset counterpart of :func:`solve_polynomial_case`.

    The complement of the candidate subgraph is read straight off the
    adjacency masks (``cb & ~adj[u]``), its path/cycle components are
    walked on masks, and the Pareto dynamic program carries its witnesses
    as two integer masks.  No per-vertex hash sets or label tuples are
    built, which matters because dense searches spend a large share of
    their time in this polynomial case.
    """
    adj_left = graph.adj_left
    adj_right = graph.adj_right
    ca = state.ca
    cb = state.cb

    miss_left: Dict[int, int] = {}
    miss_right: Dict[int, int] = {}
    trivial_left_mask = 0
    trivial_right_mask = 0
    for i in iter_bits(ca):
        missing = cb & ~adj_left[i]
        if missing:
            miss_left[i] = missing
        else:
            trivial_left_mask |= 1 << i
    for j in iter_bits(cb):
        missing = ca & ~adj_right[j]
        if missing:
            miss_right[j] = missing
        else:
            trivial_right_mask |= 1 << j

    # Walk the complement's components.  Max degree two means every
    # component is a simple path (start from a degree-<=1 endpoint) or a
    # simple cycle (whatever remains afterwards).
    visited_left = 0
    visited_right = 0

    def walk(is_left: bool, index: int) -> List[Tuple[bool, int]]:
        nonlocal visited_left, visited_right
        sequence: List[Tuple[bool, int]] = []
        while True:
            sequence.append((is_left, index))
            if is_left:
                visited_left |= 1 << index
                next_mask = miss_left[index] & ~visited_right
            else:
                visited_right |= 1 << index
                next_mask = miss_right[index] & ~visited_left
            if not next_mask:
                return sequence
            low = next_mask & -next_mask
            index = low.bit_length() - 1
            is_left = not is_left
        # unreachable

    frontier: List[_MaskChoice] = [_EMPTY_MASK_CHOICE]

    def fold(options: List[_MaskChoice]) -> None:
        nonlocal frontier
        frontier = _pareto_masks(
            [
                (a1 + a2, b1 + b2, l1 | l2, r1 | r2)
                for a1, b1, l1, r1 in frontier
                for a2, b2, l2, r2 in options
            ]
        )

    for i, missing in miss_left.items():
        if visited_left >> i & 1 or missing.bit_count() > 1:
            continue
        fold(_path_frontier_masks(walk(True, i)))
    for j, missing in miss_right.items():
        if visited_right >> j & 1 or missing.bit_count() > 1:
            continue
        fold(_path_frontier_masks(walk(False, j)))
    for i in miss_left:
        if not visited_left >> i & 1:
            fold(_cycle_frontier_masks(walk(True, i)))
    for j in miss_right:
        if not visited_right >> j & 1:
            fold(_cycle_frontier_masks(walk(False, j)))

    base_left_mask = state.a | trivial_left_mask
    base_right_mask = state.b | trivial_right_mask
    base_left = base_left_mask.bit_count()
    base_right = base_right_mask.bit_count()
    best_side = context.best_side
    best_choice: Optional[_MaskChoice] = None
    for choice in frontier:
        side = min(base_left + choice[0], base_right + choice[1])
        if side > best_side:
            best_side = side
            best_choice = choice
    if best_choice is None:
        # Even the unconstrained optimum of this node does not improve on
        # the incumbent.
        return None
    return Biclique.of(
        graph.left_labels_of(base_left_mask | best_choice[2]),
        graph.right_labels_of(base_right_mask | best_choice[3]),
    ).balanced()


def maximum_balanced_biclique_near_complete(
    graph: BipartiteGraph,
) -> Biclique:
    """Convenience wrapper: solve a whole near-complete graph directly.

    The graph must satisfy the Lemma 3 condition globally (every vertex
    misses at most two neighbours on the other side); this is the
    "sufficiently dense, solvable in polynomial time directly" case the
    paper highlights for VLSI-style instances.
    """
    state = NodeState(set(), set(), graph.left, graph.right)
    context = SearchContext()
    if not is_polynomially_solvable(graph, state):
        raise ValueError(
            "graph is not near-complete: some vertex misses more than two "
            "neighbours; use dense_mbb instead"
        )
    # The polynomial case is a single bounded pass, so one budget poll at
    # the boundary keeps deadlines and cancel hooks honoured even when
    # this wrapper is driven with an externally-shared context.
    context.checkpoint()
    result = solve_polynomial_case(graph, state, context)
    return result if result is not None else Biclique.empty()
