"""Tests for the total search orders (degree / degeneracy / bidegeneracy)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import LEFT, RIGHT
from repro.graph.generators import random_bipartite, random_power_law_bipartite
from repro.cores.orders import (
    ALL_ORDERS,
    ORDER_BIDEGENERACY,
    ORDER_DEGENERACY,
    degree_order,
    search_order,
)
from repro.mbb.vertex_centred import total_subgraph_size


class TestDegreeOrder:
    def test_non_increasing_degrees(self):
        graph = random_bipartite(8, 8, 0.4, seed=1)
        order = degree_order(graph)

        def degree(key):
            side, label = key
            return (
                graph.degree_left(label) if side == LEFT else graph.degree_right(label)
            )

        degrees = [degree(key) for key in order]
        assert degrees == sorted(degrees, reverse=True)

    def test_is_permutation(self):
        graph = random_bipartite(6, 9, 0.3, seed=2)
        order = degree_order(graph)
        assert len(order) == graph.num_vertices
        assert len(set(order)) == graph.num_vertices


class TestSearchOrderDispatch:
    @pytest.mark.parametrize("name", ALL_ORDERS)
    def test_every_order_is_a_permutation(self, name):
        graph = random_bipartite(7, 7, 0.35, seed=3)
        order = search_order(graph, name)
        assert len(order) == graph.num_vertices
        assert len(set(order)) == graph.num_vertices
        assert all(side in (LEFT, RIGHT) for side, _ in order)

    def test_unknown_order_raises(self):
        graph = random_bipartite(3, 3, 0.5, seed=1)
        with pytest.raises(InvalidParameterError):
            search_order(graph, "alphabetical")


class TestOrderQuality:
    def test_bidegeneracy_order_respects_lemma8_bound(self):
        """Lemma 8: with the bidegeneracy order the total family size is
        O((|L| + |R|) * bidegeneracy)."""
        from repro.cores.bicore import bidegeneracy

        graph = random_power_law_bipartite(120, 120, 3.0, seed=4)
        order = search_order(graph, ORDER_BIDEGENERACY)
        total = total_subgraph_size(graph, order)
        assert total <= graph.num_vertices * (bidegeneracy(graph) + 1)

    def test_bidegeneracy_order_close_to_degeneracy_order(self):
        graph = random_power_law_bipartite(120, 120, 3.0, seed=4)
        totals = {
            name: total_subgraph_size(graph, search_order(graph, name))
            for name in (ORDER_DEGENERACY, ORDER_BIDEGENERACY)
        }
        assert totals[ORDER_BIDEGENERACY] <= 1.25 * totals[ORDER_DEGENERACY]
