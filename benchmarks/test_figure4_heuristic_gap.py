"""Benchmark regenerating Figure 4: heuristic gap to the optimum.

For a set of tough dataset stand-ins, compute the side-size gap between the
optimum and (a) the global heuristic stage hMBB and (b) the local heuristic
applied during bridging.  The benchmark times the gap computation; the
reporting test prints the full series.

Expected shape (matching the paper): the local heuristic closes most of the
gap and reaches the optimum on the majority of datasets.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.analysis.metrics import heuristic_gaps
from repro.bench.figure4 import format_figure4, run_figure4
from repro.workloads.datasets import load_dataset

FIGURE_DATASETS = ("jester", "github", "flickr-groupmemberships", "reuters")


@pytest.mark.figure
@pytest.mark.parametrize("dataset", ("jester", "github"))
def test_heuristic_gap_computation(benchmark, dataset):
    """Time the heuristic-gap measurement on one tough dataset."""
    graph = load_dataset(dataset)
    gap = benchmark(lambda: heuristic_gaps(graph, time_budget=30.0))
    assert gap.optimum >= gap.local_heuristic >= 0
    assert gap.gap_local <= gap.gap_global


@pytest.mark.figure
def test_report_figure4(benchmark, capsys):
    """Regenerate and print the Figure 4 series."""
    rows = benchmark.pedantic(
        lambda: run_figure4(FIGURE_DATASETS, time_budget=15.0), rounds=1, iterations=1
    )
    # The local heuristic must never be worse than the global one, and must
    # reach the optimum on at least one dataset (the paper reports 9/12).
    assert all(row["gap_local"] <= row["gap_global"] for row in rows)
    assert any(row["gap_local"] == 0 for row in rows)
    with capsys.disabled():
        print("\n=== Figure 4 (stand-ins): gap to MBB ===")
        print(format_figure4(rows))
