"""Developer tooling shipped with the library.

Nothing in this package is imported by the solver runtime; it holds the
tools that keep the repository honest:

* :mod:`repro.devtools.lint` — *reprolint*, the AST-based invariant
  analyzer behind ``repro-mbb lint`` and the CI ``invariants`` job.
"""
