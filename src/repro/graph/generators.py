"""Random and structured bipartite graph generators.

Three families of generators are provided:

* **Dense uniform graphs** (:func:`random_bipartite`) mirror the synthetic
  dense workload of Table 4 in the paper (edge density 0.7-0.95, as in the
  defect-tolerance / VLSI application).
* **Sparse skewed graphs** (:func:`random_power_law_bipartite`) mirror the
  KONECT web-scale datasets of Table 5: heavy-tailed degree distributions,
  very low density, unbalanced side sizes.
* **Structured graphs** (complete, crown, paths, cycles, planted bicliques)
  are used as test oracles because their maximum balanced biclique is known
  in closed form.

All generators accept either an integer ``seed`` or a pre-built
:class:`random.Random` instance so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, Union

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph

RandomLike = Union[int, random.Random, None]


def _resolve_rng(seed: RandomLike) -> random.Random:
    """Return a :class:`random.Random` for ``seed`` (int, Random, or None)."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _check_sizes(n_left: int, n_right: int) -> None:
    if n_left < 0 or n_right < 0:
        raise InvalidParameterError(
            f"side sizes must be non-negative, got ({n_left}, {n_right})"
        )


# ----------------------------------------------------------------------
# random graphs
# ----------------------------------------------------------------------
def random_bipartite(
    n_left: int,
    n_right: int,
    density: float,
    seed: RandomLike = None,
) -> BipartiteGraph:
    """Uniform random bipartite graph with the given edge density.

    Every pair ``(u, v)`` is an edge independently with probability
    ``density``.  This is the generator used for the dense suite (Table 4),
    following the construction of the defect-tolerance literature the paper
    cites: a random biadjacency matrix with a fixed fraction of ones.

    Parameters
    ----------
    n_left, n_right:
        Side sizes.
    density:
        Edge probability in ``[0, 1]``.
    seed:
        Seed or random generator for reproducibility.
    """
    _check_sizes(n_left, n_right)
    if not 0.0 <= density <= 1.0:
        raise InvalidParameterError(f"density must be in [0, 1], got {density}")
    rng = _resolve_rng(seed)
    graph = BipartiteGraph(left=range(n_left), right=range(n_right))
    for u in range(n_left):
        for v in range(n_right):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


def random_bipartite_with_edge_count(
    n_left: int,
    n_right: int,
    n_edges: int,
    seed: RandomLike = None,
) -> BipartiteGraph:
    """Random bipartite graph with exactly ``n_edges`` distinct edges."""
    _check_sizes(n_left, n_right)
    max_edges = n_left * n_right
    if not 0 <= n_edges <= max_edges:
        raise InvalidParameterError(
            f"n_edges must be in [0, {max_edges}], got {n_edges}"
        )
    rng = _resolve_rng(seed)
    graph = BipartiteGraph(left=range(n_left), right=range(n_right))
    if n_edges > max_edges // 2:
        # Sample the complement when the graph is dense to avoid rejection.
        missing = set()
        while len(missing) < max_edges - n_edges:
            missing.add((rng.randrange(n_left), rng.randrange(n_right)))
        for u in range(n_left):
            for v in range(n_right):
                if (u, v) not in missing:
                    graph.add_edge(u, v)
        return graph
    chosen = set()
    while len(chosen) < n_edges:
        chosen.add((rng.randrange(n_left), rng.randrange(n_right)))
    for u, v in chosen:
        graph.add_edge(u, v)
    return graph


def random_power_law_bipartite(
    n_left: int,
    n_right: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: RandomLike = None,
) -> BipartiteGraph:
    """Sparse bipartite graph with heavy-tailed degrees on both sides.

    The generator draws a Zipf-like weight ``w_i ~ i^(-1/(exponent-1))`` for
    every vertex on each side and places edges by sampling endpoints
    proportionally to those weights (a bipartite Chung-Lu construction).
    The result mimics the KONECT interaction networks used in Table 5:
    most vertices have a handful of edges, a few hubs have thousands.

    Parameters
    ----------
    avg_degree:
        Target average left-side degree; the number of sampled edges is
        ``round(n_left * avg_degree)`` (duplicates are discarded so the
        realised average is slightly lower, as in real trace data).
    exponent:
        Power-law exponent of the weight sequence; 2.0-2.5 matches the
        datasets the paper evaluates.
    """
    _check_sizes(n_left, n_right)
    if avg_degree < 0:
        raise InvalidParameterError(f"avg_degree must be >= 0, got {avg_degree}")
    if exponent <= 1.0:
        raise InvalidParameterError(f"exponent must be > 1, got {exponent}")
    rng = _resolve_rng(seed)
    graph = BipartiteGraph(left=range(n_left), right=range(n_right))
    if n_left == 0 or n_right == 0 or avg_degree == 0:
        return graph

    def weights(count: int) -> Sequence[float]:
        alpha = 1.0 / (exponent - 1.0)
        return [(i + 1) ** (-alpha) for i in range(count)]

    left_weights = weights(n_left)
    right_weights = weights(n_right)
    target_edges = int(round(n_left * avg_degree))
    target_edges = min(target_edges, n_left * n_right)
    left_choices = rng.choices(range(n_left), weights=left_weights, k=target_edges)
    right_choices = rng.choices(range(n_right), weights=right_weights, k=target_edges)
    for u, v in zip(left_choices, right_choices, strict=True):
        graph.add_edge(u, v)
    return graph


def planted_balanced_biclique(
    n_left: int,
    n_right: int,
    planted_size: int,
    background_density: float = 0.05,
    seed: RandomLike = None,
) -> BipartiteGraph:
    """Random background graph with a planted balanced biclique.

    A ``planted_size`` × ``planted_size`` complete biclique is embedded on
    the first vertices of each side and the remaining pairs are filled
    uniformly at random with probability ``background_density``.  When the
    background density is low the planted biclique is (with overwhelming
    probability) the unique maximum balanced biclique, which makes this
    generator the workhorse of the heuristic-gap experiments (Figure 4) and
    of property tests that need graphs with a known optimum lower bound.
    """
    _check_sizes(n_left, n_right)
    if planted_size < 0 or planted_size > min(n_left, n_right):
        raise InvalidParameterError(
            f"planted_size must be in [0, {min(n_left, n_right)}], got {planted_size}"
        )
    rng = _resolve_rng(seed)
    graph = random_bipartite(n_left, n_right, background_density, seed=rng)
    for u in range(planted_size):
        for v in range(planted_size):
            graph.add_edge(u, v)
    return graph


def random_near_complete_bipartite(
    n_left: int,
    n_right: int,
    max_missing: int = 2,
    seed: RandomLike = None,
) -> BipartiteGraph:
    """Complete bipartite graph with up to ``max_missing`` edges removed per vertex.

    Each vertex loses a uniformly random number (``0..max_missing``) of its
    incident edges, subject to the other endpoint also staying within its
    own missing budget.  With ``max_missing=2`` every instance satisfies the
    precondition of Lemma 3, which makes this the canonical workload for
    unit-testing the polynomial solver against brute force.
    """
    _check_sizes(n_left, n_right)
    if max_missing < 0:
        raise InvalidParameterError(f"max_missing must be >= 0, got {max_missing}")
    rng = _resolve_rng(seed)
    graph = complete_bipartite(n_left, n_right)
    missing_budget_left = {u: rng.randint(0, max_missing) for u in range(n_left)}
    missing_budget_right = {v: rng.randint(0, max_missing) for v in range(n_right)}
    removed_left = {u: 0 for u in range(n_left)}
    removed_right = {v: 0 for v in range(n_right)}
    pairs = [(u, v) for u in range(n_left) for v in range(n_right)]
    rng.shuffle(pairs)
    for u, v in pairs:
        if (
            removed_left[u] < missing_budget_left[u]
            and removed_right[v] < missing_budget_right[v]
        ):
            graph.remove_edge(u, v)
            removed_left[u] += 1
            removed_right[v] += 1
    return graph


# ----------------------------------------------------------------------
# structured graphs with known optima
# ----------------------------------------------------------------------
def complete_bipartite(n_left: int, n_right: int) -> BipartiteGraph:
    """The complete bipartite graph ``K_{n_left, n_right}``.

    Its maximum balanced biclique has side size ``min(n_left, n_right)``.
    """
    _check_sizes(n_left, n_right)
    graph = BipartiteGraph(left=range(n_left), right=range(n_right))
    for u in range(n_left):
        for v in range(n_right):
            graph.add_edge(u, v)
    return graph


def crown_graph(n: int) -> BipartiteGraph:
    """Complete bipartite graph ``K_{n,n}`` minus a perfect matching.

    The bipartite complement is a perfect matching, so the crown graph is
    the extreme instance of the "missing at most one neighbour" regime.  A
    biclique may contain at most one endpoint of every complement matching
    edge, i.e. the chosen left indices and right indices must be disjoint
    subsets of ``{0, .., n-1}``.  The maximum balanced biclique therefore
    has side size exactly ``n // 2`` — a closed-form oracle used by the
    tests of the polynomial-case solver.
    """
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    graph = BipartiteGraph(left=range(n), right=range(n))
    for u in range(n):
        for v in range(n):
            if u != v:
                graph.add_edge(u, v)
    return graph


def path_bipartite(length: int) -> BipartiteGraph:
    """A path with ``length`` edges, 2-coloured into a bipartite graph.

    Vertices at even positions go to the left side, odd positions to the
    right side.  Left labels are ``0, 1, ...`` and right labels are
    ``0, 1, ...`` in path order.
    """
    if length < 0:
        raise InvalidParameterError(f"length must be >= 0, got {length}")
    graph = BipartiteGraph()
    graph.add_left_vertex(0, exist_ok=True)
    for i in range(length):
        if i % 2 == 0:
            # edge between path vertex i (left, index i//2) and i+1 (right).
            graph.add_edge(i // 2, i // 2)
        else:
            # edge between path vertex i (right, index i//2) and i+1 (left).
            graph.add_edge((i + 1) // 2, i // 2)
    return graph


def cycle_bipartite(length: int) -> BipartiteGraph:
    """An even cycle with ``length`` edges as a bipartite graph.

    ``length`` must be even and at least 4.  Left vertices are
    ``0..length/2-1`` and right vertices likewise; edges connect ``i`` with
    ``i`` and ``i`` with ``(i+1) mod length/2``.
    """
    if length < 4 or length % 2 != 0:
        raise InvalidParameterError(
            f"cycle length must be an even integer >= 4, got {length}"
        )
    half = length // 2
    graph = BipartiteGraph(left=range(half), right=range(half))
    for i in range(half):
        graph.add_edge(i, i)
        graph.add_edge((i + 1) % half, i)
    return graph


def star_bipartite(n_leaves: int) -> BipartiteGraph:
    """A star: one left vertex connected to ``n_leaves`` right vertices.

    Its maximum balanced biclique is a single edge (side size 1) whenever
    ``n_leaves >= 1``.
    """
    if n_leaves < 0:
        raise InvalidParameterError(f"n_leaves must be >= 0, got {n_leaves}")
    graph = BipartiteGraph(left=[0], right=range(n_leaves))
    for v in range(n_leaves):
        graph.add_edge(0, v)
    return graph


def grid_union_of_bicliques(
    block_sizes: Sequence[int],
    seed: RandomLike = None,
    noise_edges: int = 0,
) -> BipartiteGraph:
    """Disjoint union of complete bicliques plus optional random noise edges.

    The optimum balanced biclique side size is ``max(block_sizes)`` as long
    as the noise does not merge blocks into something larger, which is the
    case for the small noise levels used in tests.  Blocks are laid out on
    consecutive vertex ranges.
    """
    rng = _resolve_rng(seed)
    graph = BipartiteGraph()
    offset_left = 0
    offset_right = 0
    for size in block_sizes:
        if size < 0:
            raise InvalidParameterError(f"block sizes must be >= 0, got {size}")
        for u in range(offset_left, offset_left + size):
            for v in range(offset_right, offset_right + size):
                graph.add_edge(u, v)
        offset_left += size
        offset_right += size
    total_left = max(offset_left, 1)
    total_right = max(offset_right, 1)
    for _ in range(noise_edges):
        graph.add_edge(rng.randrange(total_left), rng.randrange(total_right))
    return graph


def expected_dense_mbb_side(n: int, density: float) -> int:
    """Rough analytic estimate of the MBB side size in a random dense graph.

    For a uniform random bipartite graph ``G(n, n, p)`` the expected number
    of balanced bicliques with side ``k`` is ``C(n,k)^2 * p^(k*k)``; the
    largest ``k`` for which this exceeds one is a standard first-moment
    estimate of the optimum.  The benchmark harness uses it only to label
    table rows, never for correctness.
    """
    if n <= 0 or density <= 0.0:
        return 0
    if density >= 1.0:
        return n
    best = 0
    for k in range(1, n + 1):
        log_count = 2 * (
            math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
        ) + k * k * math.log(density)
        if log_count >= 0:
            best = k
        else:
            break
    return best
