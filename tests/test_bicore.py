"""Tests for bicore decomposition, bidegeneracy and the bidegeneracy order."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    path_bipartite,
    random_bipartite,
    random_power_law_bipartite,
    star_bipartite,
)
from repro.cores.bicore import (
    ALL_IMPLS,
    IMPL_BUCKET,
    IMPL_EXACT,
    IMPL_HEAP,
    bicore_decomposition,
    bicore_numbers,
    bidegeneracy,
    bidegeneracy_order,
    residual_bicore_numbers,
)
from repro.cores.two_hop import n_le2_adjacency, n_le2_neighbors, n_le2_sizes


def _build_corpus():
    graphs = []
    for seed in range(6):
        graphs.append(random_bipartite(6, 6, 0.35, seed=seed))
        graphs.append(random_bipartite(5, 9, 0.25, seed=seed))
        graphs.append(random_power_law_bipartite(12, 12, 2.0, seed=seed))
    return tuple(graphs)


#: Random-graph corpus shared by the impl-equivalence properties — built
#: once; every consumer only reads the graphs.
GRAPH_CORPUS = _build_corpus()


class TestBicoreNumbers:
    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 4)
        numbers = bicore_numbers(graph)
        # Every vertex sees the whole graph within two hops: |N_<=2| = 6.
        assert all(value == 6 for value in numbers.values())

    def test_star_graph(self):
        graph = star_bipartite(5)
        numbers = bicore_numbers(graph)
        # The centre sees its 5 leaves; every leaf sees the centre plus the
        # other 4 leaves, so all |N_<=2| values are 5 and never drop below
        # the final peel value.
        assert numbers[(LEFT, 0)] == 5
        assert all(numbers[(RIGHT, v)] == 5 for v in range(5))

    def test_single_edge(self):
        graph = BipartiteGraph(edges=[(0, 0)])
        numbers = bicore_numbers(graph)
        assert numbers == {(LEFT, 0): 1, (RIGHT, 0): 1}

    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_empty_graph(self, impl):
        assert bicore_numbers(BipartiteGraph(), impl=impl) == {}
        assert bidegeneracy_order(BipartiteGraph(), impl=impl) == []

    def test_unknown_impl_raises(self):
        with pytest.raises(InvalidParameterError):
            bicore_numbers(random_bipartite(3, 3, 0.5, seed=0), impl="quantum")

    @pytest.mark.parametrize("seed", range(4))
    def test_bicore_at_least_core_like_lower_bounds(self, seed):
        graph = random_bipartite(8, 8, 0.3, seed=seed)
        numbers = bicore_numbers(graph)
        sizes = n_le2_sizes(graph)
        for key, value in numbers.items():
            # A vertex's bicore number can never exceed its |N_<=2| in the
            # full graph, and is never negative.
            assert 0 <= value <= sizes[key]


class TestImplEquivalence:
    """Bucket peel ≡ heap peel ≡ exact oracle, numbers *and* order."""

    @pytest.mark.parametrize("index", range(18))
    def test_all_impls_agree_exactly(self, index):
        graph = GRAPH_CORPUS[index]
        bucket = bicore_decomposition(graph, impl=IMPL_BUCKET)
        heap = bicore_decomposition(graph, impl=IMPL_HEAP)
        exact = bicore_decomposition(graph, impl=IMPL_EXACT)
        # Same bicore numbers AND the identical peel order: all three
        # share the (|N_<=2|, 1-hop degree, id) priority bit for bit.
        assert bucket == heap == exact

    def test_impls_agree_on_mixed_label_types(self):
        # int and str labels cannot be compared directly; the repr-based
        # tie-break (= the CSR id order) must still give one total order.
        graph = BipartiteGraph(
            edges=[(1, "a"), ("x", "a"), (1, "b"), ("x", "b"), (2, "a"), (10, "b")]
        )
        bucket = bicore_decomposition(graph, impl=IMPL_BUCKET)
        heap = bicore_decomposition(graph, impl=IMPL_HEAP)
        exact = bicore_decomposition(graph, impl=IMPL_EXACT)
        assert bucket == heap == exact

    @pytest.mark.parametrize("index", range(0, 18, 3))
    def test_order_validity_invariant(self, index):
        """Each peeled vertex has minimum remaining |N_<=2| at its step.

        "Remaining" means within the materialised N_<=2 graph restricted
        to the survivors — the graph the peel removes vertices from.
        """
        graph = GRAPH_CORPUS[index]
        adjacency = n_le2_adjacency(graph)
        order = bidegeneracy_order(graph)
        alive = set(adjacency)
        for key in order:
            remaining = {k: len(adjacency[k] & alive) for k in alive}
            assert remaining[key] == min(remaining.values())
            alive.discard(key)

    @pytest.mark.parametrize("index", range(0, 18, 2))
    def test_residual_reference_agrees_on_numbers(self, index):
        """Cross-check against the Definition-level residual recompute.

        Re-deriving N_<=2 on the residual bipartite graph can peel ties in
        a different order (a removal may sever 2-hop pairs it bridged),
        but the bicore numbers — the quantities δ̈ and Lemma 8 depend on —
        must match the materialised peel's.
        """
        graph = GRAPH_CORPUS[index]
        assert bicore_numbers(graph) == residual_bicore_numbers(graph)

    def test_decomposition_number_is_running_max_of_order(self):
        graph = random_bipartite(8, 8, 0.35, seed=11)
        numbers, order = bicore_decomposition(graph)
        assert list(numbers) != []
        values = [numbers[key] for key in order]
        # Peel order yields non-decreasing bicore numbers (running max).
        assert values == sorted(values)


class TestBidegeneracy:
    def test_monotone_under_edge_addition(self):
        graph = random_bipartite(8, 8, 0.2, seed=3)
        before = bidegeneracy(graph)
        denser = graph.copy()
        for u in range(4):
            for v in range(4):
                denser.add_edge(u, v)
        assert bidegeneracy(denser) >= before

    def test_path_bidegeneracy_small(self):
        assert bidegeneracy(path_bipartite(6)) <= 4

    def test_empty_graph(self):
        assert bidegeneracy(BipartiteGraph()) == 0

    def test_bidegeneracy_at_least_balanced_biclique_bound(self):
        # A planted K_{4,4} forces every planted vertex to have |N_<=2| >= 7
        # inside the block, so the bidegeneracy is at least 7.
        graph = complete_bipartite(4, 4)
        assert bidegeneracy(graph) == 7


class TestBidegeneracyOrder:
    @pytest.mark.parametrize("seed", range(5))
    def test_is_permutation(self, seed):
        graph = random_bipartite(7, 7, 0.35, seed=seed)
        order = bidegeneracy_order(graph)
        assert len(order) == graph.num_vertices
        assert len(set(order)) == graph.num_vertices

    @pytest.mark.parametrize("seed", range(5))
    def test_suffix_n_le2_bounded_by_bidegeneracy(self, seed):
        """Definition 5: each vertex minimises |N_<=2| in its suffix subgraph."""
        graph = random_bipartite(7, 7, 0.35, seed=seed)
        order = bidegeneracy_order(graph)
        delta = bidegeneracy(graph)
        for index, key in enumerate(order):
            suffix = order[index:]
            left = [label for side, label in suffix if side == LEFT]
            right = [label for side, label in suffix if side == RIGHT]
            sub = graph.induced_subgraph(left, right)
            side, label = key
            if side == LEFT and not sub.has_left_vertex(label):
                continue
            if side == RIGHT and not sub.has_right_vertex(label):
                continue
            size = len(n_le2_neighbors(sub, side, label))
            assert size <= delta
