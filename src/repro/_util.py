"""Small internal utilities shared across the library."""

from __future__ import annotations

import sys


def ensure_recursion_limit(minimum: int) -> None:
    """Raise the interpreter recursion limit to at least ``minimum``.

    The branch-and-bound solvers recurse once per decision, so their depth
    is bounded by the number of vertices; Python's default limit of 1000 is
    too small for graphs with a few thousand vertices.  Raising the limit
    is global to the interpreter but never lowers it.
    """
    if sys.getrecursionlimit() < minimum:
        sys.setrecursionlimit(minimum)


def recursion_headroom_for(num_vertices: int) -> int:
    """Recursion limit needed for a solver run on ``num_vertices`` vertices."""
    return 4 * num_vertices + 1000
