"""Brute-force maximum balanced biclique oracle.

The oracle enumerates subsets of the smaller side, computes the common
neighbourhood of each subset on the other side, and keeps the best balanced
result.  It shares no code with the optimised solvers, which makes it a
genuinely independent ground truth for the test suite; it is exponential
and intended only for graphs with at most ~20 vertices on the smaller side.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.mbb.result import Biclique

#: Hard cap on the enumeration side size; beyond this the oracle refuses to
#: run instead of silently taking hours.
MAX_ORACLE_SIDE = 22


def brute_force_mbb(
    graph: BipartiteGraph,
    *,
    max_side: int = MAX_ORACLE_SIDE,
) -> Biclique:
    """Exact maximum balanced biclique by exhaustive subset enumeration.

    Parameters
    ----------
    graph:
        The bipartite graph to solve.
    max_side:
        Safety cap on the size of the enumerated side; a graph whose
        *smaller* side exceeds it raises :class:`InvalidParameterError`.
    """
    if graph.num_left == 0 or graph.num_right == 0:
        return Biclique.empty()

    # Enumerate over the smaller side, reading neighbourhoods on the other.
    if graph.num_left <= graph.num_right:
        enumerate_left = True
        base = sorted(graph.left, key=repr)
        neighbours = {u: frozenset(graph.neighbors_left(u)) for u in base}
    else:
        enumerate_left = False
        base = sorted(graph.right, key=repr)
        neighbours = {v: frozenset(graph.neighbors_right(v)) for v in base}

    if len(base) > max_side:
        raise InvalidParameterError(
            f"brute-force oracle limited to {max_side} vertices on the "
            f"enumerated side, got {len(base)}"
        )

    best = Biclique.empty()
    # Try subset sizes from large to small so the first feasible size wins.
    for k in range(len(base), 0, -1):
        if k <= best.side_size:
            break
        found: Optional[Biclique] = None
        for subset in combinations(base, k):
            common = neighbours[subset[0]]
            for vertex in subset[1:]:
                common = common & neighbours[vertex]
                if len(common) < k:
                    break
            if len(common) >= k:
                if enumerate_left:
                    found = Biclique.of(subset, list(common)[:k])
                else:
                    found = Biclique.of(list(common)[:k], subset)
                break
        if found is not None:
            best = found
            break
    return best


def brute_force_side_size(graph: BipartiteGraph, *, max_side: int = MAX_ORACLE_SIDE) -> int:
    """Side size of the maximum balanced biclique (see :func:`brute_force_mbb`)."""
    return brute_force_mbb(graph, max_side=max_side).side_size
