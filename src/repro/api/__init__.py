"""Service API: backend registry, request/report wire format, engine.

This package is the library's service surface — the layer a CLI, a
benchmark harness or a network server builds on:

* :mod:`repro.api.registry` — named solver backends with capability
  metadata (:func:`register_backend` / :func:`get_backend` /
  :func:`available_backends`);
* :mod:`repro.api.request` — :class:`SolveRequest` / :class:`SolveReport`
  dataclasses with lossless JSON round-trips, :class:`GraphSpec` graph
  sources, and the :func:`sweep_requests` dataset-sweep expander behind
  ``repro-mbb sweep``;
* :mod:`repro.api.engine` — the :class:`MBBEngine` facade with
  :meth:`~MBBEngine.solve`, the batch-parallel
  :meth:`~MBBEngine.solve_many`, and the per-graph
  :class:`PreparedGraphCache` that amortises the
  CSR + ``N_{<=2}`` + peel pipeline across repeated solves.

Quickstart
----------
>>> from repro.api import GraphSpec, MBBEngine, SolveRequest, SolveReport
>>> request = SolveRequest(graph=GraphSpec.random(12, 12, 0.6, seed=1),
...                        backend="dense")
>>> report = MBBEngine().solve(request)
>>> report.side_size == SolveReport.from_json(report.to_json()).side_size
True
"""

from repro.api import backends as _backends  # noqa: F401  (registers built-ins)
from repro.api import parallel as _parallel  # noqa: F401  (registers S3 verifier)
from repro.api.engine import (
    MBBEngine,
    PreparedGraphCache,
    RetryPolicy,
    SharedPreparedExports,
)
from repro.api.registry import (
    BackendInfo,
    FunctionBackend,
    SolverBackend,
    available_backends,
    backend_infos,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.api.request import (
    ERROR_KINDS,
    STATUS_ABORTED,
    STATUS_ERROR,
    STATUS_OK,
    GraphSpec,
    SolveError,
    SolveReport,
    SolveRequest,
    sweep_requests,
)

__all__ = [
    "BackendInfo",
    "FunctionBackend",
    "SolverBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_infos",
    "GraphSpec",
    "SolveRequest",
    "SolveReport",
    "SolveError",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_ABORTED",
    "ERROR_KINDS",
    "sweep_requests",
    "MBBEngine",
    "PreparedGraphCache",
    "RetryPolicy",
    "SharedPreparedExports",
]
