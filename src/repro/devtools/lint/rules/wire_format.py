"""RPL008 — wire-format drift between dataclasses and their JSON codecs.

``SolveRequest`` / ``SolveReport`` / ``GraphSpec`` are the repository's
wire format: batch files, sweep outputs and archived benchmark JSON all
round-trip through their ``to_dict`` / ``from_dict`` pairs, and the
documented contract is *lossless* (``from_dict(to_dict(x)) == x``).
That contract silently forks the moment someone adds a dataclass field
and forgets one side of the codec — the field serialises as missing (or
deserialises to its default) and no test notices until an archived file
is reloaded months later.

The rule discovers every dataclass in ``src/`` that defines **both**
``to_dict`` and ``from_dict`` (opt-in by shape: a one-way exporter like
``BackendInfo.to_dict`` is not a round-trip contract) and checks each
side:

* ``to_dict`` covers all fields if it iterates ``fields(self)`` /
  ``fields(cls)`` or calls ``asdict(self)`` (the generic idiom);
  otherwise the union of its literal dict keys and ``payload["k"] = …``
  subscript stores must include every dataclass field, and every
  written key must be backed by a field;
* ``from_dict`` covers all fields if it splats ``cls(**data)``;
  otherwise its explicit constructor keywords, ``payload["k"]``
  subscript reads and ``payload.get("k")`` calls must include every
  field.

Messages are line-free and per-field, so a baseline entry (with
justification) can accept one intentionally-virtual field without
hiding the next drift.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.lint.base import ProjectRule, register_rule
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import ClassInfo, ProjectContext

#: Where round-trip codecs are contractual (library code only).
SCOPE_PREFIX = "src/"

_GENERIC_INTROSPECTORS = frozenset({"fields", "asdict"})


def _dict_keys_written(fn_node: ast.AST) -> Set[str]:
    """String keys a method writes via dict literals or subscript stores."""
    keys: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _keys_read(fn_node: ast.AST) -> Set[str]:
    """Field names a from_dict reads: kwargs, subscripts, ``.get`` calls."""
    keys: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    keys.add(keyword.arg)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                keys.add(node.args[0].value)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
    return keys


def _uses_generic_introspection(fn_node: ast.AST) -> bool:
    """True for the ``fields(self)`` / ``asdict(self)`` idiom."""
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _GENERIC_INTROSPECTORS:
            return True
    return False


def _splats_kwargs(fn_node: ast.AST) -> bool:
    """True when any call splats ``**payload`` (the ``cls(**data)`` idiom)."""
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call) and any(
            keyword.arg is None for keyword in node.keywords
        ):
            return True
    return False


@register_rule
class WireFormatRule(ProjectRule):
    code = "RPL008"
    name = "wire-format"
    description = (
        "dataclass fields must be covered by their to_dict/from_dict pair "
        "(SolveRequest/SolveReport/GraphSpec wire format cannot drift)"
    )
    rationale = (
        "Batch files, sweep outputs and archived benchmark JSON round-trip "
        "through the to_dict/from_dict pairs of the wire dataclasses, and "
        "the documented contract is lossless. Adding a field while "
        "forgetting one side of the codec silently forks the JSON schema "
        "from the dataclass: the value vanishes on write or resets to a "
        "default on read, and nothing fails until an archived file is "
        "reloaded. The rule checks field coverage of both directions for "
        "every dataclass in src/ that ships a round-trip pair."
    )
    example = (
        "@dataclass(frozen=True)\n"
        "class SolveReport:\n"
        "    left: int\n"
        "    order_seconds: float      # new field ...\n"
        "    def to_dict(self):\n"
        "        return {'left': self.left}   # RPL008: order_seconds missing\n"
        "\n"
        "# good: iterate fields(self) (or add the key) so the codec\n"
        "# cannot drift from the dataclass\n"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if not info.relpath.startswith(SCOPE_PREFIX):
                continue
            for class_name in sorted(info.classes):
                cls = info.classes[class_name]
                if not cls.is_dataclass:
                    continue
                if "to_dict" not in cls.methods or "from_dict" not in cls.methods:
                    continue
                yield from self._check_codec(info.relpath, cls)

    def _check_codec(self, relpath: str, cls: ClassInfo) -> Iterator[Finding]:
        field_names = [name for name, _lineno in cls.fields]
        field_lines = dict(cls.fields)
        to_dict = cls.methods["to_dict"]
        from_dict = cls.methods["from_dict"]

        to_generic = _uses_generic_introspection(to_dict.node)
        written = _dict_keys_written(to_dict.node)
        if not to_generic:
            for name in field_names:
                if name not in written:
                    yield self.line_finding(
                        relpath,
                        field_lines[name],
                        1,
                        f"dataclass field '{name}' of {cls.name} is not "
                        f"written by to_dict(); the wire format silently "
                        f"drops it",
                    )
            for key in sorted(written - set(field_names)):
                yield self.project_finding(
                    relpath,
                    to_dict.node,
                    f"to_dict() of {cls.name} writes key '{key}' that is not "
                    f"a dataclass field; the JSON schema is forking from the "
                    f"dataclass",
                )

        if not _splats_kwargs(from_dict.node):
            read = _keys_read(from_dict.node)
            for name in field_names:
                if name not in read:
                    yield self.line_finding(
                        relpath,
                        field_lines[name],
                        1,
                        f"dataclass field '{name}' of {cls.name} is not read "
                        f"by from_dict(); round-trips reset it to its default",
                    )
