"""Bipartite complement graphs.

The polynomial case of the paper (Observations 1-3, Lemma 3) reasons about
the *bipartite complement* ``G̅ = (L, R, L×R \\ E)``: when every vertex of a
subgraph misses at most two neighbours on the other side, the complement has
maximum degree at most two and therefore decomposes into paths and cycles.
This module provides the complement construction plus small helpers used by
that solver and by tests.
"""

from __future__ import annotations

from repro.graph.bipartite import BipartiteGraph


def bipartite_complement(graph: BipartiteGraph) -> BipartiteGraph:
    """Return the bipartite complement of ``graph``.

    The complement keeps both vertex sides intact (including isolated
    vertices) and contains the edge ``(u, v)`` exactly when ``graph`` does
    not.

    Notes
    -----
    The construction is ``O(|L| * |R|)`` which is the size of the output.
    The dense-graph solver only complements subgraphs that already fit in
    memory as near-complete bicliques, so this is never the bottleneck.
    """
    complement = BipartiteGraph(left=graph.left, right=graph.right)
    right_all = graph.right
    for u in graph.left_vertices():
        missing = right_all - graph.neighbors_left(u)
        for v in missing:
            complement.add_edge(u, v)
    return complement


def complement_density(graph: BipartiteGraph) -> float:
    """Density of the bipartite complement, ``1 - density(graph)``.

    Returns ``0.0`` when a side is empty, mirroring
    :attr:`BipartiteGraph.density`.
    """
    if graph.num_left == 0 or graph.num_right == 0:
        return 0.0
    return 1.0 - graph.density


def missing_degree_left(graph: BipartiteGraph, u) -> int:
    """Number of right-side vertices *not* adjacent to the left vertex ``u``."""
    return graph.num_right - graph.degree_left(u)


def missing_degree_right(graph: BipartiteGraph, v) -> int:
    """Number of left-side vertices *not* adjacent to the right vertex ``v``."""
    return graph.num_left - graph.degree_right(v)


def max_missing_degree(graph: BipartiteGraph) -> int:
    """Maximum number of missing neighbours over all vertices.

    This is exactly the maximum degree of the bipartite complement and is
    the quantity Lemma 3 compares against two: a subgraph is polynomially
    solvable when ``max_missing_degree(H) <= 2``.
    """
    worst = 0
    num_right = graph.num_right
    for u in graph.left_vertices():
        worst = max(worst, num_right - graph.degree_left(u))
    num_left = graph.num_left
    for v in graph.right_vertices():
        worst = max(worst, num_left - graph.degree_right(v))
    return worst
