"""Benchmarks regenerating Table 4: dense synthetic graphs.

Per-cell benchmarks time ``denseMBB`` and ``ExtBBClq`` on uniform random
bipartite graphs across the paper's density sweep (0.70-0.95) at scaled
side sizes, and a final reporting test prints the full pivoted table.

Expected shape (matching the paper): ``denseMBB`` finishes every cell with
near-flat times across densities; ``extBBCl`` degrades with both size and
density and starts hitting the time budget.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.bench.table4 import format_table4, run_table4
from repro.mbb.dense import dense_mbb
from repro.mbb.heuristics import degree_heuristic
from repro.baselines.extbbclq import ext_bbclq
from repro.workloads.synthetic import DenseCase, dense_case_graph

#: Scaled-down sweep used by the per-cell timing benchmarks.
BENCH_SIDES = (16, 24, 32)
BENCH_DENSITIES = (0.70, 0.80, 0.90, 0.95)


@pytest.mark.table
@pytest.mark.parametrize("density", BENCH_DENSITIES)
@pytest.mark.parametrize("side", BENCH_SIDES)
def test_dense_mbb_cell(benchmark, side, density):
    """Time denseMBB on one (size, density) cell of Table 4."""
    graph = dense_case_graph(DenseCase(side=side, density=density))
    seed_biclique = degree_heuristic(graph)

    result = benchmark(lambda: dense_mbb(graph, initial_best=seed_biclique))
    assert result.optimal
    assert result.biclique.is_valid_in(graph)


@pytest.mark.table
@pytest.mark.parametrize("density", (0.70, 0.90))
@pytest.mark.parametrize("side", (16, 24))
def test_ext_bbclq_cell(benchmark, side, density, bench_time_budget):
    """Time the ExtBBClq baseline on the smaller cells (it times out beyond)."""
    graph = dense_case_graph(DenseCase(side=side, density=density))

    result = benchmark(lambda: ext_bbclq(graph, time_budget=bench_time_budget))
    assert result.biclique.is_valid_in(graph)


@pytest.mark.table
def test_report_table4(benchmark, capsys):
    """Regenerate and print the full (scaled) Table 4."""
    rows = benchmark.pedantic(
        lambda: run_table4(
            sides=BENCH_SIDES, densities=BENCH_DENSITIES, time_budget=5.0, instances=1
        ),
        rounds=1,
        iterations=1,
    )
    dense_rows = [r for r in rows if r["algorithm"] == "denseMBB"]
    # denseMBB must finish every cell within the budget — the paper's key claim.
    assert all(not row["timed_out"] for row in dense_rows)
    with capsys.disabled():
        print("\n=== Table 4 (scaled): running time in seconds ===")
        print(format_table4(rows))
