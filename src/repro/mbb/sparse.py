"""Algorithm 4: ``hbvMBB`` — the full framework for large sparse graphs.

The framework chains three stages that share a single incumbent:

* **S1 — heuristic and reduction** (:func:`repro.mbb.heuristics.h_mbb`):
  greedy heuristics, Lemma 4 core reductions and the Lemma 5 early exit.
* **S2 — bridging** (:func:`repro.mbb.bridge.bridge_mbb`): vertex-centred
  subgraphs along the bidegeneracy order, pruned by size / degeneracy and
  refined by a local heuristic.
* **S3 — verification** (:func:`repro.mbb.verify.verify_mbb`): the dense
  solver applied to every surviving subgraph with its centre forced in.

Every switch the paper ablates in Table 6 is exposed through
:class:`SparseConfig`: the heuristic stage (``bd1``), core/bicore based
optimisations (``bd2``), the dense branching technique (``bd3``) and the
choice of search order (``bd4``/``bd5``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.graph.bipartite import BipartiteGraph
from repro.graph.prepared import PreparedGraph, ensure_prepared_for
from repro.cores.orders import (
    ORDER_BIDEGENERACY,
    ORDER_DEGENERACY,
    ORDER_DEGREE,
)
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.dense import (
    BRANCH_NAIVE,
    BRANCH_TRIVIALITY_LAST,
    KERNEL_BITS,
)
from repro.mbb.heuristics import h_mbb
from repro.mbb.reductions import core_reduce
from repro.mbb.result import (
    Biclique,
    MBBResult,
    STEP_BRIDGE,
    STEP_HEURISTIC,
    STEP_VERIFY,
)
from repro.mbb.verify import ParallelVerifyOptions, verify_mbb


@dataclass(frozen=True)
class SparseConfig:
    """Configuration of the sparse framework (defaults = full ``hbvMBB``)."""

    #: Run the heuristic + reduction stage (``bd1`` disables it).
    use_heuristic: bool = True
    #: Use core/bicore based pruning, reductions and ordering (``bd2``
    #: disables it; the order then falls back to plain degree order).
    use_core_pruning: bool = True
    #: Use the dense solver's triviality-last branching and polynomial
    #: cases (``bd3`` disables it, falling back to naive branching).
    use_dense_branching: bool = True
    #: Total search order for the bridging stage (``bd4`` = degree,
    #: ``bd5`` = degeneracy, default = bidegeneracy).
    order: str = ORDER_BIDEGENERACY
    #: How many top-degree / top-core seeds the greedy heuristics try.
    heuristic_seeds: int = 5
    #: Search kernel for the bridging *and* verification stages: ``"bits"``
    #: (default) runs S2's core decomposition / local heuristic and S3's
    #: dense solver on IndexedBitGraph masks, ``"sets"`` on adjacency sets
    #: (see :mod:`repro.mbb.dense` and :mod:`repro.mbb.bridge`).
    kernel: str = KERNEL_BITS
    #: Optional safety budgets forwarded to the search context.
    node_budget: Optional[int] = None
    time_budget: Optional[float] = None
    #: Fan the verification stage (S3) over a process pool with a shared
    #: incumbent when enough subgraphs survive bridging.  Off by default:
    #: parallel S3 is a service-layer optimisation (it needs the
    #: registered ``repro.api.parallel`` verifier and a platform that
    #: grants process pools) and every decline degrades to the serial
    #: loop, so enabling it can change wall time but never the result
    #: size.
    parallel_s3: bool = False
    #: Worker processes for parallel S3 (``None`` = one per CPU).
    parallel_s3_workers: Optional[int] = None
    #: Minimum surviving subgraphs before parallel dispatch pays for the
    #: pool round trip.
    parallel_s3_threshold: int = 4
    #: Reproducible-witness mode for parallel S3 (results applied in
    #: subgraph order, no mid-flight broadcasts); see
    #: :class:`~repro.mbb.verify.ParallelVerifyOptions`.
    parallel_s3_strict: bool = False

    @property
    def effective_order(self) -> str:
        """The order actually used once the ``bd2`` interaction is applied."""
        if not self.use_core_pruning:
            return ORDER_DEGREE
        return self.order

    @property
    def branching(self) -> str:
        """Branching mode forwarded to the dense solver."""
        return BRANCH_TRIVIALITY_LAST if self.use_dense_branching else BRANCH_NAIVE

    def parallel_verify_options(self) -> Optional[ParallelVerifyOptions]:
        """The S3 parallel dispatch decision, ``None`` = serial."""
        if not self.parallel_s3:
            return None
        return ParallelVerifyOptions(
            workers=self.parallel_s3_workers,
            threshold=self.parallel_s3_threshold,
            strict=self.parallel_s3_strict,
        )


#: Ready-made configurations matching the paper's Table 3 variants.
CONFIG_FULL = SparseConfig()
CONFIG_BD1_NO_HEURISTIC = SparseConfig(use_heuristic=False)
CONFIG_BD2_NO_CORE = SparseConfig(use_core_pruning=False)
CONFIG_BD3_NO_BRANCHING = SparseConfig(use_dense_branching=False)
CONFIG_BD4_DEGREE_ORDER = SparseConfig(order=ORDER_DEGREE)
CONFIG_BD5_DEGENERACY_ORDER = SparseConfig(order=ORDER_DEGENERACY)

VARIANT_CONFIGS = {
    "hbvMBB": CONFIG_FULL,
    "bd1": CONFIG_BD1_NO_HEURISTIC,
    "bd2": CONFIG_BD2_NO_CORE,
    "bd3": CONFIG_BD3_NO_BRANCHING,
    "bd4": CONFIG_BD4_DEGREE_ORDER,
    "bd5": CONFIG_BD5_DEGENERACY_ORDER,
}


def hbv_mbb(
    graph: BipartiteGraph,
    *,
    config: SparseConfig = CONFIG_FULL,
    context: Optional[SearchContext] = None,
    initial_best: Optional[Biclique] = None,
    prepared: Optional[PreparedGraph] = None,
) -> MBBResult:
    """Find a maximum balanced biclique with the sparse framework.

    Parameters
    ----------
    graph:
        The bipartite graph to search (any density is accepted; the
        framework is designed for large sparse inputs).
    config:
        Stage switches and budgets; see :class:`SparseConfig`.
    context:
        Optional pre-seeded context (shared incumbent / statistics).
    initial_best:
        Optional known balanced biclique to seed the incumbent.
    prepared:
        Optional :class:`~repro.graph.prepared.PreparedGraph` of exactly
        ``graph`` (what :class:`~repro.api.engine.MBBEngine` hands in
        from its per-graph cache).  The bridging stage then reuses the
        snapshot's memoised order and CSR arrays; a fresh snapshot is
        prepared only when the S1 core reduction actually shrank the
        graph (and is memoised on the bundle, so repeated solves skip
        even that).  The time spent locating/re-preparing snapshots is
        recorded as the ``prepare_seconds`` stage stat.

    Returns
    -------
    MBBResult
        The best balanced biclique with ``terminated_at`` set to ``"S1"``,
        ``"S2"`` or ``"S3"`` depending on which stage proved optimality.
    """
    if prepared is not None:
        ensure_prepared_for(prepared, graph)
    if context is None:
        context = SearchContext(
            node_budget=config.node_budget, time_budget=config.time_budget
        )
    if initial_best is not None:
        context.offer_biclique(initial_best)

    # ------------------------------------------------------------------
    # Step 1: heuristics and reduction.
    # ------------------------------------------------------------------
    residual = graph
    if config.use_heuristic:
        outcome = h_mbb(graph, top_r=config.heuristic_seeds, context=context)
        context.offer_biclique(outcome.best)
        residual = outcome.reduced_graph
        if context.aborted:
            # A budget or cancellation fired between greedy seeds; the
            # incumbent is best-effort, not proven optimal.
            return MBBResult(
                biclique=context.best,
                optimal=False,
                terminated_at=STEP_HEURISTIC,
                stats=context.stats,
                elapsed_seconds=context.elapsed,
            )
        if outcome.proven_optimal:
            return MBBResult(
                biclique=context.best,
                optimal=True,
                terminated_at=STEP_HEURISTIC,
                stats=context.stats,
                elapsed_seconds=context.elapsed,
            )
    elif config.use_core_pruning and context.best_side > 0:
        residual = core_reduce(graph, context.best_side)

    # ------------------------------------------------------------------
    # Step 2: bridge to small dense subgraphs.
    # ------------------------------------------------------------------
    # One prepared snapshot backs the whole stage.  A caller-supplied
    # bundle (the engine cache) is reused as long as the S1 reduction
    # removed nothing; when it did shrink the graph, the residual's own
    # snapshot is prepared — and memoised on the bundle, so a repeated
    # solve of the same graph re-prepares nothing.  Either way the wall
    # time of locating/building the snapshot is the ``prepare_seconds``
    # stage stat.
    total_order = None
    if residual.num_vertices:
        with context.timed_stat("prepare_seconds"):
            if prepared is None:
                prepared = PreparedGraph.prepare(residual)
            else:
                prepared = prepared.for_subgraph(residual)
            # Generate from the snapshot's own graph: content-equal to the
            # residual, and it keeps every stage downstream of S2 (member
            # sets, bitgraphs, verification) on one consistent parent object.
            residual = prepared.graph
        # The total search order is the stage's kernel-independent fixed
        # cost; compute it once here (memoised on the snapshot — the raw
        # memoised list is used on purpose, so the bridging stage's order
        # view is memoised by identity too) and record its wall time so
        # reports break the ordering overhead out of the per-subgraph
        # work (the ``bdegOrder`` column of Table 6).
        with context.timed_stat("order_seconds"):
            total_order = prepared.search_order(config.effective_order)
    bridge = bridge_mbb(
        residual,
        context,
        order=config.effective_order,
        use_core_pruning=config.use_core_pruning,
        kernel=config.kernel,
        total_order=total_order,
        prepared=prepared,
    )
    if context.aborted or bridge.exhausted:
        # Either every subgraph was pruned away (exhaustion proves the
        # incumbent optimal) or a budget cut the scan short (best effort) —
        # never claim exhaustion for an aborted bridge.
        return MBBResult(
            biclique=context.best,
            optimal=not context.aborted,
            terminated_at=STEP_BRIDGE,
            stats=context.stats,
            elapsed_seconds=context.elapsed,
        )

    # ------------------------------------------------------------------
    # Step 3: verification with the dense solver.
    # ------------------------------------------------------------------
    # The snapshot and order name travel with the call so a registered
    # parallel verifier can hand workers the shared segment plus plain
    # integer positions instead of pickled subgraphs.
    verify_mbb(
        bridge.surviving,
        context,
        branching=config.branching,
        use_core_pruning=config.use_core_pruning,
        kernel=config.kernel,
        prepared=prepared,
        order_name=config.effective_order,
        parallel=config.parallel_verify_options(),
    )
    return MBBResult(
        biclique=context.best,
        optimal=not context.aborted,
        terminated_at=STEP_VERIFY,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )


def sparse_mbb(graph: BipartiteGraph, **kwargs) -> MBBResult:
    """Alias for :func:`hbv_mbb` matching the paper's ``sparseMBB`` name."""
    return hbv_mbb(graph, **kwargs)


def variant(name: str) -> SparseConfig:
    """Return the :class:`SparseConfig` for a named Table 3 variant.

    Known names: ``hbvMBB``, ``bd1`` .. ``bd5``.
    """
    try:
        return VARIANT_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; expected one of {sorted(VARIANT_CONFIGS)}"
        ) from None


def variant_with_budget(
    name: str,
    *,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> SparseConfig:
    """A named variant with budgets attached (used by the bench harness)."""
    return replace(
        variant(name), node_budget=node_budget, time_budget=time_budget
    )
