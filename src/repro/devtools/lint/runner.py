"""File discovery and analysis orchestration for reprolint.

:func:`run_lint` is the one entry point the CLI, the CI job and the test
suite share.  Since the project model landed it is a two-pass analysis:

1. **parse pass** — discover Python files under the given paths, parse
   each one once into a :class:`FileContext` (an unparseable file yields
   one unsuppressable ``RPL000`` finding and drops out of pass 2), and
   run every selected per-file :class:`Rule` over the shared AST;
2. **project pass** — build one
   :class:`~repro.devtools.lint.project.ProjectContext` from every
   parsed file and run each selected :class:`ProjectRule` exactly once
   over it, mapping findings back through the owning file's per-line
   suppressions.

Line-suppressed findings are dropped, the rest are split against the
baseline, and the returned :class:`LintResult` is fully deterministic —
sorted discovery, sorted rules, sorted findings — so two consecutive
runs render byte-identical reports (a property CI pins down).

The analyzer is dependency-free on purpose — :mod:`ast` plus the
standard library — so the CI job can run it straight from a checkout
with no installation step, and so it can never disagree with the
interpreter about what the code parses to.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.devtools.lint.base import (
    PARSE_ERROR_CODE,
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.findings import Finding, sort_findings
from repro.devtools.lint.project import ProjectContext

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: The scan roots ``repro-mbb lint`` and CI default to.  Library code
#: (``src/``) plus every root that executes it — rule *scoping* (not
#: root selection) decides what is legal where, e.g. wall-clock reads
#: stay legal under ``benchmarks/`` while the layering and shared-state
#: contracts apply everywhere.
DEFAULT_LINT_PATHS: Tuple[str, ...] = ("src", "tests", "benchmarks", "examples")


@dataclass
class LintResult:
    """Outcome of one analyzer run (all lists canonically sorted)."""

    #: Findings not absorbed by the baseline — these fail the run.
    new_findings: List[Finding] = field(default_factory=list)
    #: Findings matched (and absorbed) by baseline entries.
    baselined_findings: List[Finding] = field(default_factory=list)
    #: Count of findings silenced by inline ``# reprolint: disable=...``.
    suppressed: int = 0
    #: Number of files parsed and analyzed.
    checked_files: int = 0
    #: Number of modules indexed into the project model (0 when no
    #: project rule ran).
    modules: int = 0
    #: Codes of the rules that ran, sorted.
    rules: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """``0`` when no new findings survived, ``1`` otherwise."""
        return 1 if self.new_findings else 0

    @property
    def all_findings(self) -> List[Finding]:
        """New and baselined findings together, canonically sorted."""
        return sort_findings(self.new_findings + self.baselined_findings)


def iter_python_files(paths: Sequence[str], root: str) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order.

    ``paths`` entries are interpreted relative to ``root`` unless
    absolute; files are yielded as absolute paths.  Missing paths raise
    ``FileNotFoundError`` so a typo in CI fails loudly instead of
    linting nothing.
    """
    collected: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                collected.append(os.path.abspath(absolute))
            continue
        if not os.path.isdir(absolute):
            raise FileNotFoundError(f"lint path does not exist: {path}")
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if not name.startswith(".") and name not in _SKIPPED_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    collected.append(os.path.abspath(os.path.join(dirpath, filename)))
    # Deduplicate overlapping path arguments while keeping sorted order.
    return iter(sorted(set(collected)))


def _relpath(path: str, root: str) -> str:
    relative = os.path.relpath(path, root)
    return relative.replace(os.sep, "/")


def parse_file(path: str, root: str) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file into a :class:`FileContext`.

    Returns ``(context, None)`` on success and ``(None, rpl000)`` when
    the file does not parse — an unsuppressable finding, since an
    unparseable file cannot carry trustworthy suppression comments.
    """
    relpath = _relpath(path, root)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        return None, Finding(
            path=relpath,
            line=error.lineno or 1,
            column=(error.offset or 1),
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {error.msg}",
        )
    return FileContext(relpath, source, tree), None


def analyze_file(path: str, root: str, rules: Sequence[Rule]) -> tuple:
    """Run per-file rules over one file; returns ``(findings, suppressed)``.

    Project rules in ``rules`` are skipped (their :meth:`Rule.check` is
    an empty iterator) — they need the whole-project pass of
    :func:`run_lint`.  A file that fails to parse yields a single
    unsuppressable ``RPL000`` finding carrying the syntax error message.
    """
    ctx, parse_error = parse_file(path, root)
    if parse_error is not None:
        return [parse_error], 0
    assert ctx is not None
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def build_project(
    paths: Sequence[str], *, root: Optional[str] = None
) -> ProjectContext:
    """Parse ``paths`` and build the project model (for ``--graph-dot``).

    Unparseable files are silently skipped here; :func:`run_lint` is
    where parse failures are reported.
    """
    resolved_root = os.path.abspath(root or os.getcwd())
    contexts: List[FileContext] = []
    for path in iter_python_files(paths, resolved_root):
        ctx, _error = parse_file(path, resolved_root)
        if ctx is not None:
            contexts.append(ctx)
    return ProjectContext.build(contexts)


def run_lint(
    paths: Sequence[str],
    *,
    root: Optional[str] = None,
    rules: Iterable[str] = (),
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Analyze ``paths`` and return a deterministic :class:`LintResult`.

    Parameters
    ----------
    paths:
        Files and/or directories to scan (relative to ``root``).
    root:
        Project root used both to resolve relative ``paths`` and to
        compute the root-relative paths the rules scope by (default:
        the current working directory).
    rules:
        Optional subset of rule codes to run (default: all registered).
    baseline:
        Optional :class:`Baseline` absorbing known findings; with
        ``None`` every finding is new.
    """
    resolved_root = os.path.abspath(root or os.getcwd())
    selected = all_rules(rules)
    file_rules = [rule for rule in selected if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in selected if isinstance(rule, ProjectRule)]

    findings: List[Finding] = []
    suppressed = 0
    checked = 0
    contexts: List[FileContext] = []
    by_path: Dict[str, FileContext] = {}
    for path in iter_python_files(paths, resolved_root):
        checked += 1
        ctx, parse_error = parse_file(path, resolved_root)
        if parse_error is not None:
            findings.append(parse_error)
            continue
        assert ctx is not None
        contexts.append(ctx)
        by_path[ctx.relpath] = ctx
        for rule in file_rules:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)

    modules = 0
    if project_rules:
        project = ProjectContext.build(contexts)
        modules = len(project.modules)
        for rule in project_rules:
            for finding in rule.check_project(project):
                owner = by_path.get(finding.path)
                if owner is not None and owner.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)

    new, accepted = (baseline or Baseline()).split(findings)
    return LintResult(
        new_findings=new,
        baselined_findings=accepted,
        suppressed=suppressed,
        checked_files=checked,
        modules=modules,
        rules=[rule.code for rule in selected],
    )
