"""Shared mutable state for a single MBB search.

Every solver in the library (the paper's algorithms as well as the
baselines) threads a :class:`SearchContext` through its recursion.  The
context owns:

* the incumbent — the best balanced biclique found so far, shared across
  the heuristic, bridging and verification stages so that later stages
  prune with the bound established by earlier ones;
* search statistics (node counts, depths) for the breakdown experiments;
* optional node and wall-clock budgets, so benchmark runs of exponential
  baselines terminate gracefully instead of hanging the harness (this
  plays the role of the paper's 4-hour timeout);
* a cooperative cancellation/deadline hook, so external drivers — most
  importantly :class:`repro.api.engine.MBBEngine`, which enforces
  per-request budgets across batch solves — can stop a running search
  through one mechanism instead of per-solver plumbing.

Two polling granularities exist.  :meth:`SearchContext.enter_node` is the
per-search-node probe: it records node statistics and enforces *every*
budget, including the node budget.  :meth:`SearchContext.checkpoint` is the
lightweight probe for the stages that do no branch-and-bound of their own —
the heuristic stage polls it once per greedy seed and the bridging stage
once per vertex-centred subgraph.  ``checkpoint()`` enforces the
cancellation hook, the wall-clock budget and the absolute deadline but
deliberately does **not** touch node statistics (node counts keep measuring
exhaustive-search work only) and does not test the node budget (no node is
being entered).  Both raise :class:`SearchAborted` with ``aborted`` set, so
a budget blown during S1/S2 aborts the solve just like one blown inside the
dense kernel, and ``hbvMBB`` reports ``optimal=False`` instead of claiming
exhaustion.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.result import Biclique, SearchStats


class SearchAborted(Exception):
    """Internal control-flow exception raised when a budget is exhausted.

    Solvers catch it at their top level and return the incumbent with
    ``optimal=False``; it never escapes the public API.
    """


@dataclass
class SearchContext:
    """Mutable incumbent + budget + statistics for one solver invocation."""

    best: Biclique = field(default_factory=Biclique.empty)
    stats: SearchStats = field(default_factory=SearchStats)
    node_budget: Optional[int] = None
    time_budget: Optional[float] = None
    #: Absolute deadline on the :func:`time.perf_counter` clock.  Unlike
    #: ``time_budget`` (which is relative to the context's creation) a
    #: deadline survives being handed from one solver stage to the next,
    #: which is how the engine enforces one per-request budget end to end.
    deadline: Optional[float] = None
    #: Optional cooperative cancellation hook, polled at every search node.
    #: Returning ``True`` aborts the search exactly like an exhausted
    #: budget; the incumbent found so far is still reported.
    cancel_hook: Optional[Callable[[], bool]] = None
    _start_time: float = field(default_factory=time.perf_counter)
    aborted: bool = False
    cancelled: bool = False

    @property
    def best_side(self) -> int:
        """Side size of the incumbent balanced biclique."""
        return self.best.side_size

    @property
    def best_total(self) -> int:
        """Total vertex count of the incumbent after balancing."""
        return 2 * self.best.side_size

    @property
    def elapsed(self) -> float:
        """Seconds since the context was created."""
        return time.perf_counter() - self._start_time

    def offer(
        self,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
    ) -> bool:
        """Offer a biclique as a new incumbent.

        The offered pair is balanced by trimming the larger side.  Returns
        ``True`` when the incumbent improved.
        """
        candidate = Biclique.of(left, right).balanced()
        if candidate.side_size > self.best.side_size:
            self.best = candidate
            return True
        return False

    def offer_biclique(self, biclique: Biclique) -> bool:
        """Offer an already-built :class:`Biclique` as a new incumbent."""
        balanced = biclique.balanced()
        if balanced.side_size > self.best.side_size:
            self.best = balanced
            return True
        return False

    def cancel(self) -> None:
        """Request cooperative cancellation of the running search.

        The next :meth:`enter_node` call raises :class:`SearchAborted`,
        which solvers translate into an ``optimal=False`` result carrying
        the incumbent found so far.
        """
        self.cancelled = True

    def checkpoint(self, *, enforce_node_budget: bool = False) -> None:
        """Enforce cancellation and wall-clock budgets outside the kernel.

        The lightweight counterpart of :meth:`enter_node` for stages that
        are not branch-and-bound searches (greedy seeds in S1, centred
        subgraphs in S2): polls the cancellation hook, the relative time
        budget and the absolute deadline, raising :class:`SearchAborted`
        with ``aborted`` set when any fires.  Node statistics are *not*
        recorded and by default the node budget is *not* tested — no
        search node is being entered, and inflating the counters would
        distort the breakdown experiments.

        ``enforce_node_budget=True`` additionally aborts once the node
        budget has no headroom left (``stats.nodes >= node_budget``,
        still without recording a node).  Drivers that fan out child
        searches — the size-constrained ``(k, k)`` ladder today,
        parallel S3 tomorrow — poll this form between children instead
        of re-deriving the budget arithmetic themselves.
        """
        if self.cancelled or self._poll_cancel_hook():
            self.cancelled = True
            self.aborted = True
            raise SearchAborted("search cancelled")
        if self.time_budget is not None and self.elapsed > self.time_budget:
            self.aborted = True
            raise SearchAborted(f"time budget {self.time_budget}s exhausted")
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.aborted = True
            raise SearchAborted("deadline exceeded")
        if (
            enforce_node_budget
            and self.node_budget is not None
            and self.stats.nodes >= self.node_budget
        ):
            self.aborted = True
            raise SearchAborted(f"node budget {self.node_budget} exhausted")

    def _poll_cancel_hook(self) -> bool:
        """Poll :attr:`cancel_hook`, treating a *crashing* hook as a cancel.

        The hook is supervision plumbing (a cross-process flag reader, a
        server's disconnect probe): if it raises, supervision is broken
        and the search can no longer be stopped from outside.  Aborting
        cleanly — incumbent preserved, ``optimal=False`` — is strictly
        safer than letting an arbitrary exception destroy the solve from
        a hot loop, and it is the same contract a ``True`` return has.
        ``SearchAborted`` from a hook that cancels by raising is passed
        through untouched.
        """
        if self.cancel_hook is None:
            return False
        try:
            return bool(self.cancel_hook())
        except SearchAborted:
            raise
        except Exception:
            return True

    def remaining_node_budget(self) -> Optional[int]:
        """Search nodes left before the node budget trips (``None`` = unbounded).

        The canonical way to forward a budget slice into a child search:
        solvers must not re-derive ``node_budget - stats.nodes`` by hand
        (reprolint RPL001 flags the pattern outside this module).
        """
        if self.node_budget is None:
            return None
        return max(0, self.node_budget - self.stats.nodes)

    def remaining_time_budget(self) -> Optional[float]:
        """Seconds left on the relative time budget (``None`` = unbounded).

        Like :meth:`remaining_node_budget`, this is the sanctioned form
        of ``time_budget - elapsed`` for handing a shrinking wall-clock
        allowance to a child search.  The absolute :attr:`deadline` needs
        no such slicing — it is simply copied to the child.
        """
        if self.time_budget is None:
            return None
        return max(0.0, self.time_budget - self.elapsed)

    @contextmanager
    def timed_stat(self, stat: str) -> Iterator[None]:
        """Accumulate a block's wall time into ``stats.<stat>``.

        Stage code must not read :func:`time.perf_counter` directly
        (reprolint RPL002 confines wall clocks to this module, the
        engine and the bench harness); wrapping the block keeps stage
        timings flowing into :class:`~repro.mbb.result.SearchStats`
        through one audited clock.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            setattr(
                self.stats, stat, getattr(self.stats, stat) + time.perf_counter() - start
            )

    def enter_node(self, depth: int) -> None:
        """Record entry into a branch-and-bound node and enforce budgets."""
        self.stats.record_node(depth)
        self.checkpoint()
        if self.node_budget is not None and self.stats.nodes > self.node_budget:
            self.aborted = True
            raise SearchAborted(f"node budget {self.node_budget} exhausted")

    def record_leaf(self, depth: int) -> None:
        """Record that the node at ``depth`` was a leaf of the search tree."""
        self.stats.record_leaf(depth)

    def verify_incumbent(self, graph: BipartiteGraph) -> bool:
        """Check the incumbent against the graph (used by tests/examples)."""
        return self.best.is_valid_in(graph) and self.best.is_balanced
