"""Indexed bitset representation of a bipartite graph.

:class:`IndexedBitGraph` maps each side of a :class:`~repro.graph.bipartite.
BipartiteGraph` onto contiguous integer indices and stores the adjacency of
every vertex as a single Python integer bitmask over the opposite side.
Candidate-set intersections — the single hottest operation of every
branch-and-bound solver in this library — then become one ``&`` between two
machine-word-packed integers, and cardinalities become one
:meth:`int.bit_count` call, instead of hash-set intersections proportional
to the set sizes.  This is the classical adjacency-matrix trick of exact
biclique/clique solvers (cf. the ExtBBClq baseline's description), applied
to the paper's ``denseMBB`` kernel.

The representation is immutable: branch-and-bound nodes carry plain ``int``
masks, so branching needs no set copying at all (``include``/``exclude``
children are derived with ``&``/``|``/``^`` on immutable integers).

Vertex labels are preserved through ``left_labels`` / ``right_labels`` (index
to label) and ``left_index`` / ``right_index`` (label to index) so results
can be reported in the caller's label space.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.graph.bipartite import BipartiteGraph, Vertex


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class IndexedBitGraph:
    """A bipartite graph over contiguous indices with bitmask adjacency rows.

    Parameters
    ----------
    left_labels, right_labels:
        The original vertex labels; index ``i`` of a side corresponds to bit
        ``i`` in the masks of the opposite side's adjacency rows.
    adj_left:
        ``adj_left[i]`` is a bitmask over right indices; bit ``j`` is set
        iff ``(left_labels[i], right_labels[j])`` is an edge.  ``adj_right``
        is the transpose and is derived automatically.
    """

    __slots__ = (
        "left_labels",
        "right_labels",
        "left_index",
        "right_index",
        "adj_left",
        "adj_right",
        "_num_edges",
    )

    def __init__(
        self,
        left_labels: List[Vertex],
        right_labels: List[Vertex],
        adj_left: List[int],
    ) -> None:
        self.left_labels = left_labels
        self.right_labels = right_labels
        self.left_index = {label: i for i, label in enumerate(left_labels)}
        self.right_index = {label: j for j, label in enumerate(right_labels)}
        self.adj_left = adj_left
        adj_right = [0] * len(right_labels)
        edges = 0
        # Transpose with an inline bit loop — this constructor runs once per
        # vertex-centred subgraph, so generator overhead would add up.
        for i, row in enumerate(adj_left):
            bit = 1 << i
            edges += row.bit_count()
            while row:
                low = row & -row
                row ^= low
                adj_right[low.bit_length() - 1] |= bit
        self.adj_right = adj_right
        self._num_edges = edges

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bipartite(
        cls,
        graph: BipartiteGraph,
        left: Optional[Iterable[Vertex]] = None,
        right: Optional[Iterable[Vertex]] = None,
    ) -> "IndexedBitGraph":
        """Index a :class:`BipartiteGraph`, optionally restricted to subsets.

        When ``left`` / ``right`` are given the result is the *induced*
        subgraph on those vertices, built directly in bitset form without
        materialising an intermediate :class:`BipartiteGraph` — this is how
        the sparse framework's verification stage consumes vertex-centred
        subgraphs.  Labels are ordered by ``repr`` so the indexing (and
        therefore every branching tie-break) is deterministic.
        """
        if left is None:
            left_labels = sorted(graph.left_vertices(), key=repr)
        else:
            left_labels = sorted(
                (u for u in left if graph.has_left_vertex(u)), key=repr
            )
        if right is None:
            right_labels = sorted(graph.right_vertices(), key=repr)
        else:
            right_labels = sorted(
                (v for v in right if graph.has_right_vertex(v)), key=repr
            )
        right_index = {label: j for j, label in enumerate(right_labels)}
        adj_left: List[int] = []
        for u in left_labels:
            row = 0
            neighbours = graph.neighbors_left(u)
            if len(neighbours) <= len(right_index):
                for v in neighbours:
                    j = right_index.get(v)
                    if j is not None:
                        row |= 1 << j
            else:
                for v, j in right_index.items():
                    if v in neighbours:
                        row |= 1 << j
            adj_left.append(row)
        return cls(left_labels, right_labels, adj_left)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_left(self) -> int:
        """Number of left-side vertices."""
        return len(self.left_labels)

    @property
    def n_right(self) -> int:
        """Number of right-side vertices."""
        return len(self.right_labels)

    @property
    def num_vertices(self) -> int:
        """Total number of vertices."""
        return len(self.left_labels) + len(self.right_labels)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._num_edges

    @property
    def density(self) -> float:
        """Edge density ``|E| / (|L| * |R|)``; zero for an empty side."""
        if not self.left_labels or not self.right_labels:
            return 0.0
        return self._num_edges / (len(self.left_labels) * len(self.right_labels))

    @property
    def all_left_mask(self) -> int:
        """Mask with one bit per left vertex."""
        return (1 << len(self.left_labels)) - 1

    @property
    def all_right_mask(self) -> int:
        """Mask with one bit per right vertex."""
        return (1 << len(self.right_labels)) - 1

    # ------------------------------------------------------------------
    # label <-> mask translation
    # ------------------------------------------------------------------
    def left_mask(self, labels: Iterable[Vertex]) -> int:
        """Bitmask of the given left labels (all must be present)."""
        mask = 0
        index = self.left_index
        for label in labels:
            mask |= 1 << index[label]
        return mask

    def right_mask(self, labels: Iterable[Vertex]) -> int:
        """Bitmask of the given right labels (all must be present)."""
        mask = 0
        index = self.right_index
        for label in labels:
            mask |= 1 << index[label]
        return mask

    def left_labels_of(self, mask: int) -> List[Vertex]:
        """Original left labels of the set bits of ``mask``."""
        labels = self.left_labels
        return [labels[i] for i in iter_bits(mask)]

    def right_labels_of(self, mask: int) -> List[Vertex]:
        """Original right labels of the set bits of ``mask``."""
        labels = self.right_labels
        return [labels[j] for j in iter_bits(mask)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexedBitGraph(|L|={self.n_left}, |R|={self.n_right}, "
            f"|E|={self.num_edges})"
        )


def core_numbers_masks(
    graph: IndexedBitGraph,
    left_mask: Optional[int] = None,
    right_mask: Optional[int] = None,
) -> Tuple[List[int], List[int]]:
    """Core numbers of (a restriction of) ``graph``, per side index.

    The bitset counterpart of :func:`repro.cores.core.core_numbers`: the
    same linear-time Batagelj-Zaveršnik bucket peel, but degrees are
    ``bit_count`` calls on masked adjacency rows and the removed set is a
    pair of bitmasks, so no hash sets are ever built.  Returns
    ``(core_left, core_right)`` lists aligned with ``left_labels`` /
    ``right_labels``; entries for vertices outside the restriction are 0
    and carry no meaning.
    """
    left = graph.all_left_mask if left_mask is None else left_mask
    right = graph.all_right_mask if right_mask is None else right_mask
    n_left = graph.n_left
    adj_left = graph.adj_left
    adj_right = graph.adj_right
    core_left = [0] * n_left
    core_right = [0] * graph.n_right

    # Vertices are encoded as ``i`` (left) and ``n_left + j`` (right) so the
    # peel works one flat, list-indexed degree table; bit loops are inlined
    # because this function runs once per vertex-centred subgraph.
    degree = [0] * (n_left + graph.n_right)
    total = 0
    max_degree = 0
    remaining = left
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        i = low.bit_length() - 1
        d = (adj_left[i] & right).bit_count()
        degree[i] = d
        if d > max_degree:
            max_degree = d
        total += 1
    remaining = right
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        j = low.bit_length() - 1
        d = (adj_right[j] & left).bit_count()
        degree[n_left + j] = d
        if d > max_degree:
            max_degree = d
        total += 1
    if total == 0:
        return core_left, core_right
    buckets: List[List[int]] = [[] for _ in range(max_degree + 1)]
    remaining = left
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        i = low.bit_length() - 1
        buckets[degree[i]].append(i)
    remaining = right
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        j = low.bit_length() - 1
        buckets[degree[n_left + j]].append(n_left + j)

    remaining_left = left
    remaining_right = right
    current = 0
    processed = 0
    pointer = 0
    while processed < total:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        if pointer > max_degree:
            break
        node = buckets[pointer].pop()
        if node < n_left:
            bit = 1 << node
            if not remaining_left & bit or degree[node] != pointer:
                continue
            remaining_left ^= bit
            if pointer > current:
                current = pointer
            core_left[node] = current
            neighbours = adj_left[node] & remaining_right
            offset = n_left
        else:
            j = node - n_left
            bit = 1 << j
            if not remaining_right & bit or degree[node] != pointer:
                continue
            remaining_right ^= bit
            if pointer > current:
                current = pointer
            core_right[j] = current
            neighbours = adj_right[j] & remaining_left
            offset = 0
        processed += 1
        while neighbours:
            low = neighbours & -neighbours
            neighbours ^= low
            key = offset + low.bit_length() - 1
            d = degree[key]
            if d > pointer:
                degree[key] = d - 1
                buckets[d - 1].append(key)
        if pointer > 0:
            pointer -= 1
    return core_left, core_right


def degeneracy_of_mask(
    graph: IndexedBitGraph,
    left_mask: Optional[int] = None,
    right_mask: Optional[int] = None,
) -> int:
    """Degeneracy of (a restriction of) ``graph`` (0 when empty).

    Equals ``max(core numbers)`` over the restricted vertices, computed by
    one :func:`core_numbers_masks` peel.
    """
    left = graph.all_left_mask if left_mask is None else left_mask
    right = graph.all_right_mask if right_mask is None else right_mask
    core_left, core_right = core_numbers_masks(graph, left, right)
    best = 0
    for i in iter_bits(left):
        if core_left[i] > best:
            best = core_left[i]
    for j in iter_bits(right):
        if core_right[j] > best:
            best = core_right[j]
    return best


def k_core_masks(
    graph: IndexedBitGraph,
    k: int,
    left_mask: Optional[int] = None,
    right_mask: Optional[int] = None,
) -> Tuple[int, int]:
    """Vertex masks of the ``k``-core of (a restriction of) ``graph``.

    This is the bitset counterpart of :func:`repro.cores.core.k_core`
    (Lemma 4): iteratively peel vertices with fewer than ``k`` surviving
    neighbours until a fixpoint.  Unlike the set-based version it never
    materialises a subgraph copy — the core is returned as a pair of
    ``(left, right)`` masks that callers intersect into their candidate
    sets.
    """
    left = graph.all_left_mask if left_mask is None else left_mask
    right = graph.all_right_mask if right_mask is None else right_mask
    if k <= 0:
        return left, right
    adj_left = graph.adj_left
    adj_right = graph.adj_right
    changed = True
    while changed:
        changed = False
        remaining = left
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            i = low.bit_length() - 1
            if (adj_left[i] & right).bit_count() < k:
                left ^= low
                changed = True
        remaining = right
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            j = low.bit_length() - 1
            if (adj_right[j] & left).bit_count() < k:
                right ^= low
                changed = True
    return left, right
