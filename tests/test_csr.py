"""Tests for the flat CSR adjacency snapshot."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.csr import CSRBipartite
from repro.graph.generators import random_bipartite


class TestConstruction:
    def test_empty_graph(self):
        csr = CSRBipartite.from_bipartite(BipartiteGraph())
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
        assert list(csr.indptr) == [0]

    def test_id_assignment_is_left_first_then_repr_sorted(self):
        graph = BipartiteGraph(edges=[(2, "b"), (10, "a"), (3, "a")])
        csr = CSRBipartite.from_bipartite(graph)
        # Left ids 0..|L|-1 sorted by repr ("10" < "2" < "3"), then right.
        assert csr.keys == [
            (LEFT, 10),
            (LEFT, 2),
            (LEFT, 3),
            (RIGHT, "a"),
            (RIGHT, "b"),
        ]
        assert csr.num_left == 3 and csr.num_right == 2
        assert csr.is_left(2) and not csr.is_left(3)

    def test_index_of_inverts_key_of(self):
        graph = random_bipartite(6, 8, 0.4, seed=1)
        csr = CSRBipartite.from_bipartite(graph)
        for i in range(csr.num_vertices):
            assert csr.index_of(csr.key_of(i)) == i

    @pytest.mark.parametrize("seed", range(4))
    def test_round_trips_every_edge(self, seed):
        graph = random_bipartite(7, 9, 0.35, seed=seed)
        csr = CSRBipartite.from_bipartite(graph)
        assert csr.num_edges == graph.num_edges
        edges = set()
        for i in range(csr.num_left):
            _, u = csr.key_of(i)
            for j in csr.neighbors(i):
                side, v = csr.key_of(j)
                assert side == RIGHT
                edges.add((u, v))
        assert edges == set(graph.edges())

    def test_adjacency_is_symmetric_and_sorted(self):
        graph = random_bipartite(6, 6, 0.5, seed=2)
        csr = CSRBipartite.from_bipartite(graph)
        for i in range(csr.num_vertices):
            neighbours = list(csr.neighbors(i))
            assert neighbours == sorted(neighbours)
            for j in neighbours:
                assert i in csr.neighbors(j)

    def test_degrees_match_graph(self):
        graph = random_bipartite(5, 7, 0.4, seed=3)
        csr = CSRBipartite.from_bipartite(graph)
        for i in range(csr.num_vertices):
            side, label = csr.key_of(i)
            expected = (
                graph.degree_left(label)
                if side == LEFT
                else graph.degree_right(label)
            )
            assert csr.degree(i) == expected
        assert len(csr) == graph.num_vertices

    def test_isolated_vertices_are_indexed(self):
        graph = BipartiteGraph(left=[1, 2], right=["a"], edges=[(1, "a")])
        csr = CSRBipartite.from_bipartite(graph)
        assert csr.num_vertices == 3
        assert list(csr.neighbors(csr.index_of((LEFT, 2)))) == []
