"""repro — exact maximum balanced biclique search in bipartite graphs.

A from-scratch Python reproduction of

    Lu Chen, Chengfei Liu, Rui Zhou, Jiajie Xu, Jianxin Li.
    "Efficient Exact Algorithms for Maximum Balanced Biclique Search in
    Bipartite Graphs." SIGMOD 2021 (arXiv:2007.08836).

Quickstart
----------
>>> from repro import BipartiteGraph, solve_mbb
>>> graph = BipartiteGraph(edges=[(0, "x"), (0, "y"), (1, "x"), (1, "y"), (2, "y")])
>>> result = solve_mbb(graph)
>>> result.side_size
2
>>> sorted(result.biclique.left), sorted(result.biclique.right)
([0, 1], ['x', 'y'])

API notes
---------
:func:`solve_mbb` is a thin wrapper over the service API in
:mod:`repro.api`: solvers are *named backends* in a registry
(:func:`~repro.api.available_backends`), a
:class:`~repro.api.SolveRequest` / :class:`~repro.api.SolveReport` pair is
the JSON wire format, and :class:`~repro.api.MBBEngine` executes one
request — or a batch of them across a process pool via
:meth:`~repro.api.MBBEngine.solve_many`.

>>> from repro.api import GraphSpec, MBBEngine, SolveRequest
>>> report = MBBEngine().solve(
...     SolveRequest(graph=GraphSpec.random(10, 10, 0.8, seed=7), backend="dense")
... )
>>> report.side_size >= 3
True

Both exact solvers run their branch and bound on an indexed bitset kernel
by default: the graph is mapped onto contiguous indices
(:class:`~repro.graph.bitset.IndexedBitGraph`) and candidate-set
intersections become single ``&``/``bit_count`` operations on Python-int
bitmasks.  ``solve_mbb(graph, kernel="sets")`` (or
``SparseConfig(kernel="sets")``) selects the original adjacency-set inner
loop for ablations.  The sparse framework's S1 stage applies the Lemma 5
early exit by comparing the incumbent against the degeneracy of the
*pre-reduction* graph, so it can prove optimality while the residual graph
is still nonempty.

The package is organised as:

* :mod:`repro.graph` — the bipartite graph substrate and generators;
* :mod:`repro.cores` — core/bicore decompositions and search orders;
* :mod:`repro.mbb` — the paper's algorithms (denseMBB, hbvMBB, ...);
* :mod:`repro.baselines` — ExtBBClq, adapted MBE engines, local search,
  the brute-force oracle and the polynomial MVB solver;
* :mod:`repro.api` — the service layer: backend registry, request/report
  wire format and the batch-parallel :class:`~repro.api.MBBEngine`;
* :mod:`repro.workloads` — synthetic workloads and KONECT stand-ins;
* :mod:`repro.analysis` / :mod:`repro.bench` — the evaluation harness that
  regenerates every table and figure of the paper.
"""

from repro.exceptions import (
    BudgetExceededError,
    DatasetError,
    GraphError,
    InvalidParameterError,
    ReproError,
    SolverError,
)
from repro.graph import (
    LEFT,
    RIGHT,
    BipartiteGraph,
    CSRBipartite,
    IndexedBitGraph,
    bipartite_complement,
)
from repro.cores import (
    bicore_decomposition,
    bicore_numbers,
    bidegeneracy,
    bidegeneracy_order,
    core_numbers,
    degeneracy,
    degeneracy_order,
    k_core,
)
from repro.mbb import (
    Biclique,
    MBBResult,
    SparseConfig,
    basic_bb,
    dense_mbb,
    hbv_mbb,
    maximum_balanced_biclique,
    solve_mbb,
    sparse_mbb,
)
from repro.api import (
    BackendInfo,
    GraphSpec,
    MBBEngine,
    SolveReport,
    SolveRequest,
    available_backends,
    get_backend,
    register_backend,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # graph substrate
    "BipartiteGraph",
    "CSRBipartite",
    "IndexedBitGraph",
    "LEFT",
    "RIGHT",
    "bipartite_complement",
    # sparsity machinery
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
    "k_core",
    "bicore_decomposition",
    "bicore_numbers",
    "bidegeneracy",
    "bidegeneracy_order",
    # solvers
    "Biclique",
    "MBBResult",
    "SparseConfig",
    "solve_mbb",
    "maximum_balanced_biclique",
    "dense_mbb",
    "hbv_mbb",
    "sparse_mbb",
    "basic_bb",
    # service API
    "MBBEngine",
    "SolveRequest",
    "SolveReport",
    "GraphSpec",
    "BackendInfo",
    "register_backend",
    "get_backend",
    "available_backends",
    # exceptions
    "ReproError",
    "GraphError",
    "SolverError",
    "InvalidParameterError",
    "BudgetExceededError",
    "DatasetError",
]
