"""Algorithm 8: ``verifyMBB`` — maximality verification.

The verification stage receives the vertex-centred subgraphs that survived
the bridging stage and proves (or improves) the incumbent by running the
dense-graph solver on each of them, with the centre vertex forced into the
result.  The subgraphs are first shrunk to their ``(best_side + 1)``-core
(Lemma 4 again, now with the possibly improved incumbent).

Because the surviving subgraphs are small (bounded by the bidegeneracy) and
dense, the exhaustive step behaves near-polynomially in practice, which is
the crux of the paper's ``O*(1.3803^δ̈)`` claim.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.graph.bipartite import LEFT, BipartiteGraph
from repro.cores.core import k_core
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.dense import BRANCH_TRIVIALITY_LAST, dense_mbb_on_sets
from repro.mbb.result import Biclique
from repro.mbb.vertex_centred import VertexCentredSubgraph


def _search_subgraph(
    sub: VertexCentredSubgraph,
    context: SearchContext,
    branching: str,
    use_core_pruning: bool,
) -> None:
    """Search a single centred subgraph with its centre forced in."""
    subgraph = sub.graph
    if use_core_pruning:
        subgraph = k_core(subgraph, context.best_side + 1)
    side, label = sub.center
    if side == LEFT:
        if not subgraph.has_left_vertex(label):
            return
        neighbours = set(subgraph.neighbors_left(label))
        a = {label}
        b: set = set()
        ca = subgraph.left - {label}
        cb = neighbours
    else:
        if not subgraph.has_right_vertex(label):
            return
        neighbours = set(subgraph.neighbors_right(label))
        a = set()
        b = {label}
        ca = neighbours
        cb = subgraph.right - {label}
    if min(len(a) + len(ca), len(b) + len(cb)) <= context.best_side:
        return
    context.stats.subgraphs_searched += 1
    dense_mbb_on_sets(
        subgraph, context, a, b, ca, cb, branching=branching, depth=0
    )


def verify_mbb(
    subgraphs: Iterable[VertexCentredSubgraph],
    context: SearchContext,
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    use_core_pruning: bool = True,
) -> Biclique:
    """Run the verification stage over all surviving centred subgraphs.

    The incumbent stored in ``context`` is updated in place and also
    returned.  When a budget is exhausted the incumbent found so far is
    returned and ``context.aborted`` is set.
    """
    for sub in subgraphs:
        if context.aborted:
            break
        try:
            _search_subgraph(sub, context, branching, use_core_pruning)
        except SearchAborted:
            break
    return context.best
