"""Tests for 2-hop neighbourhood computations."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.csr import CSRBipartite
from repro.graph.generators import complete_bipartite, path_bipartite, random_bipartite
from repro.cores.two_hop import (
    n2_neighbors,
    n_le2_adjacency,
    n_le2_flat,
    n_le2_neighbors,
    n_le2_sizes,
)


class TestN2Neighbors:
    def test_simple_chain(self):
        # 1 - a - 2 - b - 3 : vertex 2 has 2-hop neighbours {1, 3}.
        graph = BipartiteGraph(edges=[(1, "a"), (2, "a"), (2, "b"), (3, "b")])
        assert n2_neighbors(graph, LEFT, 2) == {(LEFT, 1), (LEFT, 3)}
        assert n2_neighbors(graph, LEFT, 1) == {(LEFT, 2)}
        assert n2_neighbors(graph, RIGHT, "a") == {(RIGHT, "b")}

    def test_no_two_hop_for_isolated_vertex(self):
        graph = BipartiteGraph(left=[1], right=["a"])
        assert n2_neighbors(graph, LEFT, 1) == set()

    def test_complete_graph_two_hop_is_whole_same_side(self):
        graph = complete_bipartite(4, 3)
        assert n2_neighbors(graph, LEFT, 0) == {(LEFT, u) for u in range(1, 4)}


class TestNLe2:
    def test_union_of_one_and_two_hop(self):
        graph = BipartiteGraph(edges=[(1, "a"), (2, "a"), (2, "b"), (3, "b")])
        assert n_le2_neighbors(graph, LEFT, 2) == {
            (LEFT, 1),
            (LEFT, 3),
            (RIGHT, "a"),
            (RIGHT, "b"),
        }

    def test_sizes_match_explicit_neighbourhoods(self):
        graph = random_bipartite(7, 8, 0.3, seed=5)
        sizes = n_le2_sizes(graph)
        for u in graph.left_vertices():
            assert sizes[(LEFT, u)] == len(n_le2_neighbors(graph, LEFT, u))
        for v in graph.right_vertices():
            assert sizes[(RIGHT, v)] == len(n_le2_neighbors(graph, RIGHT, v))

    def test_adjacency_is_symmetric(self):
        graph = random_bipartite(6, 6, 0.4, seed=8)
        adjacency = n_le2_adjacency(graph)
        for key, neighbours in adjacency.items():
            for other in neighbours:
                assert key in adjacency[other]

    def test_path_graph_sizes(self):
        graph = path_bipartite(4)  # 5 vertices in a path
        sizes = n_le2_sizes(graph)
        # Interior vertices of a path see 2 one-hop + up to 2 two-hop vertices.
        assert max(sizes.values()) <= 4
        assert min(sizes.values()) >= 1


class TestNLe2Flat:
    @pytest.mark.parametrize("seed", range(5))
    def test_flat_matches_set_adjacency(self, seed):
        graph = random_bipartite(7, 8, 0.3, seed=seed)
        csr = CSRBipartite.from_bipartite(graph)
        indptr, indices = n_le2_flat(csr)
        adjacency = n_le2_adjacency(graph)
        assert indptr[-1] == len(indices)
        for i in range(csr.num_vertices):
            slice_ids = indices[indptr[i] : indptr[i + 1]]
            # Each id appears exactly once and the id set equals the
            # set-keyed N_<=2 neighbourhood mapped through the index.
            assert len(slice_ids) == len(set(slice_ids))
            expected = {csr.index_of(key) for key in adjacency[csr.key_of(i)]}
            assert set(slice_ids) == expected

    def test_flat_sizes_match_n_le2_sizes(self):
        graph = random_bipartite(9, 6, 0.35, seed=7)
        csr = CSRBipartite.from_bipartite(graph)
        indptr, _ = n_le2_flat(csr)
        sizes = n_le2_sizes(graph)
        for i in range(csr.num_vertices):
            assert indptr[i + 1] - indptr[i] == sizes[csr.key_of(i)]

    def test_empty_graph(self):
        indptr, indices = n_le2_flat(CSRBipartite.from_bipartite(BipartiteGraph()))
        assert list(indptr) == [0] and list(indices) == []
