"""Tests for the indexed bitset graph representation."""

from __future__ import annotations

import random

import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.bitset import (
    IndexedBitGraph,
    core_numbers_masks,
    degeneracy_of_mask,
    iter_bits,
    k_core_masks,
)
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    random_bipartite,
    random_power_law_bipartite,
)
from repro.cores.core import core_numbers, degeneracy, k_core


class TestIterBits:
    def test_empty_mask(self):
        assert list(iter_bits(0)) == []

    def test_single_bits(self):
        for i in (0, 1, 5, 63, 64, 200):
            assert list(iter_bits(1 << i)) == [i]

    def test_mixed_mask_ascending(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]


class TestIndexedBitGraph:
    def test_roundtrip_structure(self):
        graph = BipartiteGraph(edges=[(1, "a"), (1, "b"), (2, "a"), (3, "c")])
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        assert bitgraph.n_left == 3
        assert bitgraph.n_right == 3
        assert bitgraph.num_vertices == 6
        assert bitgraph.num_edges == 4
        assert bitgraph.density == graph.density
        # Every edge of the original graph appears in the masks and vice versa.
        for i, u in enumerate(bitgraph.left_labels):
            neighbours = set(bitgraph.right_labels_of(bitgraph.adj_left[i]))
            assert neighbours == graph.neighbors_left(u)

    def test_adj_right_is_transpose(self):
        graph = random_bipartite(8, 6, 0.5, seed=3)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        for i in range(bitgraph.n_left):
            for j in range(bitgraph.n_right):
                assert bool(bitgraph.adj_left[i] >> j & 1) == bool(
                    bitgraph.adj_right[j] >> i & 1
                )

    def test_mask_label_roundtrip(self):
        graph = random_bipartite(7, 9, 0.4, seed=1)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        labels = sorted(graph.left, key=repr)[:4]
        mask = bitgraph.left_mask(labels)
        assert sorted(bitgraph.left_labels_of(mask), key=repr) == labels
        rlabels = sorted(graph.right, key=repr)[:5]
        rmask = bitgraph.right_mask(rlabels)
        assert sorted(bitgraph.right_labels_of(rmask), key=repr) == rlabels

    def test_all_masks(self):
        bitgraph = IndexedBitGraph.from_bipartite(complete_bipartite(3, 5))
        assert bitgraph.all_left_mask.bit_count() == 3
        assert bitgraph.all_right_mask.bit_count() == 5

    def test_empty_graph(self):
        bitgraph = IndexedBitGraph.from_bipartite(BipartiteGraph())
        assert bitgraph.num_vertices == 0
        assert bitgraph.num_edges == 0
        assert bitgraph.density == 0.0
        assert bitgraph.all_left_mask == 0

    def test_restricted_subgraph_matches_induced(self):
        graph = random_bipartite(10, 10, 0.5, seed=7)
        left = {0, 2, 4, 6}
        right = {1, 3, 5}
        bitgraph = IndexedBitGraph.from_bipartite(graph, left, right)
        induced = graph.induced_subgraph(left, right)
        assert bitgraph.num_edges == induced.num_edges
        for i, u in enumerate(bitgraph.left_labels):
            assert set(bitgraph.right_labels_of(bitgraph.adj_left[i])) == set(
                induced.neighbors_left(u)
            )

    def test_restriction_ignores_missing_vertices(self):
        graph = BipartiteGraph(edges=[(1, "a")])
        bitgraph = IndexedBitGraph.from_bipartite(graph, {1, 99}, {"a", "zz"})
        assert bitgraph.n_left == 1
        assert bitgraph.n_right == 1


class TestKCoreMasks:
    @pytest.mark.parametrize("k", range(0, 7))
    def test_matches_set_based_k_core(self, k):
        graph = random_bipartite(12, 12, 0.5, seed=k)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        left_mask, right_mask = k_core_masks(bitgraph, k)
        expected = k_core(graph, k)
        assert set(bitgraph.left_labels_of(left_mask)) == expected.left
        assert set(bitgraph.right_labels_of(right_mask)) == expected.right

    def test_crown_graph_core(self):
        bitgraph = IndexedBitGraph.from_bipartite(crown_graph(6))
        left_mask, right_mask = k_core_masks(bitgraph, 5)
        assert left_mask.bit_count() == 6
        assert right_mask.bit_count() == 6
        left_mask, right_mask = k_core_masks(bitgraph, 6)
        assert left_mask == 0
        assert right_mask == 0


class TestCoreNumbersMasks:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_set_based_core_numbers(self, seed):
        graph = random_bipartite(12, 14, 0.3, seed=seed)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        core_left, core_right = core_numbers_masks(bitgraph)
        reference = core_numbers(graph)
        for i, label in enumerate(bitgraph.left_labels):
            assert core_left[i] == reference[(LEFT, label)]
        for j, label in enumerate(bitgraph.right_labels):
            assert core_right[j] == reference[(RIGHT, label)]

    @pytest.mark.parametrize("seed", range(8))
    def test_restriction_matches_induced_subgraph(self, seed):
        graph = random_bipartite(14, 14, 0.3, seed=seed)
        rng = random.Random(seed)
        left = {u for u in graph.left_vertices() if rng.random() < 0.7}
        right = {v for v in graph.right_vertices() if rng.random() < 0.7}
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        left_mask = bitgraph.left_mask(left)
        right_mask = bitgraph.right_mask(right)
        core_left, core_right = core_numbers_masks(bitgraph, left_mask, right_mask)
        reference = core_numbers(graph.induced_subgraph(left, right))
        for i in iter_bits(left_mask):
            assert core_left[i] == reference[(LEFT, bitgraph.left_labels[i])]
        for j in iter_bits(right_mask):
            assert core_right[j] == reference[(RIGHT, bitgraph.right_labels[j])]
        assert degeneracy_of_mask(bitgraph, left_mask, right_mask) == degeneracy(
            graph.induced_subgraph(left, right)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_degeneracy_of_mask_matches_set_based(self, seed):
        graph = random_power_law_bipartite(30, 30, 2.5, seed=seed)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        assert degeneracy_of_mask(bitgraph) == degeneracy(graph)

    def test_complete_graph_core_numbers(self):
        bitgraph = IndexedBitGraph.from_bipartite(complete_bipartite(4, 6))
        core_left, core_right = core_numbers_masks(bitgraph)
        assert core_left == [4] * 4
        assert core_right == [4] * 6
        assert degeneracy_of_mask(bitgraph) == 4

    def test_empty_graph_and_empty_restriction(self):
        empty = IndexedBitGraph.from_bipartite(BipartiteGraph())
        assert core_numbers_masks(empty) == ([], [])
        assert degeneracy_of_mask(empty) == 0
        bitgraph = IndexedBitGraph.from_bipartite(complete_bipartite(3, 3))
        core_left, core_right = core_numbers_masks(bitgraph, 0, 0)
        assert core_left == [0] * 3
        assert core_right == [0] * 3
        assert degeneracy_of_mask(bitgraph, 0, 0) == 0
