"""Tests for vertex-centred subgraph generation (Definition 6)."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import LEFT, RIGHT
from repro.graph.generators import complete_bipartite, random_bipartite
from repro.cores.orders import ALL_ORDERS, ORDER_BIDEGENERACY, search_order
from repro.cores.bicore import bidegeneracy
from repro.mbb.vertex_centred import (
    iter_vertex_centred_subgraphs,
    subgraph_density_profile,
    total_subgraph_size,
)
from repro.baselines.brute_force import brute_force_side_size


class TestSubgraphConstruction:
    def test_one_subgraph_per_vertex(self):
        graph = random_bipartite(6, 6, 0.4, seed=1)
        order = search_order(graph, ORDER_BIDEGENERACY)
        subs = list(iter_vertex_centred_subgraphs(graph, order))
        assert len(subs) == graph.num_vertices

    def test_center_is_inside_its_subgraph(self):
        graph = random_bipartite(6, 6, 0.4, seed=2)
        order = search_order(graph, ORDER_BIDEGENERACY)
        for sub in iter_vertex_centred_subgraphs(graph, order):
            side, label = sub.center
            if side == LEFT:
                assert sub.graph.has_left_vertex(label)
            else:
                assert sub.graph.has_right_vertex(label)

    def test_subgraphs_only_contain_later_vertices(self):
        graph = random_bipartite(7, 7, 0.4, seed=3)
        order = search_order(graph, ORDER_BIDEGENERACY)
        positions = {key: index for index, key in enumerate(order)}
        for sub in iter_vertex_centred_subgraphs(graph, order):
            for u in sub.graph.left_vertices():
                assert positions[(LEFT, u)] >= sub.position
            for v in sub.graph.right_vertices():
                assert positions[(RIGHT, v)] >= sub.position

    def test_last_vertex_subgraph_is_just_itself(self):
        graph = complete_bipartite(3, 3)
        order = search_order(graph, ORDER_BIDEGENERACY)
        subs = list(iter_vertex_centred_subgraphs(graph, order))
        assert subs[-1].size == 1


class TestCoveringProperty:
    @pytest.mark.parametrize("order_name", ALL_ORDERS)
    @pytest.mark.parametrize("seed", range(5))
    def test_optimum_is_preserved_by_the_family(self, order_name, seed):
        """Observations 4-5: some centred subgraph contains an optimum MBB."""
        graph = random_bipartite(7, 7, 0.5, seed=seed)
        optimum = brute_force_side_size(graph)
        if optimum == 0:
            return
        order = search_order(graph, order_name)
        best_in_family = 0
        for sub in iter_vertex_centred_subgraphs(graph, order):
            if min(sub.graph.num_left, sub.graph.num_right) < optimum:
                continue
            best_in_family = max(
                best_in_family, brute_force_side_size(sub.graph)
            )
        assert best_in_family == optimum


class TestLaziness:
    def test_generation_materialises_nothing(self):
        graph = random_bipartite(10, 10, 0.4, seed=6)
        order = search_order(graph, ORDER_BIDEGENERACY)
        for sub in iter_vertex_centred_subgraphs(graph, order):
            # Member counts and the size test must not build either graph form.
            assert sub.min_side == min(sub.num_left, sub.num_right)
            assert sub.size == sub.num_left + sub.num_right
            assert sub._graph is None
            assert sub._bitgraph is None

    def test_graph_property_matches_members_and_caches(self):
        graph = random_bipartite(8, 8, 0.5, seed=7)
        order = search_order(graph, ORDER_BIDEGENERACY)
        for sub in iter_vertex_centred_subgraphs(graph, order):
            materialised = sub.graph
            assert materialised is sub.graph  # cached
            assert materialised.left == sub.left_members
            assert materialised.right == sub.right_members

    def test_bitgraph_matches_graph_and_caches(self):
        graph = random_bipartite(8, 8, 0.5, seed=8)
        order = search_order(graph, ORDER_BIDEGENERACY)
        for sub in iter_vertex_centred_subgraphs(graph, order):
            bitgraph = sub.to_bitgraph()
            assert sub.to_bitgraph() is bitgraph  # cached; S3 reuses S2's copy
            assert set(bitgraph.left_labels) == sub.left_members
            assert set(bitgraph.right_labels) == sub.right_members
            assert bitgraph.num_edges == sub.graph.num_edges
            assert sub.density == sub.graph.density


class TestDensity:
    def test_density_does_not_materialise_any_graph_form(self):
        # Regression: density used to call to_bitgraph(), paying the full
        # bitset indexing for subgraphs no search would ever touch.
        graph = random_bipartite(9, 9, 0.4, seed=11)
        order = search_order(graph, ORDER_BIDEGENERACY)
        for sub in iter_vertex_centred_subgraphs(graph, order):
            assert 0.0 <= sub.density <= 1.0
            assert sub._graph is None
            assert sub._bitgraph is None

    def test_density_matches_both_materialised_forms(self):
        graph = random_bipartite(9, 9, 0.5, seed=12)
        order = search_order(graph, ORDER_BIDEGENERACY)
        for sub in iter_vertex_centred_subgraphs(graph, order):
            direct = sub.density
            assert direct == pytest.approx(sub.graph.density)
            assert direct == pytest.approx(sub.to_bitgraph().density)
            # With the bitgraph cached, density reuses it.
            assert sub.density == pytest.approx(direct)

    def test_empty_other_side_has_zero_density(self):
        graph = random_bipartite(5, 5, 0.3, seed=13)
        order = search_order(graph, ORDER_BIDEGENERACY)
        last = list(iter_vertex_centred_subgraphs(graph, order))[-1]
        assert last.size == 1
        assert last.density == 0.0


class TestSizeBounds:
    def test_total_size_bound_for_bidegeneracy_order(self):
        """Lemma 8: total size is O((|L|+|R|) * bidegeneracy)."""
        graph = random_bipartite(15, 15, 0.2, seed=4)
        order = search_order(graph, ORDER_BIDEGENERACY)
        total = total_subgraph_size(graph, order)
        delta = bidegeneracy(graph)
        assert total <= graph.num_vertices * (delta + 1)

    def test_density_profile_values_are_valid(self):
        graph = random_bipartite(10, 10, 0.3, seed=5)
        for order_name in ALL_ORDERS:
            profile = subgraph_density_profile(graph, search_order(graph, order_name))
            assert all(0.0 < value <= 1.0 for value in profile)
