"""Kernel comparison — bitset vs adjacency-set ``denseMBB`` inner loop.

Times :func:`repro.mbb.dense.dense_mbb` with both branch-and-bound kernels
on the Table 4 dense synthetic instances.  Both kernels run the same
algorithm and find the same optimum; their node counts (reported per row)
differ only by a few percent from tie-breaking, so the time ratio mostly
isolates the data-structure effect: hash-set intersections vs single
``&``/``bit_count`` operations on packed integers.

The resulting rows are archived as ``BENCH_kernels.json`` at the repository
root so regressions of the bitset kernel are caught by comparing against
the committed baseline.
"""

from __future__ import annotations

import json
from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table, run_backend
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.heuristics import degree_heuristic
from repro.workloads.synthetic import DenseCase, dense_case_graph

#: Table 4-style cases used for the comparison: doubling sides at the two
#: densities where the paper's dense experiments start and end.  The
#: side-48 case was added once the bitset kernel cut the 40x40 time by
#: >= 3x, extending the measured range beyond the original side-40 cap.
DEFAULT_KERNEL_CASES = (
    DenseCase(side=16, density=0.85),
    DenseCase(side=24, density=0.85),
    DenseCase(side=32, density=0.85),
    DenseCase(side=32, density=0.70),
    DenseCase(side=40, density=0.85),
    DenseCase(side=48, density=0.85),
)

KERNELS = (KERNEL_SETS, KERNEL_BITS)


def run_kernel_case(
    case: DenseCase,
    *,
    instances: int = 2,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time both kernels on one dense case, averaged over instances."""
    rows: List[Dict[str, object]] = []
    for kernel in KERNELS:
        times: List[float] = []
        sides: List[int] = []
        nodes: List[int] = []
        timed_out = False
        for instance in range(instances):
            graph = dense_case_graph(case, instance)
            result, elapsed = run_backend(
                graph,
                "dense",
                kernel=kernel,
                time_budget=time_budget,
                initial_best=degree_heuristic(graph),
            )
            times.append(elapsed)
            sides.append(result.side_size)
            nodes.append(result.stats.nodes)
            if not result.optimal:
                timed_out = True
        rows.append(
            {
                "size": f"{case.side}x{case.side}",
                "density": case.density,
                "kernel": kernel,
                "seconds": mean(times),
                "nodes": max(nodes),
                "mbb_side": max(sides),
                "timed_out": timed_out,
            }
        )
    return rows


def run_kernel_comparison(
    cases: Sequence[DenseCase] = DEFAULT_KERNEL_CASES,
    *,
    instances: int = 2,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all comparison rows, one per (case, kernel)."""
    rows: List[Dict[str, object]] = []
    for case in cases:
        rows.extend(
            run_kernel_case(case, instances=instances, time_budget=time_budget)
        )
    return rows


def speedups(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-case ``sets seconds / bits seconds`` ratios."""
    by_case: Dict[tuple, Dict[str, Dict[str, object]]] = {}
    for row in rows:
        key = (row["size"], row["density"])
        by_case.setdefault(key, {})[str(row["kernel"])] = row
    result: List[Dict[str, object]] = []
    for (size, density), pair in by_case.items():
        if KERNEL_SETS not in pair or KERNEL_BITS not in pair:
            continue
        sets_s = float(pair[KERNEL_SETS]["seconds"])  # type: ignore[arg-type]
        bits_s = float(pair[KERNEL_BITS]["seconds"])  # type: ignore[arg-type]
        result.append(
            {
                "size": size,
                "density": density,
                "sets_seconds": sets_s,
                "bits_seconds": bits_s,
                "speedup": sets_s / bits_s if bits_s > 0 else float("inf"),
            }
        )
    return result


def format_kernel_comparison(rows: Sequence[Dict[str, object]]) -> str:
    """Render raw rows plus the per-case speedup summary."""
    summary = speedups(rows)
    return "\n\n".join(
        [
            format_table(list(rows)),
            format_table(summary) if summary else "(no complete kernel pairs)",
        ]
    )


def write_benchmark_json(rows: Sequence[Dict[str, object]], path: str) -> None:
    """Archive comparison rows (plus speedups) as a JSON document."""
    document = {"rows": list(rows), "speedups": speedups(rows)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
