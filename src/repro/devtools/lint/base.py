"""Rule framework: per-file context, the rule base class and the registry.

A rule is a class with a unique ``RPLxxx`` code whose :meth:`Rule.check`
inspects one parsed file (a :class:`FileContext`) and yields
:class:`~repro.devtools.lint.findings.Finding` records.  Rules register
themselves with the :func:`register_rule` decorator; the runner asks
:func:`all_rules` for one instance of every registered rule, sorted by
code so analysis order — and therefore output order — is deterministic.

Suppressions
------------
A finding is suppressed by a ``# reprolint: disable=RPL001`` comment on
the *physical line the finding anchors to* (multiple codes separated by
commas; ``disable=all`` silences every rule on that line).  Suppression
is per-line by design: a file- or block-level switch would let a new
violation hide behind an old annotation.  Parse failures (``RPL000``)
cannot be suppressed — an unparseable file cannot carry trustworthy
comments.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Set, Tuple, Type

from repro.devtools.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.devtools.lint.project import ProjectContext

#: ``# reprolint: disable=RPL001,RPL004`` (or ``disable=all``).
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Rule codes look like ``RPL`` followed by exactly three digits.
_CODE_RE = re.compile(r"^RPL\d{3}$")

#: Code reserved for files the analyzer cannot parse.
PARSE_ERROR_CODE = "RPL000"


class FileContext:
    """One parsed source file plus the path metadata rules scope by."""

    def __init__(self, relpath: str, source: str, tree: ast.Module) -> None:
        #: POSIX-style path relative to the project root, e.g.
        #: ``"src/repro/mbb/sparse.py"`` — what every scope test keys on.
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        self._suppressed: Dict[int, Set[str]] = self._parse_suppressions()

    # ------------------------------------------------------------------
    # scoping helpers
    # ------------------------------------------------------------------
    def is_under(self, *prefixes: str) -> bool:
        """True when the file lives under any of the given directories."""
        return any(
            self.relpath == prefix or self.relpath.startswith(prefix.rstrip("/") + "/")
            for prefix in prefixes
        )

    def is_library_code(self) -> bool:
        """True for the shipped library (``src/``), not tests/benchmarks."""
        return self.is_under("src")

    # ------------------------------------------------------------------
    # suppressions
    # ------------------------------------------------------------------
    def _parse_suppressions(self) -> Dict[int, Set[str]]:
        suppressed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = {
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            }
            if codes:
                suppressed[lineno] = codes
        return suppressed

    def is_suppressed(self, finding: Finding) -> bool:
        """True when the finding's line carries a matching disable comment."""
        if finding.code == PARSE_ERROR_CODE:
            return False
        codes = self._suppressed.get(finding.line)
        if not codes:
            return False
        return "ALL" in codes or finding.code in codes

    def suppression_lines(self) -> Dict[int, Set[str]]:
        """Mapping of line number to suppressed codes (for tooling/tests)."""
        return {line: set(codes) for line, codes in self._suppressed.items()}


class Rule:
    """Base class every reprolint rule derives from.

    Subclasses set :attr:`code`, :attr:`name` and :attr:`description`
    and implement :meth:`check`.  The :meth:`finding` helper anchors a
    finding to an AST node with the 0-to-1-based column conversion
    applied.
    """

    #: Unique ``RPLxxx`` code (also the suppression token).
    code: str = ""
    #: Short kebab-case identifier shown in listings.
    name: str = ""
    #: One-line description of the enforced invariant.
    description: str = ""
    #: Multi-line rationale shown by ``repro-mbb lint --explain`` — why
    #: the invariant exists (usually the bug history it encodes).
    rationale: str = ""
    #: Short illustrative snippet of a violation (and its fix) for
    #: ``--explain`` output.
    example: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (empty for out-of-scope files)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` with this rule's code."""
        return Finding(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for cross-file rules driven by the project model.

    Unlike per-file :class:`Rule` subclasses, a project rule runs
    exactly once per analysis over the
    :class:`~repro.devtools.lint.project.ProjectContext` the runner
    builds from every parsed file, so it can reason about import edges,
    call-graph reachability and contracts spanning modules.  Per-line
    suppression comments still apply: the runner maps each finding back
    to its file's :class:`FileContext` before reporting.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules contribute nothing during the per-file pass."""
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings for the whole project (run once per analysis)."""
        raise NotImplementedError

    def project_finding(
        self, relpath: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored to ``node`` inside ``relpath``."""
        return Finding(
            path=relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )

    def line_finding(
        self, relpath: str, line: int, column: int, message: str
    ) -> Finding:
        """Build a finding at an explicit (1-based) line/column."""
        return Finding(
            path=relpath, line=line, column=column, code=self.code, message=message
        )


#: Registry mapping rule code to rule class, filled by :func:`register_rule`.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule under its code.

    Codes must match ``RPL\\d{3}`` and be unique; ``RPL000`` is reserved
    for parse failures emitted by the runner itself.
    """
    if not _CODE_RE.match(cls.code or ""):
        raise ValueError(f"rule code must match RPLxxx, got {cls.code!r}")
    if cls.code == PARSE_ERROR_CODE:
        raise ValueError(f"{PARSE_ERROR_CODE} is reserved for parse failures")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"rule code {cls.code} is already registered")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules(codes: Iterable[str] = ()) -> List[Rule]:
    """One instance of every registered rule, sorted by code.

    ``codes`` optionally restricts the set (unknown codes raise, so a
    typo in ``--rules`` cannot silently run nothing).
    """
    # Importing the rules package is what populates the registry; done
    # lazily so `base` itself never depends on the rule modules.
    from repro.devtools.lint import rules  # noqa: F401

    wanted = {code.strip().upper() for code in codes if code.strip()}
    unknown = wanted - set(RULE_REGISTRY)
    if unknown:
        raise ValueError(
            f"unknown rule codes {sorted(unknown)}; "
            f"registered: {sorted(RULE_REGISTRY)}"
        )
    selected = sorted(wanted) if wanted else sorted(RULE_REGISTRY)
    return [RULE_REGISTRY[code]() for code in selected]


def rule_table() -> List[Tuple[str, str, str]]:
    """``(code, name, description)`` rows for docs and ``lint --rules help``."""
    from repro.devtools.lint import rules  # noqa: F401

    return [
        (code, RULE_REGISTRY[code].name, RULE_REGISTRY[code].description)
        for code in sorted(RULE_REGISTRY)
    ]
