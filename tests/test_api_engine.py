"""Engine tests: dispatch, budgets, cancellation, batch determinism."""

from __future__ import annotations

import pytest

from repro import solve_mbb
from repro.api import GraphSpec, MBBEngine, SolveReport, SolveRequest
from repro.exceptions import InvalidParameterError
from repro.graph.generators import random_bipartite
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.dense import dense_mbb


class TestSolveGraph:
    @pytest.mark.parametrize("backend", ["auto", "dense", "sparse", "basic"])
    def test_matches_solve_mbb(self, backend):
        engine = MBBEngine()
        for seed in range(4):
            graph = random_bipartite(8, 8, 0.5, seed=seed)
            via_engine = engine.solve_graph(graph, backend=backend)
            via_wrapper = solve_mbb(graph, method=backend)
            assert via_engine.side_size == via_wrapper.side_size

    def test_engine_and_wrapper_return_identical_bicliques(self):
        # Acceptance criterion: solve_mbb(g) and MBBEngine().solve(request)
        # agree on the cross-kernel property-test instances.
        engine = MBBEngine()
        for seed in range(8):
            graph = random_bipartite(9, 9, 0.55, seed=seed)
            report = engine.solve(
                SolveRequest(graph=GraphSpec.random(9, 9, 0.55, seed=seed))
            )
            wrapped = solve_mbb(graph)
            assert report.biclique == wrapped.biclique

    def test_unknown_backend_raises(self):
        with pytest.raises(InvalidParameterError):
            MBBEngine().solve_graph(random_bipartite(4, 4, 0.5, seed=1), backend="nope")

    def test_unknown_kernel_raises(self):
        with pytest.raises(InvalidParameterError):
            MBBEngine().solve_graph(
                random_bipartite(4, 4, 0.5, seed=1), kernel="quantum"
            )

    def test_budget_rejected_for_budgetless_backend(self):
        graph = random_bipartite(4, 4, 0.5, seed=1)
        with pytest.raises(InvalidParameterError):
            MBBEngine().solve_graph(graph, backend="brute_force", node_budget=10)
        with pytest.raises(InvalidParameterError):
            MBBEngine().solve_graph(graph, backend="mvb", time_budget=1.0)

    def test_negative_budget_rejected(self):
        graph = random_bipartite(4, 4, 0.5, seed=1)
        with pytest.raises(InvalidParameterError):
            MBBEngine().solve_graph(graph, node_budget=-1)

    def test_node_budget_is_enforced(self):
        graph = random_bipartite(20, 20, 0.5, seed=2)
        result = MBBEngine().solve_graph(graph, backend="basic", node_budget=3)
        assert not result.optimal
        assert result.stats.nodes <= 4

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            MBBEngine(max_workers=0)


class TestCooperativeCancellation:
    def test_cancel_hook_aborts_search(self):
        graph = random_bipartite(18, 18, 0.6, seed=3)
        context = SearchContext()
        context.cancel_hook = lambda: context.stats.nodes >= 5
        result = dense_mbb(graph, context=context)
        assert not result.optimal
        assert context.cancelled and context.aborted
        assert context.stats.nodes <= 6

    def test_cancel_method_aborts_next_node(self):
        context = SearchContext()
        context.cancel()
        with pytest.raises(SearchAborted):
            context.enter_node(0)

    def test_cancel_propagates_into_size_constrained_backend(self):
        from repro.api import get_backend

        graph = random_bipartite(14, 14, 0.6, seed=6)
        context = SearchContext()
        context.cancel()
        result = get_backend("size-constrained").run(
            graph, context, kernel="bits", seed=0
        )
        assert not result.optimal
        assert context.stats.nodes == 0

    def test_deadline_propagates_into_size_constrained_backend(self):
        import time

        from repro.api import get_backend

        graph = random_bipartite(14, 14, 0.6, seed=7)
        context = SearchContext()
        context.deadline = time.perf_counter() - 1.0  # already expired
        result = get_backend("size-constrained").run(
            graph, context, kernel="bits", seed=0
        )
        assert not result.optimal

    def test_checkpoint_enforces_budgets_without_node_stats(self):
        import time

        context = SearchContext()
        context.checkpoint()  # no budgets set: a no-op
        assert context.stats.nodes == 0
        context.deadline = time.perf_counter() - 1.0
        with pytest.raises(SearchAborted):
            context.checkpoint()
        assert context.aborted
        assert context.stats.nodes == 0

    def test_engine_deadline_aborts_during_s2(self):
        # Regression: engine deadlines used to be polled only inside the
        # dense kernel (S3), so a request whose budget expired during the
        # bridging stage claimed optimality.  With the heuristic stage
        # disabled, the first checkpoint that can observe the expired
        # deadline is S2's.
        from repro.graph.generators import random_power_law_bipartite
        from repro.mbb.sparse import SparseConfig

        graph = random_power_law_bipartite(40, 40, 3.0, seed=2)
        result = MBBEngine().solve_graph(
            graph,
            backend="sparse",
            time_budget=0.0,
            sparse_config=SparseConfig(use_heuristic=False),
        )
        assert not result.optimal
        assert result.terminated_at == "S2"

    def test_engine_deadline_aborts_during_s1(self):
        result = MBBEngine().solve_graph(
            random_bipartite(20, 20, 0.4, seed=3),
            backend="sparse",
            time_budget=0.0,
        )
        assert not result.optimal
        assert result.terminated_at == "S1"

    def test_cancelled_search_keeps_incumbent(self):
        graph = random_bipartite(16, 16, 0.7, seed=4)
        baseline = solve_mbb(graph)
        context = SearchContext()
        context.cancel_hook = lambda: context.best_side >= 2
        result = dense_mbb(graph, context=context)
        assert result.side_size >= 2
        assert result.side_size <= baseline.side_size
        assert result.biclique.is_valid_in(graph)


class TestSolveMany:
    def _requests(self, count=8):
        return [
            SolveRequest(
                graph=GraphSpec.random(9, 9, 0.5, seed=seed),
                backend="dense",
                tag=f"req-{seed}",
            )
            for seed in range(count)
        ]

    def test_results_in_request_order(self):
        reports = MBBEngine().solve_many(self._requests())
        assert [report.request.tag for report in reports] == [
            f"req-{seed}" for seed in range(8)
        ]

    def test_pool_matches_serial(self):
        # Acceptance criterion: >= 8 requests through the process pool,
        # deterministic and identical to the serial execution.
        requests = self._requests(8)
        engine = MBBEngine(max_workers=4)
        parallel = engine.solve_many(requests)
        serial = engine.solve_many(requests, parallel=False)
        assert len(parallel) == len(serial) == 8
        for left, right in zip(parallel, serial, strict=True):
            assert left.request == right.request
            assert left.side_size == right.side_size
            assert left.left == right.left
            assert left.right == right.right
            assert left.optimal == right.optimal
            assert left.backend == right.backend

    def test_empty_batch(self):
        assert MBBEngine().solve_many([]) == []

    def test_mixed_backends_in_one_batch(self):
        requests = [
            SolveRequest(graph=GraphSpec.random(8, 8, 0.5, seed=1), backend="dense"),
            SolveRequest(graph=GraphSpec.random(8, 8, 0.5, seed=1), backend="basic"),
            SolveRequest(graph=GraphSpec.random(8, 8, 0.5, seed=1), backend="sparse"),
            SolveRequest(
                graph=GraphSpec.random(8, 8, 0.5, seed=1), backend="size-constrained"
            ),
        ]
        reports = MBBEngine().solve_many(requests)
        sides = {report.side_size for report in reports}
        assert len(sides) == 1
        assert [report.backend for report in reports] == [
            "dense",
            "basic",
            "sparse",
            "size-constrained",
        ]

    def test_worker_error_is_isolated_to_its_request(self):
        # An invalid request must surface as a structured error report on
        # that request alone — the rest of the batch still solves, and
        # nothing silently re-runs (PR 9 replaced the raise-on-first-error
        # contract with per-request isolation).
        from repro.api import STATUS_ERROR, STATUS_OK

        requests = [
            SolveRequest(graph=GraphSpec.random(6, 6, 0.5, seed=s), backend="dense")
            for s in range(2)
        ] + [
            SolveRequest(
                graph=GraphSpec.random(6, 6, 0.5, seed=9),
                backend="brute_force",
                node_budget=5,  # brute_force rejects budgets
            )
        ]
        reports = MBBEngine().solve_many(requests)
        assert [report.status for report in reports] == [
            STATUS_OK,
            STATUS_OK,
            STATUS_ERROR,
        ]
        failed = reports[2]
        assert failed.error is not None
        assert failed.error.kind == "invalid_parameter"
        assert "budget" in failed.error.message
        assert not failed.optimal and failed.side_size == 0
        # The wire codec carries the error losslessly (RPL008 contract).
        assert SolveReport.from_json(failed.to_json()) == failed

    def test_serial_batch_over_one_graph_amortises_preparation(self):
        from repro.api import PreparedGraphCache

        engine = MBBEngine(prepared_cache=PreparedGraphCache())
        requests = [
            SolveRequest(
                graph=GraphSpec.power_law(30, 30, 3.0, seed=7),
                backend="sparse",
                tag=str(index),
            )
            for index in range(3)
        ]
        reports = engine.solve_many(requests, parallel=False)
        assert [r.stats["prepared_cache_hits"] for r in reports] == [0, 1, 1]
        assert [r.stats["prepared_cache_misses"] for r in reports] == [1, 0, 0]
        assert len({r.side_size for r in reports}) == 1

    def test_per_request_budgets_are_enforced(self):
        requests = [
            SolveRequest(
                graph=GraphSpec.random(18, 18, 0.5, seed=5),
                backend="basic",
                node_budget=3,
            ),
            SolveRequest(graph=GraphSpec.random(6, 6, 0.5, seed=5), backend="basic"),
        ]
        reports = MBBEngine().solve_many(requests)
        assert not reports[0].optimal
        assert reports[1].optimal
