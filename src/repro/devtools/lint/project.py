"""The whole-project model behind reprolint's cross-file rules.

Per-file AST rules (RPL001-RPL004) can enforce invariants whose evidence
fits in one module.  The invariants gating the parallel-S3 work do not:
"does every search entry point *reach* ``SearchContext.checkpoint()``
through its callees", "is prepared/CSR state ever mutated after
publication", "do kernel layers stay import-clean of the service layers
above them".  Those need one model of the project as a whole, built in a
single pass over every parsed file:

* a **module table** mapping root-relative paths to dotted module names
  (``src/repro/mbb/sparse.py`` → ``repro.mbb.sparse``; ``src/`` is the
  import root, other scan roots such as ``benchmarks/`` keep their
  directory as the package name);
* an **import graph** with alias resolution: every ``import``/``from``
  statement is recorded with its resolved absolute target, the name it
  binds in the module namespace, and whether it executes at module level
  (lazy function-body imports deliberately keep the *cycle* graph
  acyclic, so they are tracked but flagged separately);
* a per-module **symbol table** of classes (methods, base classes,
  dataclass fields) and functions;
* a conservative **call graph** over ``module::qualname`` nodes,
  resolving direct calls to local and imported names, ``module.func``
  calls through module aliases, ``self.method`` through the class and
  its project-resolvable bases, and ``obj.method`` where ``obj``'s class
  is known from a parameter annotation or a constructor assignment.
  Calls inside nested functions are attributed to the enclosing
  top-level function or method — a deliberate over-approximation that
  keeps reachability queries simple.  As a last resort an attribute call
  whose receiver type is unknown resolves by method name when exactly
  one project class defines that method (class-hierarchy-analysis
  lite).

Everything is computed deterministically (sorted iteration only), so two
runs over the same tree produce byte-identical reports — the property
the CI determinism check pins down.

The model is dependency-free by the same rule as the rest of reprolint:
:mod:`ast` plus the standard library, nothing else.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.base import FileContext


def module_name_for(relpath: str) -> Optional[str]:
    """Dotted module name for a root-relative POSIX path, or ``None``.

    ``src/`` is treated as the import root (matching ``PYTHONPATH=src``);
    every other scan root (``tests/``, ``benchmarks/``, ``examples/``)
    keeps its directory name as the top-level package, which is how the
    test runner imports them.
    """
    if not relpath.endswith(".py"):
        return None
    parts = relpath.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    if not parts or not all(parts):
        return None
    return ".".join(parts)


@dataclass(frozen=True)
class ImportRecord:
    """One resolved import binding inside a module."""

    #: Absolute dotted name of the imported module.
    target: str
    #: Symbol taken from ``target`` (``None`` for a plain module import).
    symbol: Optional[str]
    #: Name the import binds in the importing namespace.
    alias: str
    #: 1-based line / 0-based column of the import statement.
    lineno: int
    col_offset: int
    #: ``True`` when the import executes at module import time (module
    #: level); ``False`` for lazy imports inside functions or methods.
    toplevel: bool


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    #: ``func`` for module-level functions, ``Class.method`` for methods.
    qualname: str
    node: ast.AST
    lineno: int
    #: ``True`` when the scope (including nested defs) contains a
    #: ``for``/``while`` loop.
    has_loop: bool = False


@dataclass
class ClassInfo:
    """One class definition with the facts the cross-file rules need."""

    name: str
    node: ast.ClassDef
    lineno: int
    #: Base-class expressions as dotted source text (resolution happens
    #: through :meth:`ProjectContext.resolve`).
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    is_dataclass: bool = False
    #: Dataclass fields as ``(name, lineno)`` in declaration order
    #: (annotated class-body assignments, ``ClassVar`` excluded).
    fields: List[Tuple[str, int]] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Everything the project model knows about one parsed file."""

    relpath: str
    name: str
    ctx: FileContext
    imports: List[ImportRecord] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Namespace bindings established by imports: alias →
    #: ``("module", target)`` or ``("symbol", target_module, name)``.
    bindings: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


def _dotted(node: ast.AST) -> Optional[str]:
    """Source-level dotted name of a ``Name``/``Attribute`` chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Class name named by an annotation, unwrapping ``Optional[...]``.

    Handles ``X``, ``pkg.X``, string annotations ``"X"``, and one level
    of ``Optional[X]`` — the forms this repository uses for
    ``SearchContext`` / ``PreparedGraph`` parameters.  Anything richer
    resolves to ``None`` (conservative: no type claimed).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text.replace(".", "_").isidentifier() else None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _dotted(node)
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head in {"Optional", "typing.Optional"}:
            return annotation_name(node.slice)
    return None


class ProjectContext:
    """One-pass whole-repo index shared by every :class:`ProjectRule`.

    Construct with :meth:`build` from the runner's parsed
    :class:`~repro.devtools.lint.base.FileContext` list.
    """

    def __init__(self) -> None:
        #: Dotted module name → :class:`ModuleInfo`.
        self.modules: Dict[str, ModuleInfo] = {}
        #: Root-relative path → :class:`ModuleInfo`.
        self.by_path: Dict[str, ModuleInfo] = {}
        #: ``module::qualname`` → set of callee node ids.
        self.call_graph: Dict[str, Set[str]] = {}
        #: Method name → node ids of every project class defining it.
        self._methods_by_name: Dict[str, List[str]] = {}
        #: Nodes whose scope contains a loop.
        self.loop_nodes: Set[str] = set()
        #: Nodes on a call-graph cycle (direct or mutual recursion).
        self.recursive_nodes: Set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "ProjectContext":
        """Index every parsed file and derive the call graph."""
        project = cls()
        for ctx in sorted(contexts, key=lambda c: c.relpath):
            name = module_name_for(ctx.relpath)
            if name is None:
                continue
            info = _index_module(ctx, name)
            project.modules[name] = info
            project.by_path[ctx.relpath] = info
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            for class_name in sorted(info.classes):
                for method in sorted(info.classes[class_name].methods):
                    project._methods_by_name.setdefault(method, []).append(
                        f"{module_name}::{class_name}.{method}"
                    )
        for module_name in sorted(project.modules):
            _build_call_edges(project, project.modules[module_name])
        project.recursive_nodes = _cyclic_nodes(project.call_graph)
        return project

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve ``name`` in ``module``'s namespace.

        Returns ``(kind, defining_module, symbol)`` with ``kind`` one of
        ``"module"``, ``"class"`` or ``"function"``, chasing re-export
        chains (``from repro.graph.csr import CSRBipartite`` re-exported
        through ``repro/graph/__init__.py``) with a cycle guard.
        ``None`` means the name is local shadowing, external, or unknown
        — conservative callers treat that as "no claim".
        """
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.classes:
            return ("class", module, name)
        if name in info.functions:
            return ("function", module, name)
        binding = info.bindings.get(name)
        if binding is None:
            return None
        if binding[0] == "module":
            target = binding[1]
            return ("module", target, target)
        _, target_module, symbol = binding
        if target_module in self.modules:
            resolved = self.resolve(target_module, symbol, seen)
            if resolved is not None:
                return resolved
            # ``from pkg import sub`` spelled as a symbol import of a
            # submodule that exists in the table.
            candidate = f"{target_module}.{symbol}"
            if candidate in self.modules:
                return ("module", candidate, candidate)
            return None
        return None

    def resolve_class(self, module: str, name: str) -> Optional[Tuple[str, str]]:
        """Resolve ``name`` to ``(module, class)`` when it names a class."""
        resolved = self.resolve(module, name)
        if resolved is not None and resolved[0] == "class":
            return (resolved[1], resolved[2])
        return None

    def resolve_method(
        self,
        module: str,
        class_name: str,
        method: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[str]:
        """Node id of ``method`` on ``class_name`` or its project bases."""
        seen = _seen if _seen is not None else set()
        if (module, class_name) in seen:
            return None
        seen.add((module, class_name))
        info = self.modules.get(module)
        if info is None:
            return None
        cls = info.classes.get(class_name)
        if cls is None:
            return None
        if method in cls.methods:
            return f"{module}::{class_name}.{method}"
        for base in cls.bases:
            head = base.split(".", 1)[0]
            resolved = self.resolve(module, head)
            if resolved is None or resolved[0] == "function":
                continue
            if resolved[0] == "class":
                found = self.resolve_method(resolved[1], resolved[2], method, seen)
            else:  # base spelled through a module alias, e.g. ``mod.Base``
                tail = base.split(".", 1)[1] if "." in base else None
                if tail is None:
                    continue
                found = self.resolve_method(resolved[1], tail, method, seen)
            if found is not None:
                return found
        return None

    def methods_named(self, method: str) -> List[str]:
        """Node ids of every project class method with this name."""
        return list(self._methods_by_name.get(method, ()))

    # ------------------------------------------------------------------
    # call-graph queries
    # ------------------------------------------------------------------
    def reachable(self, *roots: str) -> Set[str]:
        """All call-graph nodes reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.call_graph or True]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.call_graph.get(node, ()))
        return seen

    # ------------------------------------------------------------------
    # import-graph queries
    # ------------------------------------------------------------------
    def internal_import_edges(self) -> Dict[str, List[str]]:
        """Module-level project-internal import edges, sorted.

        Only imports that execute at module import time participate:
        lazy function-body imports are this repository's sanctioned way
        of breaking potential cycles, so they must not create edges
        here.
        """
        edges: Dict[str, List[str]] = {}
        for name in sorted(self.modules):
            targets: Set[str] = set()
            for record in self.modules[name].imports:
                if not record.toplevel:
                    continue
                target = self._internal_target(record)
                if target is not None and target != name:
                    targets.add(target)
            edges[name] = sorted(targets)
        return edges

    def _internal_target(self, record: ImportRecord) -> Optional[str]:
        """Project module a record's import actually lands on, if any."""
        if record.target in self.modules:
            if record.symbol is not None:
                candidate = f"{record.target}.{record.symbol}"
                if candidate in self.modules:
                    return candidate
            return record.target
        return None

    def import_cycles(self) -> List[List[str]]:
        """Module-level import cycles in canonical deterministic order.

        Each cycle is a list of module names with the lexicographically
        smallest member first; the list of cycles is sorted.  Computed
        with Tarjan's SCC algorithm over the internal module-level
        import graph — an SCC of size > 1 (or a self-loop) is a cycle.
        """
        graph = self.internal_import_edges()
        cycles: List[List[str]] = []
        for component in _strongly_connected(graph):
            if len(component) > 1 or component[0] in graph.get(component[0], ()):
                smallest = min(component)
                index = component.index(smallest)
                cycles.append(component[index:] + component[:index])
        return sorted(cycles)

    def to_dot(self) -> str:
        """The project-internal import graph in Graphviz DOT form."""
        lines = [
            "digraph reprolint_imports {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        edges = self.internal_import_edges()
        for name in sorted(edges):
            if not edges[name] and name not in {
                target for targets in edges.values() for target in targets
            }:
                lines.append(f'  "{name}";')
        for name in sorted(edges):
            for target in edges[name]:
                lines.append(f'  "{name}" -> "{target}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# module indexing
# ----------------------------------------------------------------------
_DATACLASS_DECORATORS = {"dataclass", "dataclasses.dataclass"}


def _index_module(ctx: FileContext, name: str) -> ModuleInfo:
    info = ModuleInfo(relpath=ctx.relpath, name=name, ctx=ctx)
    _collect_imports(ctx.tree, name, info)
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                name=node.name,
                qualname=node.name,
                node=node,
                lineno=node.lineno,
                has_loop=_contains_loop(node),
            )
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _index_class(node)
    return info


def _index_class(node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(
        name=node.name,
        node=node,
        lineno=node.lineno,
        bases=[base for base in map(_dotted, node.bases) if base is not None],
        is_dataclass=_is_dataclass(node),
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[item.name] = FunctionInfo(
                name=item.name,
                qualname=f"{node.name}.{item.name}",
                node=item,
                lineno=item.lineno,
                has_loop=_contains_loop(item),
            )
        elif (
            cls.is_dataclass
            and isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and not _is_classvar(item.annotation)
        ):
            cls.fields.append((item.target.id, item.lineno))
    return cls


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _dotted(target) in _DATACLASS_DECORATORS:
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    return _dotted(annotation) in {"ClassVar", "typing.ClassVar"}


def _contains_loop(node: ast.AST) -> bool:
    return any(
        isinstance(sub, (ast.For, ast.AsyncFor, ast.While)) for sub in ast.walk(node)
    )


def _collect_imports(tree: ast.Module, module: str, info: ModuleInfo) -> None:
    package_parts = module.split(".")
    # The package context for relative imports: a module's own package.
    # ``__init__`` modules already *are* their package (their relpath
    # ends in ``__init__.py``, so ``module_name_for`` dropped the file).
    if not info.relpath.endswith("__init__.py"):
        package_parts = package_parts[:-1]
    toplevel_ids = {id(node) for node in tree.body}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                info.imports.append(
                    ImportRecord(
                        target=alias.name,
                        symbol=None,
                        alias=bound,
                        lineno=node.lineno,
                        col_offset=node.col_offset,
                        toplevel=id(node) in toplevel_ids,
                    )
                )
                if alias.asname is not None:
                    info.bindings.setdefault(bound, ("module", alias.name))
                else:
                    info.bindings.setdefault(bound, ("module", bound))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
                target = ".".join(base_parts)
            else:
                target = node.module or ""
            if not target:
                continue
            for alias in node.names:
                if alias.name == "*":
                    info.imports.append(
                        ImportRecord(
                            target=target,
                            symbol=None,
                            alias="*",
                            lineno=node.lineno,
                            col_offset=node.col_offset,
                            toplevel=id(node) in toplevel_ids,
                        )
                    )
                    continue
                bound = alias.asname or alias.name
                info.imports.append(
                    ImportRecord(
                        target=target,
                        symbol=alias.name,
                        alias=bound,
                        lineno=node.lineno,
                        col_offset=node.col_offset,
                        toplevel=id(node) in toplevel_ids,
                    )
                )
                info.bindings.setdefault(bound, ("symbol", target, alias.name))


# ----------------------------------------------------------------------
# call-graph construction
# ----------------------------------------------------------------------
def _build_call_edges(project: ProjectContext, info: ModuleInfo) -> None:
    scopes: List[Tuple[str, Optional[str], FunctionInfo]] = []
    for fn_name in sorted(info.functions):
        scopes.append((f"{info.name}::{fn_name}", None, info.functions[fn_name]))
    for class_name in sorted(info.classes):
        cls = info.classes[class_name]
        for method_name in sorted(cls.methods):
            scopes.append(
                (
                    f"{info.name}::{class_name}.{method_name}",
                    class_name,
                    cls.methods[method_name],
                )
            )
    for node_id, class_name, fn in scopes:
        edges = _scope_edges(project, info, class_name, fn)
        project.call_graph[node_id] = edges
        if fn.has_loop:
            project.loop_nodes.add(node_id)


def _scope_edges(
    project: ProjectContext,
    info: ModuleInfo,
    class_name: Optional[str],
    fn: FunctionInfo,
) -> Set[str]:
    env = _scope_types(project, info, fn)
    aliases = _callable_aliases(project, info, fn)
    edges: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        edges.update(
            _call_targets(project, info, class_name, env, aliases, node.func)
        )
    return edges


def _scope_types(
    project: ProjectContext, info: ModuleInfo, fn: FunctionInfo
) -> Dict[str, Tuple[str, str]]:
    """Local variable → ``(module, class)`` facts for one scope."""
    env: Dict[str, Tuple[str, str]] = {}
    node = fn.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for arg in every:
            named = annotation_name(arg.annotation)
            if named is None:
                continue
            resolved = project.resolve_class(info.name, named.split(".")[0])
            if resolved is None and "." in named:
                head, tail = named.split(".", 1)
                module_binding = project.resolve(info.name, head)
                if module_binding is not None and module_binding[0] == "module":
                    resolved = project.resolve_class(module_binding[1], tail)
            if resolved is not None:
                env[arg.arg] = resolved
    for sub in ast.walk(node):
        target_name: Optional[str] = None
        value: Optional[ast.AST] = None
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            if isinstance(sub.targets[0], ast.Name):
                target_name = sub.targets[0].id
                value = sub.value
        elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
            target_name = sub.target.id
            named = annotation_name(sub.annotation)
            if named is not None:
                resolved = project.resolve_class(info.name, named.split(".")[0])
                if resolved is not None:
                    env[target_name] = resolved
            value = sub.value
        if target_name is None or value is None:
            continue
        inferred = _constructed_class(project, info, value)
        if inferred is not None:
            env[target_name] = inferred
    return env


def _constructed_class(
    project: ProjectContext, info: ModuleInfo, value: ast.AST
) -> Optional[Tuple[str, str]]:
    """``(module, class)`` when ``value`` is ``Class(...)`` or ``Class.f(...)``.

    The classmethod-factory heuristic (``CSRBipartite.from_bipartite(g)``
    types as ``CSRBipartite``) over-claims for static helpers returning
    something else; acceptable for the conservative analyses built on
    top, which only ever use the facts to *add* call edges or widen a
    mutation check.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return project.resolve_class(info.name, func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return project.resolve_class(info.name, func.value.id)
    return None


def _callable_aliases(
    project: ProjectContext, info: ModuleInfo, fn: FunctionInfo
) -> Dict[str, Set[str]]:
    """Local name → function node ids, from ``f = g`` / ``f = g if c else h``."""
    aliases: Dict[str, Set[str]] = {}
    for sub in ast.walk(fn.node):
        if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
            continue
        target = sub.targets[0]
        if not isinstance(target, ast.Name):
            continue
        candidates: List[ast.AST] = []
        if isinstance(sub.value, ast.IfExp):
            candidates = [sub.value.body, sub.value.orelse]
        elif isinstance(sub.value, ast.Name):
            candidates = [sub.value]
        resolved: Set[str] = set()
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                found = project.resolve(info.name, candidate.id)
                if found is not None and found[0] == "function":
                    resolved.add(f"{found[1]}::{found[2]}")
        if resolved:
            aliases.setdefault(target.id, set()).update(resolved)
    return aliases


def _call_targets(
    project: ProjectContext,
    info: ModuleInfo,
    class_name: Optional[str],
    env: Dict[str, Tuple[str, str]],
    aliases: Dict[str, Set[str]],
    func: ast.AST,
) -> Set[str]:
    targets: Set[str] = set()
    if isinstance(func, ast.Name):
        if func.id in aliases:
            targets.update(aliases[func.id])
        resolved = project.resolve(info.name, func.id)
        if resolved is not None:
            kind, target_module, symbol = resolved
            if kind == "function":
                targets.add(f"{target_module}::{symbol}")
            elif kind == "class":
                targets.add(f"{target_module}::{symbol}")
        return targets
    if not isinstance(func, ast.Attribute):
        return targets
    method = func.attr
    receiver = func.value
    if isinstance(receiver, ast.Name):
        if receiver.id == "self" and class_name is not None:
            found = project.resolve_method(info.name, class_name, method)
            if found is not None:
                targets.add(found)
                return targets
        if receiver.id in env:
            module, cls = env[receiver.id]
            found = project.resolve_method(module, cls, method)
            if found is not None:
                targets.add(found)
                return targets
        resolved = project.resolve(info.name, receiver.id)
        if resolved is not None:
            kind, target_module, symbol = resolved
            if kind == "module":
                inner = project.resolve(target_module, method)
                if inner is not None and inner[0] in {"function", "class"}:
                    targets.add(f"{inner[1]}::{inner[2]}")
                    return targets
            elif kind == "class":
                found = project.resolve_method(target_module, symbol, method)
                if found is not None:
                    targets.add(found)
                    return targets
    # Unknown receiver: fall back to the unique project method with this
    # name, if any (CHA-lite; skipped for ambiguous names like to_dict).
    named = project.methods_named(method)
    if len(named) == 1:
        targets.add(named[0])
    return targets


# ----------------------------------------------------------------------
# graph algorithms
# ----------------------------------------------------------------------
def _strongly_connected(graph: Dict[str, Sequence[str]]) -> List[List[str]]:
    """Tarjan SCCs, iterative, deterministic (sorted roots and edges)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            neighbours = sorted(graph.get(node, ()))
            recurse = False
            for position in range(edge_index, len(neighbours)):
                neighbour = neighbours[position]
                if neighbour not in graph:
                    continue
                if neighbour not in index:
                    work.append((node, position + 1))
                    work.append((neighbour, 0))
                    recurse = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index[neighbour])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return components


def _cyclic_nodes(graph: Dict[str, Set[str]]) -> Set[str]:
    """Nodes on any call-graph cycle (self-loops included)."""
    cyclic: Set[str] = set()
    for component in _strongly_connected({k: sorted(v) for k, v in graph.items()}):
        if len(component) > 1:
            cyclic.update(component)
        elif component[0] in graph.get(component[0], ()):
            cyclic.add(component[0])
    return cyclic
