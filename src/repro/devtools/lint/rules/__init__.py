"""The shipped rule set.

Importing this package registers every built-in rule with
:data:`repro.devtools.lint.base.RULE_REGISTRY`:

========  ====================  ==============================================
code      name                  invariant
========  ====================  ==============================================
RPL001    budget-checkpoint     no hand-rolled budget/deadline math in the
                                S1/S2/S3 search modules — poll
                                ``SearchContext.checkpoint()``
RPL002    determinism           no wall clocks or unseeded ``random`` in
                                library code; no set-order-dependent
                                accumulation in kernel modules
RPL003    kernel-parity         every ``kernel="bits"`` dispatch keeps a
                                reachable ``"sets"`` ablation counterpart
RPL004    pool-safety           pool submissions and ``cancel_hook``
                                assignments stay picklable
========  ====================  ==============================================

Each rule encodes an invariant this repository already paid for in a
fixed bug (see the module docstrings for the history).
"""

from repro.devtools.lint.rules import (  # noqa: F401
    budget_checkpoint,
    determinism,
    kernel_parity,
    pool_safety,
)
