"""Tests for the Biclique / SearchStats / MBBResult value objects."""

from __future__ import annotations

import pytest

from repro.graph.generators import complete_bipartite
from repro.mbb.result import (
    Biclique,
    MBBResult,
    SearchStats,
    STEP_BRIDGE,
    STEP_HEURISTIC,
    STEP_VERIFY,
)


class TestBiclique:
    def test_empty(self):
        empty = Biclique.empty()
        assert empty.side_size == 0
        assert empty.total_size == 0
        assert empty.is_balanced

    def test_of_builds_frozensets(self):
        biclique = Biclique.of([1, 2, 2], ["a"])
        assert biclique.left == frozenset({1, 2})
        assert biclique.right == frozenset({"a"})
        assert biclique.total_size == 3
        assert not biclique.is_balanced

    def test_balanced_trims_larger_side_deterministically(self):
        biclique = Biclique.of([3, 1, 2], ["a"])
        balanced = biclique.balanced()
        assert balanced.is_balanced
        assert balanced.side_size == 1
        assert balanced == Biclique.of([3, 1, 2], ["a"]).balanced()

    def test_balanced_of_balanced_is_identity(self):
        biclique = Biclique.of([1, 2], ["a", "b"])
        assert biclique.balanced() == biclique

    def test_validity_check(self):
        graph = complete_bipartite(3, 3)
        assert Biclique.of([0, 1], [0, 2]).is_valid_in(graph)
        assert not Biclique.of([0, 9], [0]).is_valid_in(graph)

    def test_is_hashable_and_frozen(self):
        biclique = Biclique.of([1], [2])
        assert hash(biclique) == hash(Biclique.of([1], [2]))
        with pytest.raises(AttributeError):
            biclique.left = frozenset()


class TestSearchStats:
    def test_record_node_and_leaf(self):
        stats = SearchStats()
        stats.record_node(0)
        stats.record_node(3)
        stats.record_leaf(3)
        assert stats.nodes == 2
        assert stats.max_depth == 3
        assert stats.average_depth == 1.5
        assert stats.average_leaf_depth == 3.0

    def test_averages_on_empty_stats(self):
        stats = SearchStats()
        assert stats.average_depth == 0.0
        assert stats.average_leaf_depth == 0.0

    def test_merge_accumulates(self):
        a = SearchStats(nodes=2, max_depth=5, depth_sum=6, polynomial_cases=1)
        b = SearchStats(nodes=3, max_depth=2, depth_sum=3, bound_prunes=4)
        a.merge(b)
        assert a.nodes == 5
        assert a.max_depth == 5
        assert a.depth_sum == 9
        assert a.polynomial_cases == 1
        assert a.bound_prunes == 4


class TestMBBResult:
    def test_properties(self):
        result = MBBResult(biclique=Biclique.of([1, 2], [3, 4]))
        assert result.side_size == 2
        assert result.total_size == 4
        assert result.optimal
        assert result.terminated_at is None

    def test_step_constants_are_distinct(self):
        assert len({STEP_HEURISTIC, STEP_BRIDGE, STEP_VERIFY}) == 3

    def test_str_mentions_step_and_optimality(self):
        result = MBBResult(
            biclique=Biclique.of([1], [2]), optimal=False, terminated_at=STEP_VERIFY
        )
        text = str(result)
        assert "S3" in text
        assert "best-effort" in text
