"""Cross-kernel / cross-solver agreement property tests.

On random dense and sparse instances, the bitset-kernel dense solver, the
set-kernel dense solver, the sparse framework and the basic enumeration
must all report the same optimal side size, and every returned biclique
must be a valid balanced biclique of the input graph.  The brute-force
oracle anchors the small instances to the ground truth.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.brute_force import brute_force_side_size
from repro.graph.generators import random_bipartite, random_power_law_bipartite
from repro.mbb.basic_bb import basic_bb
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS, dense_mbb
from repro.mbb.solver import solve_mbb
from repro.mbb.sparse import hbv_mbb


def _solver_results(graph):
    return {
        "dense-bits": dense_mbb(graph, kernel=KERNEL_BITS),
        "dense-sets": dense_mbb(graph, kernel=KERNEL_SETS),
        "sparse": hbv_mbb(graph),
        "basic": basic_bb(graph),
    }


def _assert_all_agree(graph, expected=None):
    results = _solver_results(graph)
    sides = {name: result.side_size for name, result in results.items()}
    assert len(set(sides.values())) == 1, f"solvers disagree: {sides}"
    if expected is not None:
        assert sides["dense-bits"] == expected, sides
    for name, result in results.items():
        biclique = result.biclique
        assert biclique.is_balanced, name
        assert biclique.is_valid_in(graph), name


class TestCrossKernelAgreement:
    @pytest.mark.parametrize("seed", range(15))
    def test_dense_instances_match_oracle(self, seed):
        rng = random.Random(seed)
        graph = random_bipartite(
            rng.randint(4, 9),
            rng.randint(4, 9),
            rng.choice([0.7, 0.8, 0.9]),
            seed=seed,
        )
        _assert_all_agree(graph, expected=brute_force_side_size(graph))

    @pytest.mark.parametrize("seed", range(15))
    def test_sparse_instances_match_oracle(self, seed):
        rng = random.Random(1000 + seed)
        graph = random_bipartite(
            rng.randint(4, 10),
            rng.randint(4, 10),
            rng.choice([0.1, 0.2, 0.3]),
            seed=seed,
        )
        _assert_all_agree(graph, expected=brute_force_side_size(graph))

    @pytest.mark.parametrize("seed", range(5))
    def test_power_law_instances_agree(self, seed):
        graph = random_power_law_bipartite(14, 14, 3.0, seed=seed)
        _assert_all_agree(graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_solve_mbb_kernels_agree(self, seed):
        graph = random_bipartite(10, 10, 0.5, seed=seed)
        bits = solve_mbb(graph, kernel=KERNEL_BITS)
        sets = solve_mbb(graph, kernel=KERNEL_SETS)
        assert bits.side_size == sets.side_size
        assert bits.biclique.is_valid_in(graph)
        assert sets.biclique.is_valid_in(graph)
