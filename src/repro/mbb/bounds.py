"""Bounding conditions and candidate-set completions.

The branch-and-bound solvers maintain the invariant

* every candidate in ``CA`` is adjacent to every vertex already in ``B``,
* every candidate in ``CB`` is adjacent to every vertex already in ``A``.

Under that invariant two simple facts drive both the pruning rule of
Algorithm 1 (the *bounding condition*) and the "make the result balance"
step: any subset of ``CA`` can be appended to ``A`` and any subset of ``CB``
can be appended to ``B`` (but not both simultaneously, because candidates
on opposite sides need not be adjacent to each other).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.graph.bipartite import Vertex
from repro.graph.bitset import IndexedBitGraph
from repro.mbb.context import SearchContext


def upper_bound_side(
    a_size: int, b_size: int, ca_size: int, cb_size: int
) -> int:
    """Upper bound on the side size of any balanced biclique below this node.

    The final left side is a subset of ``A ∪ CA`` and the final right side a
    subset of ``B ∪ CB``; balancing takes the minimum.
    """
    return min(a_size + ca_size, b_size + cb_size)


def is_bounded(
    context: SearchContext,
    a_size: int,
    b_size: int,
    ca_size: int,
    cb_size: int,
) -> bool:
    """The bounding condition of Algorithm 1.

    Returns ``True`` when the subtree rooted at this node cannot contain a
    balanced biclique *strictly larger* than the incumbent, i.e. when
    ``min(|A| + |CA|, |B| + |CB|) <= best side size``.
    """
    return upper_bound_side(a_size, b_size, ca_size, cb_size) <= context.best_side


def offer_completions(
    context: SearchContext,
    a: Set[Vertex],
    b: Set[Vertex],
    ca: Iterable[Vertex],
    cb: Iterable[Vertex],
) -> None:
    """Offer the two one-sided completions of the current node as incumbents.

    ``(A, B ∪ CB)`` and ``(A ∪ CA, B)`` are both bicliques under the solver
    invariant; after balancing they realise side sizes
    ``min(|A|, |B| + |CB|)`` and ``min(|A| + |CA|, |B|)``.  Offering them at
    every node gives the search good incumbents early, which is what makes
    the near-balanced enumeration of Algorithm 1 effective.
    """
    ca_list = list(ca)
    cb_list = list(cb)
    if min(len(a), len(b) + len(cb_list)) > context.best_side:
        context.offer(a, set(b) | set(cb_list))
    if min(len(a) + len(ca_list), len(b)) > context.best_side:
        context.offer(set(a) | set(ca_list), b)


def offer_completions_bits(
    context: SearchContext,
    graph: IndexedBitGraph,
    a: int,
    b: int,
    ca: int,
    cb: int,
) -> None:
    """Bitset counterpart of :func:`offer_completions`.

    Mask-to-label translation only happens when a completion actually
    improves the incumbent, so the common (non-improving) case costs four
    popcounts and two comparisons.
    """
    a_size = a.bit_count()
    b_size = b.bit_count()
    best = context.best_side
    if min(a_size, b_size + cb.bit_count()) > best:
        context.offer(
            graph.left_labels_of(a), graph.right_labels_of(b | cb)
        )
    if min(a_size + ca.bit_count(), b_size) > best:
        context.offer(
            graph.left_labels_of(a | ca), graph.right_labels_of(b)
        )


def trivial_upper_bound(num_left: int, num_right: int) -> int:
    """Side-size upper bound from the graph dimensions alone."""
    return min(num_left, num_right)


def degree_upper_bound(degrees: Iterable[int]) -> int:
    """Upper bound from a degree sequence.

    A balanced biclique with side ``k`` needs at least ``k`` vertices of
    degree at least ``k`` on each side; applied to one side's degree
    sequence this yields the largest ``k`` such that ``k`` vertices have
    degree ``>= k`` (an h-index).
    """
    sorted_degrees = sorted(degrees, reverse=True)
    bound = 0
    for index, degree in enumerate(sorted_degrees, start=1):
        if degree >= index:
            bound = index
        else:
            break
    return bound


def common_neighbour_upper_bound(
    counts: Iterable[int],
) -> int:
    """h-index style bound used by the ExtBBClq baseline.

    Given, for a fixed vertex ``v``, the number of common neighbours it has
    with every same-side vertex, the largest ``i`` such that ``i`` vertices
    share at least ``i`` common neighbours with ``v`` bounds the side size
    of any balanced biclique containing ``v``.
    """
    return degree_upper_bound(counts)
