"""Mutable bipartite graph with adjacency sets.

The data structure deliberately mirrors how the paper's algorithms consume
graphs: all of them repeatedly ask for the neighbourhood of a vertex as a
set (to intersect with candidate sets), for vertex degrees, for induced
subgraphs, and for per-side vertex collections.  Adjacency sets keyed by
vertex label give all of these operations in expected constant or
output-sensitive time without any index translation layer.

The two sides have *independent* label spaces: the left vertex ``3`` and the
right vertex ``3`` are different vertices.  This matches bipartite datasets
(users vs. items, genes vs. conditions) where the two sides are drawn from
unrelated identifier spaces, and it lets generators reuse small integer
labels on both sides without collisions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import (
    DuplicateVertexError,
    InvalidEdgeError,
    VertexNotFoundError,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: Side markers used throughout the library.
LEFT = "L"
RIGHT = "R"


class BipartiteGraph:
    """A bipartite graph ``G = (L, R, E)`` backed by adjacency sets.

    Parameters
    ----------
    left, right:
        Optional iterables of vertex labels to pre-populate the two sides.
    edges:
        Optional iterable of ``(u, v)`` pairs with ``u`` on the left side and
        ``v`` on the right side.  Endpoints are created on demand.

    Examples
    --------
    >>> g = BipartiteGraph(edges=[(1, "a"), (1, "b"), (2, "a")])
    >>> sorted(g.neighbors_left(1))
    ['a', 'b']
    >>> g.num_edges
    3
    """

    __slots__ = ("_adj_left", "_adj_right", "_num_edges")

    def __init__(
        self,
        left: Optional[Iterable[Vertex]] = None,
        right: Optional[Iterable[Vertex]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._adj_left: Dict[Vertex, Set[Vertex]] = {}
        self._adj_right: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        if left is not None:
            for u in left:
                self.add_left_vertex(u, exist_ok=True)
        if right is not None:
            for v in right:
                self.add_right_vertex(v, exist_ok=True)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction and mutation
    # ------------------------------------------------------------------
    def add_left_vertex(self, u: Vertex, *, exist_ok: bool = False) -> None:
        """Add an isolated vertex to the left side."""
        if u in self._adj_left:
            if exist_ok:
                return
            raise DuplicateVertexError(LEFT, u)
        self._adj_left[u] = set()

    def add_right_vertex(self, v: Vertex, *, exist_ok: bool = False) -> None:
        """Add an isolated vertex to the right side."""
        if v in self._adj_right:
            if exist_ok:
                return
            raise DuplicateVertexError(RIGHT, v)
        self._adj_right[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge ``(u, v)`` creating missing endpoints on demand.

        Adding an edge that already exists is a no-op; the edge count is not
        inflated, which keeps :attr:`density` meaningful for generators that
        may sample the same pair twice.
        """
        self.add_left_vertex(u, exist_ok=True)
        self.add_right_vertex(v, exist_ok=True)
        if v not in self._adj_left[u]:
            self._adj_left[u].add(v)
            self._adj_right[v].add(u)
            self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; raise if the edge is absent."""
        if u not in self._adj_left:
            raise VertexNotFoundError(LEFT, u)
        if v not in self._adj_right:
            raise VertexNotFoundError(RIGHT, v)
        if v not in self._adj_left[u]:
            raise InvalidEdgeError(f"edge ({u!r}, {v!r}) not present")
        self._adj_left[u].discard(v)
        self._adj_right[v].discard(u)
        self._num_edges -= 1

    def remove_left_vertex(self, u: Vertex) -> None:
        """Remove ``u`` from the left side together with its incident edges."""
        if u not in self._adj_left:
            raise VertexNotFoundError(LEFT, u)
        for v in self._adj_left[u]:
            self._adj_right[v].discard(u)
        self._num_edges -= len(self._adj_left[u])
        del self._adj_left[u]

    def remove_right_vertex(self, v: Vertex) -> None:
        """Remove ``v`` from the right side together with its incident edges."""
        if v not in self._adj_right:
            raise VertexNotFoundError(RIGHT, v)
        for u in self._adj_right[v]:
            self._adj_left[u].discard(v)
        self._num_edges -= len(self._adj_right[v])
        del self._adj_right[v]

    def remove_vertices(
        self,
        left: Iterable[Vertex] = (),
        right: Iterable[Vertex] = (),
    ) -> None:
        """Remove several vertices at once (missing vertices are ignored)."""
        for u in list(left):
            if u in self._adj_left:
                self.remove_left_vertex(u)
        for v in list(right):
            if v in self._adj_right:
                self.remove_right_vertex(v)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def left(self) -> Set[Vertex]:
        """A fresh set with the left-side vertex labels."""
        return set(self._adj_left)

    @property
    def right(self) -> Set[Vertex]:
        """A fresh set with the right-side vertex labels."""
        return set(self._adj_right)

    def left_vertices(self) -> Iterator[Vertex]:
        """Iterate over the left-side vertex labels."""
        return iter(self._adj_left)

    def right_vertices(self) -> Iterator[Vertex]:
        """Iterate over the right-side vertex labels."""
        return iter(self._adj_right)

    @property
    def num_left(self) -> int:
        """Number of vertices on the left side."""
        return len(self._adj_left)

    @property
    def num_right(self) -> int:
        """Number of vertices on the right side."""
        return len(self._adj_right)

    @property
    def num_vertices(self) -> int:
        """Total number of vertices, ``|L| + |R|``."""
        return len(self._adj_left) + len(self._adj_right)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    @property
    def density(self) -> float:
        """Edge density ``|E| / (|L| * |R|)``; zero for an empty side."""
        if not self._adj_left or not self._adj_right:
            return 0.0
        return self._num_edges / (len(self._adj_left) * len(self._adj_right))

    def has_left_vertex(self, u: Vertex) -> bool:
        """Return ``True`` if ``u`` is a left-side vertex."""
        return u in self._adj_left

    def has_right_vertex(self, v: Vertex) -> bool:
        """Return ``True`` if ``v`` is a right-side vertex."""
        return v in self._adj_right

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the edge ``(u, v)`` is present."""
        neighbours = self._adj_left.get(u)
        return neighbours is not None and v in neighbours

    def neighbors_left(self, u: Vertex) -> Set[Vertex]:
        """Right-side neighbours of the left vertex ``u`` (the live set).

        The returned set is the internal adjacency set; callers that mutate
        it must copy it first.  Algorithms in this library only read it
        (membership tests and set intersections), which is why the live set
        is exposed: copying on every call would dominate the running time
        of the branch-and-bound solvers.
        """
        try:
            return self._adj_left[u]
        except KeyError:
            raise VertexNotFoundError(LEFT, u) from None

    def neighbors_right(self, v: Vertex) -> Set[Vertex]:
        """Left-side neighbours of the right vertex ``v`` (the live set)."""
        try:
            return self._adj_right[v]
        except KeyError:
            raise VertexNotFoundError(RIGHT, v) from None

    def degree_left(self, u: Vertex) -> int:
        """Degree of the left vertex ``u``."""
        return len(self.neighbors_left(u))

    def degree_right(self, v: Vertex) -> int:
        """Degree of the right vertex ``v``."""
        return len(self.neighbors_right(v))

    def max_degree(self) -> int:
        """Maximum degree over all vertices (``0`` for an edgeless graph)."""
        best = 0
        for neighbours in self._adj_left.values():
            if len(neighbours) > best:
                best = len(neighbours)
        for neighbours in self._adj_right.values():
            if len(neighbours) > best:
                best = len(neighbours)
        return best

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(left, right)`` pairs."""
        for u, neighbours in self._adj_left.items():
            for v in neighbours:
                yield (u, v)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "BipartiteGraph":
        """Return a deep copy of the graph (labels are shared, sets are not)."""
        clone = BipartiteGraph()
        clone._adj_left = {u: set(nbrs) for u, nbrs in self._adj_left.items()}
        clone._adj_right = {v: set(nbrs) for v, nbrs in self._adj_right.items()}
        clone._num_edges = self._num_edges
        return clone

    def induced_subgraph(
        self,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
    ) -> "BipartiteGraph":
        """Return the subgraph induced by the given vertex subsets.

        Vertices that are not present in the graph are silently ignored so
        that candidate sets produced by reductions can be passed directly.
        """
        left_set = {u for u in left if u in self._adj_left}
        right_set = {v for v in right if v in self._adj_right}
        sub = BipartiteGraph(left=left_set, right=right_set)
        # Iterate over the smaller side to keep the construction cheap when
        # the paper's vertex-centred subgraphs are tiny slices of a big graph.
        if len(left_set) <= len(right_set):
            for u in left_set:
                for v in self._adj_left[u] & right_set:
                    sub.add_edge(u, v)
        else:
            for v in right_set:
                for u in self._adj_right[v] & left_set:
                    sub.add_edge(u, v)
        return sub

    def to_edge_list(self) -> list[Edge]:
        """Return a sorted list of edges, useful for deterministic output."""
        return sorted(self.edges(), key=lambda e: (repr(e[0]), repr(e[1])))

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Tuple[str, Vertex]) -> bool:
        """Membership test for a ``(side, label)`` pair."""
        side, label = vertex
        if side == LEFT:
            return label in self._adj_left
        if side == RIGHT:
            return label in self._adj_right
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self._adj_left == other._adj_left
            and self._adj_right == other._adj_right
        )

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|L|={self.num_left}, |R|={self.num_right}, "
            f"|E|={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "BipartiteGraph":
        """Build a graph from an iterable of ``(left, right)`` pairs."""
        return cls(edges=edges)

    @classmethod
    def from_biadjacency(cls, matrix: Iterable[Iterable[int]]) -> "BipartiteGraph":
        """Build a graph from a 0/1 biadjacency matrix.

        Row ``i`` becomes left vertex ``i`` and column ``j`` becomes right
        vertex ``j``.  Any truthy entry is treated as an edge, so NumPy
        arrays and plain nested lists both work.
        """
        graph = cls()
        n_cols = 0
        rows = [list(row) for row in matrix]
        for row in rows:
            n_cols = max(n_cols, len(row))
        for i in range(len(rows)):
            graph.add_left_vertex(i, exist_ok=True)
        for j in range(n_cols):
            graph.add_right_vertex(j, exist_ok=True)
        for i, row in enumerate(rows):
            for j, entry in enumerate(row):
                if entry:
                    graph.add_edge(i, j)
        return graph

    def to_biadjacency(
        self,
    ) -> Tuple[list[list[int]], list[Vertex], list[Vertex]]:
        """Return ``(matrix, left_order, right_order)`` for the graph.

        The orders are sorted by ``repr`` so the output is deterministic for
        mixed label types.
        """
        left_order = sorted(self._adj_left, key=repr)
        right_order = sorted(self._adj_right, key=repr)
        col_index = {v: j for j, v in enumerate(right_order)}
        matrix = [[0] * len(right_order) for _ in left_order]
        for i, u in enumerate(left_order):
            row = matrix[i]
            for v in self._adj_left[u]:
                row[col_index[v]] = 1
        return matrix, left_order, right_order


def common_neighbors_of_left(graph: BipartiteGraph, vertices: Iterable[Vertex]) -> FrozenSet[Vertex]:
    """Right-side vertices adjacent to *every* left vertex in ``vertices``.

    The empty input is, by convention, adjacent to the whole right side —
    this matches the biclique-extension semantics used by the solvers.
    """
    iterator = iter(vertices)
    try:
        first = next(iterator)
    except StopIteration:
        return frozenset(graph.right)
    result = set(graph.neighbors_left(first))
    for u in iterator:
        result &= graph.neighbors_left(u)
        if not result:
            break
    return frozenset(result)


def common_neighbors_of_right(graph: BipartiteGraph, vertices: Iterable[Vertex]) -> FrozenSet[Vertex]:
    """Left-side vertices adjacent to *every* right vertex in ``vertices``."""
    iterator = iter(vertices)
    try:
        first = next(iterator)
    except StopIteration:
        return frozenset(graph.left)
    result = set(graph.neighbors_right(first))
    for v in iterator:
        result &= graph.neighbors_right(v)
        if not result:
            break
    return frozenset(result)
