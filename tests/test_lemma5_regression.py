"""Regression tests for the Lemma 5 / S1 early exit.

Historically ``h_mbb`` compared the degeneracy of the graph *after* the
Lemma 4 core reduction against the incumbent side size.  A nonempty
``(k + 1)``-core always has degeneracy at least ``k + 1``, so that
comparison could never succeed: the early exit was dead code and S1 could
only ever prove optimality by reducing the graph to nothing.  The fixed
implementation compares against the pre-reduction degeneracy, so S1 can
terminate the whole search while the residual graph is still nonempty.
"""

from __future__ import annotations

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_bipartite
from repro.mbb.heuristics import h_mbb
from repro.mbb.result import STEP_HEURISTIC
from repro.mbb.sparse import hbv_mbb


def _k55_with_pendants() -> BipartiteGraph:
    """K_{5,5} plus pendant edges: optimum side 5, degeneracy 5."""
    graph = complete_bipartite(5, 5)
    graph.add_edge(5, 0)
    graph.add_edge(0, 5)
    return graph


class TestLemma5EarlyExit:
    def test_h_mbb_proves_optimality_on_nonempty_residual(self):
        graph = _k55_with_pendants()
        outcome = h_mbb(graph)
        assert outcome.best.side_size == 5
        assert outcome.proven_optimal
        # The whole point of Lemma 5: optimality is certified by the
        # degeneracy bound, not by reducing the graph to nothing.
        assert outcome.reduced_graph.num_vertices > 0
        assert not outcome.exhausted

    def test_sparse_framework_terminates_at_s1(self):
        graph = _k55_with_pendants()
        result = hbv_mbb(graph)
        assert result.optimal
        assert result.side_size == 5
        assert result.terminated_at == STEP_HEURISTIC

    def test_complete_graph_terminates_at_s1_with_residual(self):
        graph = complete_bipartite(5, 5)
        outcome = h_mbb(graph)
        assert outcome.proven_optimal
        assert outcome.best.side_size == 5
        assert outcome.reduced_graph.num_vertices == graph.num_vertices

    def test_string_labelled_complete_biclique_terminates_at_s1(self):
        # String labels exercise the label-space handling of the early exit
        # path: once a side-4 incumbent is known the degeneracy of the graph
        # certifies it and S1 must terminate the search.
        graph = BipartiteGraph()
        for i in range(4):
            for j in range(4):
                graph.add_edge(f"L{i}", f"R{j}")
        result = hbv_mbb(graph)
        assert result.optimal
        assert result.side_size == 4
        assert result.terminated_at == STEP_HEURISTIC
