"""2-hop neighbourhoods ``N_2`` and ``N_{<=2}`` (Definitions 1 and 2).

In a bipartite graph the 2-hop neighbours of a vertex are on its *own* side
(they share at least one common neighbour), while its 1-hop neighbours are
on the other side.  The union ``N_{<=2}(u) = N(u) ∪ N_2(u)`` is the search
scope of every biclique containing ``u`` (Observation 4) and is the degree
notion underlying bicore numbers and bidegeneracy.

Two materialisations of the full ``N_{<=2}`` adjacency are provided.
:func:`n_le2_adjacency` keeps the historical dict-of-sets form keyed by
``(side, label)`` tuples; :func:`n_le2_flat` packs the same relation into
two flat int arrays in CSR layout over the dense vertex ids of a
:class:`~repro.graph.csr.CSRBipartite` snapshot.  The flat form is what
the default bucket peel of :mod:`repro.cores.bicore` consumes: walking a
2-hop neighbourhood becomes a slice of small ints instead of a set of
tuples, which removes the per-entry hashing that dominated the set-keyed
peel.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.buffers import IntBuffer, buffer_view, freeze_buffer
from repro.graph.csr import CSRBipartite

VertexKey = Tuple[str, Vertex]


def n2_neighbors(graph: BipartiteGraph, side: str, label: Vertex) -> Set[VertexKey]:
    """Vertices at distance exactly two from ``(side, label)``.

    These are same-side vertices that share at least one neighbour with the
    given vertex, excluding the vertex itself.
    """
    result: Set[VertexKey] = set()
    if side == LEFT:
        for v in graph.neighbors_left(label):
            for u in graph.neighbors_right(v):
                if u != label:
                    result.add((LEFT, u))
    else:
        for u in graph.neighbors_right(label):
            for v in graph.neighbors_left(u):
                if v != label:
                    result.add((RIGHT, v))
    return result


def n_le2_neighbors(graph: BipartiteGraph, side: str, label: Vertex) -> Set[VertexKey]:
    """``N_{<=2}(u)``: 1-hop plus 2-hop neighbours as ``(side, label)`` keys."""
    result = n2_neighbors(graph, side, label)
    if side == LEFT:
        result.update((RIGHT, v) for v in graph.neighbors_left(label))
    else:
        result.update((LEFT, u) for u in graph.neighbors_right(label))
    return result


def n_le2_sizes(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    """``|N_{<=2}(u)|`` for every vertex of the graph.

    Computed side by side so the inner loops stay over adjacency sets only;
    the total work is ``O(sum_u |N_{<=2}(u)|)`` which matches the bound the
    paper claims for the bicore decomposition preprocessing.
    """
    sizes: Dict[VertexKey, int] = {}
    for u in graph.left_vertices():
        two_hop: Set[Vertex] = set()
        for v in graph.neighbors_left(u):
            two_hop.update(graph.neighbors_right(v))
        two_hop.discard(u)
        sizes[(LEFT, u)] = len(two_hop) + graph.degree_left(u)
    for v in graph.right_vertices():
        two_hop = set()
        for u in graph.neighbors_right(v):
            two_hop.update(graph.neighbors_left(u))
        two_hop.discard(v)
        sizes[(RIGHT, v)] = len(two_hop) + graph.degree_right(v)
    return sizes


def n_le2_flat(csr: CSRBipartite) -> Tuple[IntBuffer, IntBuffer]:
    """The ``N_{<=2}`` adjacency as flat CSR int buffers ``(indptr, indices)``.

    ``indices[indptr[u]:indptr[u + 1]]`` holds the dense ids of
    ``N_{<=2}(u)`` for every vertex id ``u`` of the snapshot — 1-hop
    neighbours and 2-hop neighbours interleaved in discovery order, each
    id exactly once.  Deduplication uses a single reusable ``mark`` array
    stamped with the current centre instead of a per-vertex set, so the
    whole materialisation allocates nothing but the output arrays.

    The result is canonicalised through
    :func:`~repro.graph.buffers.freeze_buffer`, so under the typed
    backends the two arrays are flat int64 storage ready for zero-copy
    shared-memory handoff.

    Time is ``O(sum_u sum_{w in N(u)} |N(w)|)`` — the common-neighbour
    multiplicity bound the paper charges for the bicore preprocessing —
    and memory is ``O(M)`` with ``M = sum_u |N_{<=2}(u)|``.
    """
    n = csr.num_vertices
    indptr = buffer_view(csr.indptr)
    indices = buffer_view(csr.indices)
    out_ptr = [0] * (n + 1)
    out: List[int] = []
    mark = [-1] * n
    for u in range(n):
        mark[u] = u
        for w in indices[indptr[u] : indptr[u + 1]]:
            w = int(w)
            if mark[w] != u:
                mark[w] = u
                out.append(w)
            for z in indices[indptr[w] : indptr[w + 1]]:
                z = int(z)
                if mark[z] != u:
                    mark[z] = u
                    out.append(z)
        out_ptr[u + 1] = len(out)
    return freeze_buffer(out_ptr), freeze_buffer(out)


def n_le2_adjacency(graph: BipartiteGraph) -> Dict[VertexKey, Set[VertexKey]]:
    """The full ``N_{<=2}`` adjacency map for every vertex.

    This materialises what Algorithm 7 peels; memory is
    ``O(sum_u |N_{<=2}(u)|)`` which is affordable for the sparse graphs the
    sparse solver targets (the quantity is what δ̈ bounds).
    """
    adjacency: Dict[VertexKey, Set[VertexKey]] = {}
    for u in graph.left_vertices():
        adjacency[(LEFT, u)] = n_le2_neighbors(graph, LEFT, u)
    for v in graph.right_vertices():
        adjacency[(RIGHT, v)] = n_le2_neighbors(graph, RIGHT, v)
    return adjacency
