"""RPL009 — fault-boundary discipline for the pool execution layer.

PR 9 made ``MBBEngine.solve_many`` fault-tolerant: every worker entry
point converts exceptions into ``status="error"`` reports, so one bad
request can no longer poison a batch, and the deterministic
fault-injection harness (:mod:`repro.devtools.faults`) can prove it.
Both halves of that design rot silently without a machine check:

* **boundary coverage** — a new pool-submitted callable that skips the
  fault boundary reintroduces the exact brittleness this PR removed:
  the first worker exception poisons ``future.result()`` for the whole
  batch again.  Every first argument of a ``.submit(...)`` call in
  library code must therefore reach an ``except Exception`` (or bare
  ``except``) handler through the project call graph — the submitted
  function may delegate to a guarded helper, as the engine's entry
  points delegate to ``_guarded_solve``.
* **injection-point confinement** — ``faults.hit(...)`` probes are test
  plumbing compiled into production code.  They are cheap and inert,
  but only while they stay rare and auditable: the sanctioned homes are
  the engine's fault boundaries and the faults module itself.  A
  ``hit()`` creeping into kernel or graph code would let a stray
  ``REPRO_FAULTS`` environment variable change solver behaviour — a
  determinism hazard RPL002 exists to prevent.

Like the other project rules, resolution is conservative: a submit
argument the model cannot resolve to a project function is left to
RPL004 (which already demands picklable module-level callables) rather
than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.lint.base import ProjectRule, register_rule
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import ModuleInfo, ProjectContext

#: Where the discipline is enforced (tests may exercise internals, and
#: unit tests of the faults module call ``hit()`` on purpose).
SCOPE_PREFIXES = ("src/", "benchmarks/", "examples/")

#: The fault-injection module and its probe entry point.
FAULTS_MODULE = "repro.devtools.faults"
HIT_FUNCTION = "hit"

#: Files sanctioned to contain injection points: the engine's fault
#: boundaries and the harness itself.
DESIGNATED_FAULT_MODULES = frozenset(
    {
        "src/repro/api/engine.py",
        "src/repro/api/parallel.py",
        "src/repro/devtools/faults.py",
    }
)

#: Exception names accepted as a catch-all boundary handler.
BOUNDARY_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _is_submit_call(node: ast.Call) -> bool:
    return isinstance(node.func, ast.Attribute) and node.func.attr == "submit"


def _has_boundary_handler(fn_node: ast.AST) -> bool:
    """True when the function body contains an ``except Exception`` (or
    bare ``except``) handler."""
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            return True
        caught: List[ast.AST] = (
            list(node.type.elts) if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for expr in caught:
            if isinstance(expr, ast.Name) and expr.id in BOUNDARY_EXCEPTION_NAMES:
                return True
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr in BOUNDARY_EXCEPTION_NAMES
            ):
                return True
    return False


@register_rule
class FaultBoundaryRule(ProjectRule):
    code = "RPL009"
    name = "fault-boundary"
    description = (
        "pool-submitted callables must reach an except-Exception fault "
        "boundary through the call graph; faults.hit() injection points "
        "stay confined to the designated modules"
    )
    rationale = (
        "solve_many promises per-request error isolation: a worker entry "
        "point that lets an exception escape poisons future.result() for "
        "the whole batch — the exact failure mode PR 9 removed. The "
        "boundary may live in a helper (the engine's entry points delegate "
        "to _guarded_solve), so the proof walks the project call graph. "
        "Injection points are the other half of the contract: they are "
        "inert probes only while they stay confined to the engine's fault "
        "boundaries and the faults module, where a stray REPRO_FAULTS "
        "environment variable cannot reach solver kernels."
    )
    example = (
        "# bad: submitted callable propagates exceptions to the batch\n"
        "def _solve_payload(payload: str) -> str:\n"
        "    return solve(payload)  # raises -> poisons the whole batch\n"
        "pool.submit(_solve_payload, request.to_json())\n"
        "\n"
        "# good: every failure becomes an error report\n"
        "def _solve_payload(payload: str) -> str:\n"
        "    try:\n"
        "        return solve(payload)\n"
        "    except Exception as exc:\n"
        "        return error_report(exc).to_json()"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if not info.relpath.startswith(SCOPE_PREFIXES):
                continue
            yield from self._check_submits(project, info)
            if info.relpath not in DESIGNATED_FAULT_MODULES:
                yield from self._check_injection_points(project, info)

    # ------------------------------------------------------------------
    # boundary coverage for pool submissions
    # ------------------------------------------------------------------
    def _check_submits(
        self, project: ProjectContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call) or not _is_submit_call(node):
                continue
            if not node.args:
                continue
            target = self._resolve_function(project, info.name, node.args[0])
            if target is None:
                continue  # RPL004's problem: unresolvable submit callables
            target_id = f"{target[0]}::{target[1]}"
            region = {target_id} | project.reachable(target_id)
            if any(self._node_has_boundary(project, reached) for reached in region):
                continue
            yield self.project_finding(
                info.relpath,
                node,
                f"pool-submitted callable {target[1]}() never reaches an "
                f"'except Exception' fault boundary through the call graph; "
                f"one raising request would poison the whole batch instead "
                f"of becoming a status=\"error\" report",
            )

    def _resolve_function(
        self, project: ProjectContext, module_name: str, arg: ast.AST
    ) -> Optional[Tuple[str, str]]:
        """Resolve a submit-call first argument to ``(module, qualname)``."""
        if isinstance(arg, ast.Name):
            resolved = project.resolve(module_name, arg.id)
            if resolved is not None and resolved[0] == "function":
                return resolved[1], resolved[2]
            return None
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            binding = project.resolve(module_name, arg.value.id)
            if binding is not None and binding[0] == "module":
                resolved = project.resolve(binding[1], arg.attr)
                if resolved is not None and resolved[0] == "function":
                    return resolved[1], resolved[2]
        return None

    def _node_has_boundary(self, project: ProjectContext, node_id: str) -> bool:
        fn = self._function_info(project, node_id)
        return fn is not None and _has_boundary_handler(fn.node)

    @staticmethod
    def _function_info(project: ProjectContext, node_id: str):
        module_name, _, qualname = node_id.partition("::")
        info = project.modules.get(module_name)
        if info is None or not qualname:
            return None
        if "." in qualname:
            class_name, _, method_name = qualname.partition(".")
            cls = info.classes.get(class_name)
            return cls.methods.get(method_name) if cls is not None else None
        return info.functions.get(qualname)

    # ------------------------------------------------------------------
    # injection-point confinement
    # ------------------------------------------------------------------
    def _check_injection_points(
        self, project: ProjectContext, info: ModuleInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_hit_call(project, info.name, node):
                continue
            yield self.project_finding(
                info.relpath,
                node,
                f"fault-injection point faults.hit() outside the designated "
                f"modules ({', '.join(sorted(DESIGNATED_FAULT_MODULES))}); "
                f"injection probes stay confined to the engine's fault "
                f"boundaries so REPRO_FAULTS can never reach solver kernels",
            )

    def _is_hit_call(
        self, project: ProjectContext, module_name: str, node: ast.Call
    ) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id == HIT_FUNCTION:
            resolved = project.resolve(module_name, func.id)
            return resolved == ("function", FAULTS_MODULE, HIT_FUNCTION)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == HIT_FUNCTION
            and isinstance(func.value, ast.Name)
        ):
            binding = project.resolve(module_name, func.value.id)
            return binding is not None and binding[0] == "module" and binding[1] == FAULTS_MODULE
        return False
