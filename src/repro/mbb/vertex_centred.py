"""Vertex-centred subgraphs (Definition 6, Observations 4-5, Lemmas 6-8).

Given a total search order ``o = (v_1, ..., v_{|L|+|R|})``, the subgraph
centred at ``v_i`` is induced by ``v_i`` together with those of its 1-hop
and 2-hop neighbours that appear *after* it in the order.  Every maximal
biclique is contained in the subgraph centred at its earliest vertex, so
searching each centred subgraph (with the centre forced into the result)
covers the whole graph without duplication.

The quality of the order determines how small and how dense the centred
subgraphs are; the bidegeneracy order bounds their total size by
``O((|L|+|R|) * δ̈)`` (Lemma 8), which is what makes the sparse framework
practical.

A :class:`VertexCentredSubgraph` is deliberately *lazy*: generation only
computes the member vertex sets, which is all the bridging stage needs for
its trivial size test.  Neither representation of the induced subgraph — the
:class:`~repro.graph.bitset.IndexedBitGraph` used by the default bitset
pipeline nor the :class:`~repro.graph.bipartite.BipartiteGraph` used by the
``sets`` ablation — is materialised until a consumer asks for it, and each
is built at most once: the bitgraph the bridging stage builds for its core
prunes is the very object the verification stage searches.

Two generators produce the family.  :func:`iter_vertex_centred_subgraphs`
is the historical label-keyed one: per centre it hashes every visited
neighbour label against per-side position dicts.  The default pipeline
uses :func:`iter_vertex_centred_subgraphs_csr` instead, which walks the
position-space adjacency view of a :class:`~repro.graph.prepared.
PreparedGraph` snapshot (flat arrays derived from CSR ``indptr``/
``indices``, re-indexed and sorted along the order) — later members are
binary-searched contiguous tails and labels appear only at the
member-set boundary, so the yielded subgraphs (and everything downstream
of them) are byte-identical to the label-keyed generator's, which stays
selectable as the ``sets``-kernel ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph
from repro.graph.prepared import PreparedGraph, ensure_prepared_for

VertexKey = Tuple[str, Vertex]


@dataclass
class VertexCentredSubgraph:
    """One centred subgraph: member sets first, graph forms on demand."""

    center: VertexKey
    position: int
    left_members: Set[Vertex]
    right_members: Set[Vertex]
    parent: BipartiteGraph = field(repr=False)
    #: Degeneracy of the induced subgraph, cached by the bridging stage so
    #: its re-filter pass (and any later consumer) never re-peels.  ``None``
    #: until a stage that ran a core decomposition stores it.
    degeneracy: Optional[int] = field(default=None, compare=False)
    _graph: Optional[BipartiteGraph] = field(
        default=None, repr=False, compare=False
    )
    _bitgraph: Optional[IndexedBitGraph] = field(
        default=None, repr=False, compare=False
    )

    @property
    def center_side(self) -> str:
        """Which side (:data:`LEFT` / :data:`RIGHT`) the centre lies on."""
        return self.center[0]

    @property
    def center_label(self) -> Vertex:
        """The centre's vertex label."""
        return self.center[1]

    @property
    def num_left(self) -> int:
        """Number of left-side member vertices (no materialisation)."""
        return len(self.left_members)

    @property
    def num_right(self) -> int:
        """Number of right-side member vertices (no materialisation)."""
        return len(self.right_members)

    @property
    def min_side(self) -> int:
        """``min(|L|, |R|)`` of the member sets — the Lemma size-test input."""
        return min(len(self.left_members), len(self.right_members))

    @property
    def size(self) -> int:
        """Number of vertices of the centred subgraph."""
        return len(self.left_members) + len(self.right_members)

    @property
    def density(self) -> float:
        """Edge density of the centred subgraph (Figure 6 metric).

        Counted directly from the member sets against the parent's
        adjacency (iterating the smaller side), so profiling the family —
        most of which no search will ever touch — does not pay the full
        bitset indexing of :meth:`to_bitgraph` per subgraph.  A bitgraph
        that some stage already materialised is reused instead.
        """
        if self._bitgraph is not None:
            return self._bitgraph.density
        num_left = len(self.left_members)
        num_right = len(self.right_members)
        if not num_left or not num_right:
            return 0.0
        parent = self.parent
        if num_left <= num_right:
            edges = sum(
                len(parent.neighbors_left(u) & self.right_members)
                for u in self.left_members
            )
        else:
            edges = sum(
                len(parent.neighbors_right(v) & self.left_members)
                for v in self.right_members
            )
        return edges / (num_left * num_right)

    @property
    def graph(self) -> BipartiteGraph:
        """The centred subgraph as a :class:`BipartiteGraph` (lazy, cached).

        Only the ``sets`` ablation path pays for this materialisation; the
        default bitset pipeline goes straight to :meth:`to_bitgraph`.
        """
        if self._graph is None:
            self._graph = self.parent.induced_subgraph(
                self.left_members, self.right_members
            )
        return self._graph

    def to_bitgraph(self) -> IndexedBitGraph:
        """The centred subgraph as an :class:`IndexedBitGraph` (cached).

        Built directly from the parent graph restricted to the member sets
        — no intermediate :class:`BipartiteGraph` copy.  The bridging stage
        (Algorithm 6) runs its core prunes and local heuristic on this
        object and the verification stage (Algorithm 8) then searches the
        *same* cached instance, so each surviving subgraph is indexed
        exactly once per solve.
        """
        if self._bitgraph is None:
            self._bitgraph = IndexedBitGraph.from_bipartite(
                self.parent, self.left_members, self.right_members
            )
        return self._bitgraph


def vertex_centred_subgraph(
    graph: BipartiteGraph,
    center: VertexKey,
    later: Dict[VertexKey, int],
    position: int,
) -> VertexCentredSubgraph:
    """Build the subgraph centred at ``center`` restricted to later vertices.

    ``later`` maps every vertex key to its position in the total order; a
    vertex participates when its position is strictly greater than
    ``position`` (the centre's own position).  Only the member sets are
    computed here; see :class:`VertexCentredSubgraph` for the lazy graph
    forms.
    """
    left_pos = {label: pos for (side, label), pos in later.items() if side == LEFT}
    right_pos = {label: pos for (side, label), pos in later.items() if side == RIGHT}
    return _vertex_centred_subgraph(graph, center, left_pos, right_pos, position)


def _vertex_centred_subgraph(
    graph: BipartiteGraph,
    center: VertexKey,
    left_pos: Dict[Vertex, int],
    right_pos: Dict[Vertex, int],
    position: int,
) -> VertexCentredSubgraph:
    """Member-set construction with per-side position tables.

    Splitting the position map by side turns the hot inner-loop lookup
    from a tuple-key hash (build the tuple, hash two elements) into a
    plain label lookup; generation runs once per vertex of the residual
    graph, so this shows up in the S2 profile.
    """
    side, label = center
    if side == LEFT:
        right_members = {
            v for v in graph.neighbors_left(label) if right_pos[v] > position
        }
        left_members = {label}
        for v in right_members:
            for u in graph.neighbors_right(v):
                if u != label and left_pos[u] > position:
                    left_members.add(u)
    else:
        left_members = {
            u for u in graph.neighbors_right(label) if left_pos[u] > position
        }
        right_members = {label}
        for u in left_members:
            for v in graph.neighbors_left(u):
                if v != label and right_pos[v] > position:
                    right_members.add(v)
    return VertexCentredSubgraph(
        center=center,
        position=position,
        left_members=left_members,
        right_members=right_members,
        parent=graph,
    )


def iter_vertex_centred_subgraphs(
    graph: BipartiteGraph,
    order: Sequence[VertexKey],
) -> Iterator[VertexCentredSubgraph]:
    """Yield the centred subgraph of every vertex, following ``order``.

    Subgraphs are produced lazily so callers (``bridgeMBB``) can prune them
    one by one without materialising the whole family — and, since each
    yielded object carries only its member sets, a subgraph killed by the
    trivial size test never materialises any induced-subgraph form at all.
    """
    left_pos: Dict[Vertex, int] = {}
    right_pos: Dict[Vertex, int] = {}
    for index, (side, label) in enumerate(order):
        if side == LEFT:
            left_pos[label] = index
        else:
            right_pos[label] = index
    for index, key in enumerate(order):
        yield _vertex_centred_subgraph(graph, key, left_pos, right_pos, index)


def iter_vertex_centred_subgraphs_csr(
    prepared: PreparedGraph,
    order: Sequence[VertexKey],
) -> Iterator[VertexCentredSubgraph]:
    """CSR counterpart of :func:`iter_vertex_centred_subgraphs`.

    Walks the flat position-space adjacency of the snapshot's
    :class:`~repro.graph.prepared.OrderView`: every row is sorted
    ascending by order position, so the neighbours *after* the centre —
    the only vertices a centred subgraph may contain — are a contiguous
    tail found by one :func:`bisect.bisect_right` per visited row.  The
    generator therefore touches later vertices only (no per-neighbour
    position test), and the member sets are built by C-level set unions
    over the element-aligned label-row tails, so positions cross back to
    labels at the member-set boundary with no Python-level inner loop at
    all.  The yielded :class:`VertexCentredSubgraph` objects — member
    sets, positions and iteration order — are identical to the
    label-keyed generator's (property-tested), so both kernels consume
    them unchanged.
    """
    from bisect import bisect_right

    view = prepared.order_view(order if isinstance(order, list) else list(order))
    rows = view.position_rows
    row_ptr = view.row_ptr
    flat_labels = view.flat_labels
    is_left = view.is_left
    order_ids = view.order_ids
    labels = view.labels
    keys = prepared.csr.keys
    total = len(order_ids)
    make_subgraph = VertexCentredSubgraph
    parent = prepared.graph
    end = 0
    for position in range(total):
        start = end
        end = int(row_ptr[position + 1])
        cut = bisect_right(rows, position, start, end)
        if cut == end:
            # No later neighbours: the centred subgraph is the bare
            # centre.  Late-order centres hit this constantly, so skip
            # the set machinery entirely.
            own_members = {labels[position]}
            other_members: Set[Vertex] = set()
        else:
            other_members = set(flat_labels[cut:end])
            # The 2-hop union runs entirely in C: per later neighbour,
            # one binary search (bounded to the neighbour's row inside
            # the flat buffer — no row is ever materialised) plus one
            # set.update over the later-tail slice of the element-aligned
            # label array.  Positions are only read through `rows`, the
            # zero-copy view, so nothing row-shaped is copied per centre.
            own_members = set()
            update = own_members.update
            for neighbour in rows[cut:end]:
                neighbour = int(neighbour)
                neighbour_start = int(row_ptr[neighbour])
                neighbour_end = int(row_ptr[neighbour + 1])
                update(
                    flat_labels[
                        bisect_right(
                            rows, position, neighbour_start, neighbour_end
                        ) : neighbour_end
                    ]
                )
            own_members.add(labels[position])
        if is_left[position]:
            left_members, right_members = own_members, other_members
        else:
            left_members, right_members = other_members, own_members
        yield make_subgraph(
            center=keys[order_ids[position]],
            position=position,
            left_members=left_members,
            right_members=right_members,
            parent=parent,
        )


def vertex_centred_subgraphs_at(
    prepared: PreparedGraph,
    order: Sequence[VertexKey],
    positions: Sequence[int],
) -> List[VertexCentredSubgraph]:
    """Regenerate the centred subgraphs at the given order ``positions``.

    The random-access counterpart of
    :func:`iter_vertex_centred_subgraphs_csr` for consumers that own only
    a *slice* of the family — parallel-S3 workers receive plain integer
    positions over the pool boundary and rebuild exactly the subgraphs
    their task names against the shared prepared snapshot.  The walk is
    the same bounded-bisect CSR walk as the full generator (row bounds
    come straight from ``row_ptr`` instead of the running cursor), so
    the member sets are identical to the generator's at the same
    position (property-tested).
    """
    from bisect import bisect_right

    view = prepared.order_view(order if isinstance(order, list) else list(order))
    rows = view.position_rows
    row_ptr = view.row_ptr
    flat_labels = view.flat_labels
    is_left = view.is_left
    order_ids = view.order_ids
    labels = view.labels
    keys = prepared.csr.keys
    parent = prepared.graph
    subgraphs: List[VertexCentredSubgraph] = []
    for position in positions:
        position = int(position)
        start = int(row_ptr[position])
        end = int(row_ptr[position + 1])
        cut = bisect_right(rows, position, start, end)
        if cut == end:
            own_members = {labels[position]}
            other_members: Set[Vertex] = set()
        else:
            other_members = set(flat_labels[cut:end])
            own_members = set()
            update = own_members.update
            for neighbour in rows[cut:end]:
                neighbour = int(neighbour)
                neighbour_start = int(row_ptr[neighbour])
                neighbour_end = int(row_ptr[neighbour + 1])
                update(
                    flat_labels[
                        bisect_right(
                            rows, position, neighbour_start, neighbour_end
                        ) : neighbour_end
                    ]
                )
            own_members.add(labels[position])
        if is_left[position]:
            left_members, right_members = own_members, other_members
        else:
            left_members, right_members = other_members, own_members
        subgraphs.append(
            VertexCentredSubgraph(
                center=keys[order_ids[position]],
                position=position,
                left_members=left_members,
                right_members=right_members,
                parent=parent,
            )
        )
    return subgraphs


def total_subgraph_size(
    graph: BipartiteGraph,
    order: Sequence[VertexKey],
    *,
    prepared: Optional[PreparedGraph] = None,
) -> int:
    """Total number of vertices over all centred subgraphs (Lemmas 6-8).

    Runs on the CSR generator; pass the ``prepared`` snapshot when the
    caller already holds one (the Figure 6 metrics share a single
    snapshot across all three orders) to skip re-indexing.
    """
    if prepared is None:
        prepared = PreparedGraph.prepare(graph)
    else:
        ensure_prepared_for(prepared, graph)
    return sum(
        sub.size for sub in iter_vertex_centred_subgraphs_csr(prepared, order)
    )


def subgraph_density_profile(
    graph: BipartiteGraph,
    order: Sequence[VertexKey],
    *,
    prepared: Optional[PreparedGraph] = None,
) -> List[float]:
    """Densities of all centred subgraphs with at least one edge candidate.

    Subgraphs whose centre has no later neighbours are skipped, matching
    how the paper reports the *average density of vertex centred
    subgraphs* in Figure 6 (empty slices would otherwise dominate the
    average with zeros).  Like :func:`total_subgraph_size` this runs on
    the CSR generator and accepts a shared ``prepared`` snapshot.
    """
    if prepared is None:
        prepared = PreparedGraph.prepare(graph)
    else:
        ensure_prepared_for(prepared, graph)
    densities: List[float] = []
    for sub in iter_vertex_centred_subgraphs_csr(prepared, order):
        if sub.num_left > 0 and sub.num_right > 0:
            density = sub.density
            if density > 0.0:
                densities.append(density)
    return densities
