"""Kernel comparison — bitset vs adjacency-set inner loops, per stage.

Two comparisons are produced, both over the :data:`KERNELS` pair:

* **dense rows** time :func:`repro.mbb.dense.dense_mbb` with both
  branch-and-bound kernels on the Table 4 dense synthetic instances;
* **bridge rows** time :func:`repro.mbb.bridge.bridge_mbb` — the sparse
  framework's S2 stage — with both kernels on the largest KONECT
  stand-ins, from the same precomputed bidegeneracy order and an empty
  incumbent (the ``bd1``-style worst case where every centred subgraph
  must be peeled).  Sharing the order isolates exactly the part of the
  stage the ``kernel`` switch governs.

Both kernels run the same algorithm with the same tie-breaking, so dense
rows find the same optimum (node counts differ by a few percent) and
bridge rows keep the same surviving subgraphs; the time ratio therefore
isolates the data-structure effect: hash-set intersections and dict-keyed
bucket peels vs single ``&``/``bit_count`` operations on packed integers.

The resulting rows are archived as ``BENCH_kernels.json`` at the repository
root so regressions of the bitset kernels are caught by comparing against
the committed baseline.
"""

from __future__ import annotations

import json
from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table, run_backend, timed
from repro.cores.orders import ORDER_BIDEGENERACY, search_order
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.heuristics import degree_heuristic
from repro.workloads.datasets import load_dataset
from repro.workloads.synthetic import DenseCase, dense_case_graph

#: Table 4-style cases used for the comparison: doubling sides at the two
#: densities where the paper's dense experiments start and end.  The
#: side-48 case was added once the bitset kernel cut the 40x40 time by
#: >= 3x, extending the measured range beyond the original side-40 cap.
DEFAULT_KERNEL_CASES = (
    DenseCase(side=16, density=0.85),
    DenseCase(side=24, density=0.85),
    DenseCase(side=32, density=0.85),
    DenseCase(side=32, density=0.70),
    DenseCase(side=40, density=0.85),
    DenseCase(side=48, density=0.85),
)

#: Reduced dense sweep for CI smoke runs (seconds, not minutes).
SMOKE_KERNEL_CASES = (
    DenseCase(side=16, density=0.85),
    DenseCase(side=24, density=0.85),
)

#: KONECT stand-ins used for the bridging-stage comparison: the largest /
#: densest tough datasets, where S2 scans the most non-trivial centred
#: subgraphs.
DEFAULT_BRIDGE_DATASETS = (
    "jester",
    "flickr-groupmemberships",
    "discogs-style",
    "reuters",
    "gottron-trec",
)

#: Single small stand-in for CI smoke runs of the bridge comparison.
SMOKE_BRIDGE_DATASETS = ("unicodelang",)

KERNELS = (KERNEL_SETS, KERNEL_BITS)


def run_kernel_case(
    case: DenseCase,
    *,
    instances: int = 2,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time both kernels on one dense case, averaged over instances."""
    rows: List[Dict[str, object]] = []
    for kernel in KERNELS:
        times: List[float] = []
        sides: List[int] = []
        nodes: List[int] = []
        timed_out = False
        for instance in range(instances):
            graph = dense_case_graph(case, instance)
            result, elapsed = run_backend(
                graph,
                "dense",
                kernel=kernel,
                time_budget=time_budget,
                initial_best=degree_heuristic(graph),
            )
            times.append(elapsed)
            sides.append(result.side_size)
            nodes.append(result.stats.nodes)
            if not result.optimal:
                timed_out = True
        rows.append(
            {
                "stage": "dense",
                "size": f"{case.side}x{case.side}",
                "density": case.density,
                "kernel": kernel,
                "seconds": mean(times),
                "nodes": max(nodes),
                "mbb_side": max(sides),
                "timed_out": timed_out,
            }
        )
    return rows


def run_bridge_case(
    dataset: str,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time the bridging stage (S2) with both kernels on one stand-in.

    The bidegeneracy order — the kernel-independent fixed cost of the
    stage — is computed once and shared, so the measured time is the
    per-subgraph work the ``kernel`` switch actually governs: member-set
    slicing, the core-decomposition peel, the degeneracy test and the
    local heuristic.  The incumbent starts empty (the ``bd1`` worst case:
    no size test kills a subgraph for free).  Each kernel is run
    ``repeats`` times and the minimum is reported, since these are
    sub-second measurements.
    """
    graph = load_dataset(dataset)
    order = search_order(graph, ORDER_BIDEGENERACY)
    rows: List[Dict[str, object]] = []
    for kernel in KERNELS:
        completed_seconds = float("inf")
        aborted_seconds = float("inf")
        survivors = 0
        side = 0
        for _ in range(max(1, repeats)):
            context = SearchContext(time_budget=time_budget)
            outcome, elapsed = timed(
                bridge_mbb, graph, context, kernel=kernel, total_order=order
            )
            # Every archived column (seconds included) comes from completed
            # repeats only, so the row never mixes a full measurement with
            # a partial scan; aborted timings are the fallback when every
            # repeat blew the budget, and only then is timed_out reported.
            if context.aborted:
                aborted_seconds = min(aborted_seconds, elapsed)
            else:
                completed_seconds = min(completed_seconds, elapsed)
                survivors = len(outcome.surviving)
                side = context.best_side
        all_aborted = completed_seconds == float("inf")
        rows.append(
            {
                "stage": "bridge",
                "size": dataset,
                "density": round(graph.density, 5),
                "kernel": kernel,
                "seconds": aborted_seconds if all_aborted else completed_seconds,
                "survivors": survivors,
                "mbb_side": side,
                "timed_out": all_aborted,
            }
        )
    return rows


def run_bridge_comparison(
    datasets: Sequence[str] = DEFAULT_BRIDGE_DATASETS,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all bridging-stage rows, one per (dataset, kernel)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_bridge_case(dataset, repeats=repeats, time_budget=time_budget)
        )
    return rows


def run_kernel_comparison(
    cases: Sequence[DenseCase] = DEFAULT_KERNEL_CASES,
    *,
    instances: int = 2,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all comparison rows, one per (case, kernel)."""
    rows: List[Dict[str, object]] = []
    for case in cases:
        rows.extend(
            run_kernel_case(case, instances=instances, time_budget=time_budget)
        )
    return rows


def speedups(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-case ``sets seconds / bits seconds`` ratios.

    A pair in which either kernel timed out carries ``timed_out=True``:
    the aborted side's time is a truncated lower bound, so the ratio is a
    *lower bound on the real speedup* (when ``sets`` timed out) or
    meaningless (when ``bits`` did) rather than a measurement, and the
    committed-baseline comparison must not treat it as one.
    """
    by_case: Dict[tuple, Dict[str, Dict[str, object]]] = {}
    for row in rows:
        key = (row.get("stage", "dense"), row["size"], row["density"])
        by_case.setdefault(key, {})[str(row["kernel"])] = row
    result: List[Dict[str, object]] = []
    for (stage, size, density), pair in by_case.items():
        if KERNEL_SETS not in pair or KERNEL_BITS not in pair:
            continue
        sets_s = float(pair[KERNEL_SETS]["seconds"])  # type: ignore[arg-type]
        bits_s = float(pair[KERNEL_BITS]["seconds"])  # type: ignore[arg-type]
        result.append(
            {
                "stage": stage,
                "size": size,
                "density": density,
                "sets_seconds": sets_s,
                "bits_seconds": bits_s,
                "speedup": sets_s / bits_s if bits_s > 0 else float("inf"),
                "timed_out": bool(
                    pair[KERNEL_SETS].get("timed_out")
                    or pair[KERNEL_BITS].get("timed_out")
                ),
            }
        )
    return result


def format_kernel_comparison(
    rows: Sequence[Dict[str, object]],
    bridge_rows: Sequence[Dict[str, object]] = (),
) -> str:
    """Render raw rows (dense, then bridge) plus the speedup summaries."""
    summary = speedups(list(rows) + list(bridge_rows))
    sections = [format_table(list(rows))]
    if bridge_rows:
        sections.append(format_table(list(bridge_rows)))
    sections.append(
        format_table(summary) if summary else "(no complete kernel pairs)"
    )
    return "\n\n".join(sections)


def write_benchmark_json(
    rows: Sequence[Dict[str, object]],
    path: str,
    bridge_rows: Sequence[Dict[str, object]] = (),
) -> None:
    """Archive comparison rows (plus speedups) as a JSON document."""
    document = {
        "rows": list(rows),
        "bridge_rows": list(bridge_rows),
        "speedups": speedups(list(rows) + list(bridge_rows)),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
