"""Total search orders compared in the paper (Lemmas 6-8).

The sparse framework turns a graph into vertex-centred subgraphs along a
total order of the vertices.  The paper compares three orders:

* **degree order** (non-increasing global degree, as used by ExtBBClq) —
  total subgraph size ``O((|L|+|R|) * dmax^2)`` (Lemma 6);
* **degeneracy order** — ``O((|L|+|R|) * δ(G) * dmax)`` (Lemma 7);
* **bidegeneracy order** — ``O((|L|+|R|) * δ̈(G))`` (Lemma 8), the winner.

:func:`search_order` provides a single entry point used by the sparse
solver and by the ``bd4``/``bd5`` ablations and the Figure 5/6 benches.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.cores.bicore import bidegeneracy_order
from repro.cores.core import degeneracy_order

VertexKey = Tuple[str, Vertex]

ORDER_DEGREE = "degree"
ORDER_DEGENERACY = "degeneracy"
ORDER_BIDEGENERACY = "bidegeneracy"

#: All supported order names, in the order the paper introduces them.
ALL_ORDERS = (ORDER_DEGREE, ORDER_DEGENERACY, ORDER_BIDEGENERACY)


def degree_order(graph: BipartiteGraph) -> List[VertexKey]:
    """Vertices sorted by non-increasing degree (ExtBBClq's total order).

    For vertex-centred subgraph generation the order is consumed front to
    back, so placing high-degree vertices first mirrors the branching order
    of the existing exact algorithm the paper compares against.  Ties are
    broken deterministically by side and label representation.
    """
    keys: List[VertexKey] = [(LEFT, u) for u in graph.left_vertices()]
    keys.extend((RIGHT, v) for v in graph.right_vertices())

    def sort_key(key: VertexKey):
        side, label = key
        degree = (
            graph.degree_left(label) if side == LEFT else graph.degree_right(label)
        )
        return (-degree, side, repr(label))

    return sorted(keys, key=sort_key)


def search_order(
    graph: BipartiteGraph, order: str, *, prepared=None
) -> List[VertexKey]:
    """Return the requested total search order over all vertices.

    The bidegeneracy order runs on the default flat bucket engine; callers
    that want a specific peel engine (the ``heap`` ablation, the ``exact``
    oracle) call :func:`~repro.cores.bicore.bidegeneracy_order` with
    ``impl=`` directly, as the peel benchmarks do.

    Parameters
    ----------
    order:
        One of :data:`ORDER_DEGREE`, :data:`ORDER_DEGENERACY`,
        :data:`ORDER_BIDEGENERACY`.
    prepared:
        Optional :class:`~repro.graph.prepared.PreparedGraph` of exactly
        this graph; the order is then computed from (and memoised on) the
        snapshot, so a repeated solve never re-peels.  A fresh list is
        returned (the memoised one stays private to the snapshot, safe
        from caller mutation), and a snapshot built from a different
        graph is rejected.  Unknown order names are still rejected here
        either way.
    """
    if prepared is not None and order in ALL_ORDERS:
        from repro.graph.prepared import ensure_prepared_for

        ensure_prepared_for(prepared, graph)
        return list(prepared.search_order(order))
    if order == ORDER_DEGREE:
        return degree_order(graph)
    if order == ORDER_DEGENERACY:
        return degeneracy_order(graph)
    if order == ORDER_BIDEGENERACY:
        return bidegeneracy_order(graph)
    raise InvalidParameterError(
        f"unknown search order {order!r}; expected one of {ALL_ORDERS}"
    )
