"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.generators import planted_balanced_biclique
from repro.graph.io import read_edge_list, write_edge_list


class TestSolveCommand:
    def test_solve_edge_list_file(self, tmp_path, capsys):
        graph = planted_balanced_biclique(15, 15, 4, background_density=0.05, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        exit_code = main(["solve", "--input", str(path), "--show-vertices"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "maximum balanced biclique side size: 4" in out
        assert "left" in out and "right" in out

    def test_solve_dataset_stand_in(self, capsys):
        exit_code = main(["solve", "--dataset", "unicodelang", "--method", "sparse"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "terminated at step" in out

    def test_solve_unknown_dataset_reports_error(self, capsys):
        exit_code = main(["solve", "--dataset", "does-not-exist"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "error" in err

    def test_method_choices_are_validated(self):
        with pytest.raises(SystemExit):
            main(["solve", "--dataset", "unicodelang", "--method", "quantum"])


class TestGenerateCommand:
    def test_generate_dense_graph(self, tmp_path, capsys):
        path = tmp_path / "dense.txt"
        exit_code = main(
            ["generate", str(path), "--left", "10", "--right", "12", "--density", "0.5"]
        )
        assert exit_code == 0
        graph = read_edge_list(path)
        assert graph.num_left <= 10 and graph.num_right <= 12
        assert "wrote" in capsys.readouterr().out

    def test_generate_sparse_graph(self, tmp_path):
        path = tmp_path / "sparse.txt"
        exit_code = main(
            ["generate", str(path), "--left", "30", "--right", "30", "--avg-degree", "2.0"]
        )
        assert exit_code == 0
        assert path.exists()

    def test_generate_requires_exactly_one_model(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        exit_code = main(["generate", str(path), "--left", "5", "--right", "5"])
        assert exit_code == 2
        assert "exactly one" in capsys.readouterr().err


class TestInformationCommands:
    def test_datasets_lists_all_thirty(self, capsys):
        exit_code = main(["datasets"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("\n") >= 30
        assert "jester" in out and "dblp-author" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestBenchCommand:
    def test_bench_figure6(self, capsys):
        exit_code = main(["bench", "figure6"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "bidegeneracy" in out
