"""Unit tests for the BipartiteGraph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DuplicateVertexError,
    InvalidEdgeError,
    VertexNotFoundError,
)
from repro.graph.bipartite import (
    LEFT,
    RIGHT,
    BipartiteGraph,
    common_neighbors_of_left,
    common_neighbors_of_right,
)
from repro.graph.validation import check_consistent


class TestConstruction:
    def test_empty_graph_has_no_vertices_or_edges(self, empty_graph):
        assert empty_graph.num_left == 0
        assert empty_graph.num_right == 0
        assert empty_graph.num_edges == 0
        assert empty_graph.num_vertices == 0
        assert empty_graph.density == 0.0

    def test_constructor_with_vertices_only(self):
        graph = BipartiteGraph(left=[1, 2], right=["a"])
        assert graph.left == {1, 2}
        assert graph.right == {"a"}
        assert graph.num_edges == 0

    def test_constructor_with_edges_creates_endpoints(self):
        graph = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        assert graph.left == {1, 2}
        assert graph.right == {"a", "b"}
        assert graph.num_edges == 2

    def test_from_edges_classmethod(self):
        graph = BipartiteGraph.from_edges([(1, 2), (1, 3)])
        assert graph.num_left == 1
        assert graph.num_right == 2

    def test_sides_have_independent_label_spaces(self):
        graph = BipartiteGraph(edges=[(0, 0)])
        assert graph.has_left_vertex(0)
        assert graph.has_right_vertex(0)
        assert graph.num_vertices == 2

    def test_duplicate_left_vertex_raises(self):
        graph = BipartiteGraph(left=[1])
        with pytest.raises(DuplicateVertexError):
            graph.add_left_vertex(1)

    def test_duplicate_right_vertex_raises_without_exist_ok(self):
        graph = BipartiteGraph(right=["x"])
        with pytest.raises(DuplicateVertexError):
            graph.add_right_vertex("x")
        graph.add_right_vertex("x", exist_ok=True)  # no error

    def test_repr_mentions_sizes(self, k33):
        assert "3" in repr(k33)


class TestEdges:
    def test_add_edge_is_idempotent(self):
        graph = BipartiteGraph()
        graph.add_edge(1, "a")
        graph.add_edge(1, "a")
        assert graph.num_edges == 1

    def test_has_edge(self, single_edge):
        assert single_edge.has_edge(0, 0)
        assert not single_edge.has_edge(0, 1)
        assert not single_edge.has_edge(99, 0)

    def test_remove_edge(self):
        graph = BipartiteGraph(edges=[(1, "a"), (1, "b")])
        graph.remove_edge(1, "a")
        assert not graph.has_edge(1, "a")
        assert graph.has_edge(1, "b")
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = BipartiteGraph(edges=[(1, "a")], right=["b"])
        with pytest.raises(InvalidEdgeError):
            graph.remove_edge(1, "b")

    def test_remove_edge_with_missing_endpoint_raises(self):
        graph = BipartiteGraph(edges=[(1, "a")])
        with pytest.raises(VertexNotFoundError):
            graph.remove_edge(99, "a")
        with pytest.raises(VertexNotFoundError):
            graph.remove_edge(1, "zz")

    def test_edges_iterator_yields_left_right_pairs(self, k33):
        edges = list(k33.edges())
        assert len(edges) == 9
        assert all(k33.has_left_vertex(u) and k33.has_right_vertex(v) for u, v in edges)

    def test_to_edge_list_is_sorted_and_deterministic(self):
        graph = BipartiteGraph(edges=[(2, "b"), (1, "a"), (2, "a")])
        assert graph.to_edge_list() == sorted(graph.to_edge_list(), key=lambda e: (repr(e[0]), repr(e[1])))


class TestVertexRemoval:
    def test_remove_left_vertex_drops_incident_edges(self, k33):
        k33.remove_left_vertex(0)
        assert k33.num_left == 2
        assert k33.num_edges == 6
        check_consistent(k33)

    def test_remove_right_vertex_drops_incident_edges(self, k33):
        k33.remove_right_vertex(2)
        assert k33.num_right == 2
        assert k33.num_edges == 6
        check_consistent(k33)

    def test_remove_missing_vertex_raises(self, k33):
        with pytest.raises(VertexNotFoundError):
            k33.remove_left_vertex(42)
        with pytest.raises(VertexNotFoundError):
            k33.remove_right_vertex(42)

    def test_remove_vertices_bulk_ignores_missing(self, k33):
        k33.remove_vertices(left=[0, 99], right=[1])
        assert k33.num_left == 2
        assert k33.num_right == 2
        check_consistent(k33)


class TestQueries:
    def test_degrees(self, k33):
        assert all(k33.degree_left(u) == 3 for u in k33.left_vertices())
        assert all(k33.degree_right(v) == 3 for v in k33.right_vertices())
        assert k33.max_degree() == 3

    def test_degree_of_missing_vertex_raises(self, k33):
        with pytest.raises(VertexNotFoundError):
            k33.degree_left(10)
        with pytest.raises(VertexNotFoundError):
            k33.degree_right(10)

    def test_density_of_complete_graph_is_one(self, k33):
        assert k33.density == pytest.approx(1.0)

    def test_density_partial(self):
        graph = BipartiteGraph(left=[0, 1], right=[0, 1], edges=[(0, 0)])
        assert graph.density == pytest.approx(0.25)

    def test_contains_side_label_pairs(self, single_edge):
        assert (LEFT, 0) in single_edge
        assert (RIGHT, 0) in single_edge
        assert (LEFT, 5) not in single_edge
        assert ("bogus", 0) not in single_edge

    def test_len_counts_all_vertices(self, k33):
        assert len(k33) == 6

    def test_equality(self):
        a = BipartiteGraph(edges=[(1, "x"), (2, "y")])
        b = BipartiteGraph(edges=[(2, "y"), (1, "x")])
        c = BipartiteGraph(edges=[(1, "x")])
        assert a == b
        assert a != c
        assert a != "not a graph"


class TestDerivedGraphs:
    def test_copy_is_independent(self, k33):
        clone = k33.copy()
        clone.remove_edge(0, 0)
        assert k33.has_edge(0, 0)
        assert not clone.has_edge(0, 0)
        check_consistent(clone)

    def test_induced_subgraph(self, k33):
        sub = k33.induced_subgraph([0, 1], [1])
        assert sub.left == {0, 1}
        assert sub.right == {1}
        assert sub.num_edges == 2

    def test_induced_subgraph_ignores_missing_vertices(self, k33):
        sub = k33.induced_subgraph([0, 77], [1, 88])
        assert sub.left == {0}
        assert sub.right == {1}

    def test_induced_subgraph_empty_selection(self, k33):
        sub = k33.induced_subgraph([], [])
        assert sub.num_vertices == 0

    def test_biadjacency_round_trip(self):
        matrix = [[1, 0, 1], [0, 1, 0]]
        graph = BipartiteGraph.from_biadjacency(matrix)
        back, left_order, right_order = graph.to_biadjacency()
        assert back == matrix
        assert left_order == [0, 1]
        assert right_order == [0, 1, 2]

    def test_from_biadjacency_accepts_truthy_entries(self):
        graph = BipartiteGraph.from_biadjacency([[2, 0], [0, 0.5]])
        assert graph.has_edge(0, 0)
        assert graph.has_edge(1, 1)
        assert graph.num_edges == 2


class TestCommonNeighbors:
    def test_common_neighbors_of_left(self, k33):
        assert common_neighbors_of_left(k33, [0, 1]) == frozenset({0, 1, 2})

    def test_common_neighbors_of_left_empty_input_returns_all_right(self, k33):
        assert common_neighbors_of_left(k33, []) == frozenset(k33.right)

    def test_common_neighbors_of_right(self):
        graph = BipartiteGraph(edges=[(1, "a"), (2, "a"), (2, "b")])
        assert common_neighbors_of_right(graph, ["a", "b"]) == frozenset({2})

    def test_common_neighbors_shrinks_to_empty(self):
        graph = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        assert common_neighbors_of_left(graph, [1, 2]) == frozenset()
