"""Shared mutable state for a single MBB search.

Every solver in the library (the paper's algorithms as well as the
baselines) threads a :class:`SearchContext` through its recursion.  The
context owns:

* the incumbent — the best balanced biclique found so far, shared across
  the heuristic, bridging and verification stages so that later stages
  prune with the bound established by earlier ones;
* search statistics (node counts, depths) for the breakdown experiments;
* optional node and wall-clock budgets, so benchmark runs of exponential
  baselines terminate gracefully instead of hanging the harness (this
  plays the role of the paper's 4-hour timeout);
* a cooperative cancellation/deadline hook, so external drivers — most
  importantly :class:`repro.api.engine.MBBEngine`, which enforces
  per-request budgets across batch solves — can stop a running search
  through one mechanism instead of per-solver plumbing.

Two polling granularities exist.  :meth:`SearchContext.enter_node` is the
per-search-node probe: it records node statistics and enforces *every*
budget, including the node budget.  :meth:`SearchContext.checkpoint` is the
lightweight probe for the stages that do no branch-and-bound of their own —
the heuristic stage polls it once per greedy seed and the bridging stage
once per vertex-centred subgraph.  ``checkpoint()`` enforces the
cancellation hook, the wall-clock budget and the absolute deadline but
deliberately does **not** touch node statistics (node counts keep measuring
exhaustive-search work only) and does not test the node budget (no node is
being entered).  Both raise :class:`SearchAborted` with ``aborted`` set, so
a budget blown during S1/S2 aborts the solve just like one blown inside the
dense kernel, and ``hbvMBB`` reports ``optimal=False`` instead of claiming
exhaustion.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.result import Biclique, SearchStats


class SearchAborted(Exception):
    """Internal control-flow exception raised when a budget is exhausted.

    Solvers catch it at their top level and return the incumbent with
    ``optimal=False``; it never escapes the public API.
    """


@dataclass
class SearchContext:
    """Mutable incumbent + budget + statistics for one solver invocation."""

    best: Biclique = field(default_factory=Biclique.empty)
    stats: SearchStats = field(default_factory=SearchStats)
    node_budget: Optional[int] = None
    time_budget: Optional[float] = None
    #: Absolute deadline on the :func:`time.perf_counter` clock.  Unlike
    #: ``time_budget`` (which is relative to the context's creation) a
    #: deadline survives being handed from one solver stage to the next,
    #: which is how the engine enforces one per-request budget end to end.
    deadline: Optional[float] = None
    #: Optional cooperative cancellation hook, polled at every search node.
    #: Returning ``True`` aborts the search exactly like an exhausted
    #: budget; the incumbent found so far is still reported.
    cancel_hook: Optional[Callable[[], bool]] = None
    #: Size-only lower bound on the *global* incumbent, for searches that
    #: participate in a fan-out (parallel S3 workers): the witness lives
    #: in another process, but its side size still tightens every
    #: Lemma-5/size bound here.  ``best_side`` folds it in; offers below
    #: the floor are rejected because the parent already holds something
    #: at least this large.
    incumbent_floor: int = 0
    #: Optional cross-process incumbent channel: any object exposing an
    #: integer ``value`` (a ``multiprocessing.Value``).  ``checkpoint()``
    #: polls it every :attr:`shared_poll_interval` checkpoints to raise
    #: :attr:`incumbent_floor` mid-search, and incumbent improvements are
    #: published back through it.  The channel is *advisory*: a stale or
    #: unreadable value only weakens pruning, never correctness, so a
    #: broken channel degrades to local-only bounds instead of raising.
    shared_best_side: Optional[object] = None
    #: Checkpoints between consecutive polls of :attr:`shared_best_side`
    #: (counter-based, not time-based, so polling stays deterministic for
    #: a fixed work sequence and costs nothing on the hot path).
    shared_poll_interval: int = 64
    _shared_poll_countdown: int = 0
    _start_time: float = field(default_factory=time.perf_counter)
    aborted: bool = False
    cancelled: bool = False

    @property
    def best_side(self) -> int:
        """Side size of the incumbent, including the cross-process floor.

        Every size bound in the library prunes against this property, so
        a floor broadcast by another process tightens in-flight searches
        exactly like a locally found incumbent would.
        """
        local = self.best.side_size
        if self.incumbent_floor > local:
            return self.incumbent_floor
        return local

    @property
    def best_total(self) -> int:
        """Total vertex count of the incumbent after balancing."""
        return 2 * self.best.side_size

    @property
    def elapsed(self) -> float:
        """Seconds since the context was created."""
        return time.perf_counter() - self._start_time

    def offer(
        self,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
    ) -> bool:
        """Offer a biclique as a new incumbent.

        The offered pair is balanced by trimming the larger side.  Returns
        ``True`` when the incumbent improved.  Offers are measured against
        :attr:`best_side` — the local incumbent *or* the cross-process
        floor, whichever is larger — and accepted improvements are
        published back through :attr:`shared_best_side` when present.
        """
        candidate = Biclique.of(left, right).balanced()
        if candidate.side_size > self.best_side:
            self.best = candidate
            self._publish_best_side()
            return True
        return False

    def adopt_witness(
        self,
        left: Iterable[Vertex],
        right: Iterable[Vertex],
    ) -> bool:
        """Adopt a biclique found by a cooperating search (a parallel-S3 task).

        Unlike :meth:`offer`, the comparison ignores
        :attr:`incumbent_floor`: the floor very likely echoes this same
        biclique's own broadcast, and rejecting the witness behind one's
        bound would leave the bound forever unconfirmed.  The adopted
        witness is still published, which is a no-op when the floor
        already carries its size.
        """
        candidate = Biclique.of(left, right).balanced()
        if candidate.side_size > self.best.side_size:
            self.best = candidate
            self._publish_best_side()
            return True
        return False

    def offer_biclique(self, biclique: Biclique) -> bool:
        """Offer an already-built :class:`Biclique` as a new incumbent."""
        balanced = biclique.balanced()
        if balanced.side_size > self.best_side:
            self.best = balanced
            self._publish_best_side()
            return True
        return False

    def cancel(self) -> None:
        """Request cooperative cancellation of the running search.

        The next :meth:`enter_node` call raises :class:`SearchAborted`,
        which solvers translate into an ``optimal=False`` result carrying
        the incumbent found so far.
        """
        self.cancelled = True

    def checkpoint(self, *, enforce_node_budget: bool = False) -> None:
        """Enforce cancellation and wall-clock budgets outside the kernel.

        The lightweight counterpart of :meth:`enter_node` for stages that
        are not branch-and-bound searches (greedy seeds in S1, centred
        subgraphs in S2): polls the cancellation hook, the relative time
        budget and the absolute deadline, raising :class:`SearchAborted`
        with ``aborted`` set when any fires.  Node statistics are *not*
        recorded and by default the node budget is *not* tested — no
        search node is being entered, and inflating the counters would
        distort the breakdown experiments.

        ``enforce_node_budget=True`` additionally aborts once the node
        budget has no headroom left (``stats.nodes >= node_budget``,
        still without recording a node).  Drivers that fan out child
        searches — the size-constrained ``(k, k)`` ladder and the
        parallel-S3 dispatcher — poll this form between children instead
        of re-deriving the budget arithmetic themselves.
        """
        if self.shared_best_side is not None:
            self._shared_poll_countdown -= 1
            if self._shared_poll_countdown <= 0:
                self._shared_poll_countdown = self.shared_poll_interval
                self._poll_shared_incumbent()
        if self.cancelled or self._poll_cancel_hook():
            self.cancelled = True
            self.aborted = True
            raise SearchAborted("search cancelled")
        if self.time_budget is not None and self.elapsed > self.time_budget:
            self.aborted = True
            raise SearchAborted(f"time budget {self.time_budget}s exhausted")
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.aborted = True
            raise SearchAborted("deadline exceeded")
        if (
            enforce_node_budget
            and self.node_budget is not None
            and self.stats.nodes >= self.node_budget
        ):
            self.aborted = True
            raise SearchAborted(f"node budget {self.node_budget} exhausted")

    def _poll_cancel_hook(self) -> bool:
        """Poll :attr:`cancel_hook`, treating a *crashing* hook as a cancel.

        The hook is supervision plumbing (a cross-process flag reader, a
        server's disconnect probe): if it raises, supervision is broken
        and the search can no longer be stopped from outside.  Aborting
        cleanly — incumbent preserved, ``optimal=False`` — is strictly
        safer than letting an arbitrary exception destroy the solve from
        a hot loop, and it is the same contract a ``True`` return has.
        ``SearchAborted`` from a hook that cancels by raising is passed
        through untouched.
        """
        if self.cancel_hook is None:
            return False
        try:
            return bool(self.cancel_hook())
        except SearchAborted:
            raise
        except Exception:
            return True

    def _poll_shared_incumbent(self) -> None:
        """Raise :attr:`incumbent_floor` from the cross-process channel.

        The channel is advisory supervision plumbing like the cancel
        hook, but with the opposite failure posture: a hook that breaks
        means the search can no longer be stopped (so we abort), while a
        channel that breaks merely loses a pruning hint (so we fall back
        to local bounds and keep searching).
        """
        channel = self.shared_best_side
        try:
            floor = int(channel.value)  # type: ignore[union-attr]
        except Exception:
            return
        if floor > self.incumbent_floor:
            self.incumbent_floor = floor
            self.stats.incumbent_broadcasts += 1

    def _publish_best_side(self) -> None:
        """Publish the improved local incumbent's side size to the channel.

        Writes go through the channel's lock (when it has one) so two
        processes improving concurrently keep the published bound
        monotone; like polling, a failed publish is silently dropped —
        the bound is an optimisation, the witness travels with the task
        result.
        """
        channel = self.shared_best_side
        if channel is None:
            return
        side = self.best.side_size
        try:
            lock = getattr(channel, "get_lock", None)
            if lock is None:
                if side > channel.value:  # type: ignore[attr-defined]
                    channel.value = side  # type: ignore[attr-defined]
                    self.stats.incumbent_broadcasts += 1
            else:
                with lock():
                    if side > channel.value:  # type: ignore[attr-defined]
                        channel.value = side  # type: ignore[attr-defined]
                        self.stats.incumbent_broadcasts += 1
        except Exception:
            return

    def remaining_node_budget(self) -> Optional[int]:
        """Search nodes left before the node budget trips (``None`` = unbounded).

        The canonical way to forward a budget slice into a child search:
        solvers must not re-derive ``node_budget - stats.nodes`` by hand
        (reprolint RPL001 flags the pattern outside this module).
        """
        if self.node_budget is None:
            return None
        return max(0, self.node_budget - self.stats.nodes)

    def remaining_time_budget(self) -> Optional[float]:
        """Seconds left on the relative time budget (``None`` = unbounded).

        Like :meth:`remaining_node_budget`, this is the sanctioned form
        of ``time_budget - elapsed`` for handing a shrinking wall-clock
        allowance to a child search.  The absolute :attr:`deadline` needs
        no such slicing — it is simply copied to the child.
        """
        if self.time_budget is None:
            return None
        return max(0.0, self.time_budget - self.elapsed)

    def remaining_wall_seconds(self) -> Optional[float]:
        """Seconds until the earliest wall-clock cutoff (``None`` = none).

        Folds the relative :attr:`time_budget` and the absolute
        :attr:`deadline` into one relative allowance.  An absolute
        deadline is meaningless in another process (``perf_counter`` has
        no cross-process epoch guarantee), so this is the sanctioned way
        to hand the remaining wall clock to a pool-worker child search —
        the cross-process counterpart of :meth:`remaining_time_budget`'s
        "simply copy the deadline" rule.
        """
        remaining = self.remaining_time_budget()
        if self.deadline is not None:
            until_deadline = max(0.0, self.deadline - time.perf_counter())
            if remaining is None or until_deadline < remaining:
                remaining = until_deadline
        return remaining

    @contextmanager
    def timed_stat(self, stat: str) -> Iterator[None]:
        """Accumulate a block's wall time into ``stats.<stat>``.

        Stage code must not read :func:`time.perf_counter` directly
        (reprolint RPL002 confines wall clocks to this module, the
        engine and the bench harness); wrapping the block keeps stage
        timings flowing into :class:`~repro.mbb.result.SearchStats`
        through one audited clock.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            setattr(
                self.stats, stat, getattr(self.stats, stat) + time.perf_counter() - start
            )

    def enter_node(self, depth: int) -> None:
        """Record entry into a branch-and-bound node and enforce budgets."""
        self.stats.record_node(depth)
        self.checkpoint()
        if self.node_budget is not None and self.stats.nodes > self.node_budget:
            self.aborted = True
            raise SearchAborted(f"node budget {self.node_budget} exhausted")

    def record_leaf(self, depth: int) -> None:
        """Record that the node at ``depth`` was a leaf of the search tree."""
        self.stats.record_leaf(depth)

    def verify_incumbent(self, graph: BipartiteGraph) -> bool:
        """Check the incumbent against the graph (used by tests/examples)."""
        return self.best.is_valid_in(graph) and self.best.is_balanced
