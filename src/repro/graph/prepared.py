"""The :class:`PreparedGraph` artifact: one CSR snapshot for a whole solve.

The sparse framework (``hbvMBB``) derives everything it needs — the
``N_{<=2}`` structure, the total search order, the vertex-centred
subgraphs — from one immutable input graph, yet each of those artifacts
historically re-indexed the label-keyed :class:`~repro.graph.bipartite.
BipartiteGraph` from scratch.  A :class:`PreparedGraph` is the bundle
that breaks the cycle: the graph is indexed **once** into a
:class:`~repro.graph.csr.CSRBipartite` snapshot, and every derived
artifact is computed lazily from the flat arrays and memoised on the
bundle:

* the flat ``N_{<=2}`` adjacency (:attr:`PreparedGraph.n_le2`) the
  bidegeneracy peel consumes;
* the three total search orders (:meth:`PreparedGraph.search_order`),
  memoised per order name so a repeated solve of the same graph never
  re-peels;
* the position-space adjacency views (:meth:`PreparedGraph.order_view`)
  the CSR centred-subgraph generator walks;
* prepared snapshots of core-reduction residuals
  (:meth:`PreparedGraph.for_subgraph`), so S1's Lemma 4 reduction only
  triggers a re-index when it actually shrinks the graph.

The bundle is immutable in the same by-convention sense as
:class:`CSRBipartite` and :class:`~repro.graph.bitset.IndexedBitGraph`:
it does not track later mutations of the source graph.  Memoisation only
ever *adds* derived data, so sharing one bundle across repeated solves
(what :class:`repro.api.engine.PreparedGraphCache` does) is safe.

Identity for caching purposes is the **content fingerprint**
(:func:`graph_fingerprint`): a digest over the ``repr``-sorted vertex
sets and edge list, so two graphs built in different insertion orders
hash equal exactly when they are equal.  Fingerprints are a cache *key*,
not a proof — the engine cache re-verifies equality on every hit, so a
collision can cost a re-preparation but never leaks one graph's arrays
into another graph's solve.

Layering note: this module lives in :mod:`repro.graph` because the
bundle *is* graph substrate (every layer above consumes it), but the
order computations it memoises live in :mod:`repro.cores`; those are
imported lazily inside the memoising methods to keep the package import
graph acyclic.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.csr import CSRBipartite

VertexKey = Tuple[str, Vertex]


def ensure_prepared_for(
    prepared: "PreparedGraph", graph: BipartiteGraph
) -> None:
    """Raise unless ``prepared`` was built from (an equal of) ``graph``.

    Every API that accepts a ``prepared=`` snapshot alongside a graph
    calls this first: shape alone is not enough — a same-shape snapshot
    of a different graph would silently have *its* edges decomposed or
    searched instead of the argument graph's.  The identity fast path
    makes the check free on the internal flows, which always pass the
    snapshot's own graph object.
    """
    if prepared.graph is not graph and prepared.graph != graph:
        raise InvalidParameterError(
            "prepared snapshot was built from a different graph than the "
            "one passed alongside it"
        )

#: How many core-reduction residual snapshots one bundle memoises.  The
#: residual chain of a deterministic solve has very few distinct sizes
#: (the heuristic finds the same incumbent every time), so a handful of
#: slots amortises repeated solves without letting an adversarial caller
#: grow the bundle without bound.
_MAX_CHILDREN = 4


def graph_fingerprint(graph: BipartiteGraph) -> str:
    """Content fingerprint of a graph: equal content, equal digest.

    The digest covers both sorted vertex label sets and the full
    adjacency, every entry by ``repr``, so insertion order does not
    matter: two graphs that compare equal under ``==`` fingerprint
    equal.  Distinct graphs can only collide through ``repr`` collisions
    between distinct labels (or a pathological ``repr`` containing the
    joiner characters) — acceptable for a cache key because the engine
    cache re-checks ``==`` on every hit, so a collision costs a
    re-preparation, never a wrong answer.

    The whole payload is assembled as one string and hashed in a single
    ``blake2b`` update, so the cost is one ``repr`` per vertex plus
    C-level sorts, joins and hashing — cheap enough to run once per
    engine solve.
    """
    right_repr = {v: repr(v) for v in graph.right_vertices()}
    parts: List[str] = [f"L{graph.num_left}"]
    parts.extend(sorted(map(repr, graph.left_vertices())))
    parts.append(f"R{graph.num_right}")
    parts.extend(sorted(right_repr.values()))
    parts.append(f"E{graph.num_edges}")
    rows = [
        "{}>{}".format(
            repr(u),
            ",".join(sorted(right_repr[v] for v in graph.neighbors_left(u))),
        )
        for u in graph.left_vertices()
    ]
    rows.sort()
    parts.extend(rows)
    payload = "\n".join(parts)
    return hashlib.blake2b(
        payload.encode("utf-8", "backslashreplace"), digest_size=16
    ).hexdigest()


class PreparedGraph:
    """Immutable once-indexed bundle of a graph's flat solve artifacts."""

    __slots__ = (
        "graph",
        "csr",
        "labels",
        "_fingerprint",
        "_le2",
        "_orders",
        "_views",
        "_bicore",
        "_children",
    )

    def __init__(self, graph: BipartiteGraph, csr: CSRBipartite) -> None:
        self.graph = graph
        self.csr = csr
        #: Label of every dense id (the ``(side, label)`` key minus the
        #: side marker): the id→label boundary map of the CSR subgraph
        #: generator, precomputed so the hot loop never indexes tuples.
        self.labels: List[Vertex] = [key[1] for key in csr.keys]
        self._fingerprint: Optional[str] = None
        self._le2: Optional[Tuple[List[int], List[int]]] = None
        self._orders: Dict[str, List[VertexKey]] = {}
        self._views: Dict[str, "OrderView"] = {}
        self._bicore: Optional[
            Tuple[Dict[VertexKey, int], List[VertexKey]]
        ] = None
        self._children: Dict[Tuple[int, int, int], "PreparedGraph"] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def prepare(cls, graph: BipartiteGraph) -> "PreparedGraph":
        """Index ``graph`` once and return the prepared bundle."""
        return cls(graph, CSRBipartite.from_bipartite(graph))

    # ------------------------------------------------------------------
    # memoised derived artifacts
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the source graph (lazy, cached)."""
        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    @property
    def n_le2(self) -> Tuple[List[int], List[int]]:
        """The flat ``N_{<=2}`` adjacency ``(indptr, indices)`` (cached)."""
        if self._le2 is None:
            from repro.cores.two_hop import n_le2_flat

            self._le2 = n_le2_flat(self.csr)
        return self._le2

    def bicore_decomposition(
        self,
    ) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
        """Bucket-peel bicore numbers and peel order (cached).

        Runs the default flat engine of :mod:`repro.cores.bicore` on this
        bundle's CSR and ``N_{<=2}`` arrays — no re-indexing — and
        memoises the result, so every later consumer (the bidegeneracy
        order, repeated solves) gets it for free.  The returned
        containers are the memoised objects: treat them as immutable
        (the public :func:`repro.cores.bicore.bicore_decomposition`
        wrapper hands out copies).
        """
        if self._bicore is None:
            from repro.cores.bicore import flat_bicore_decomposition

            self._bicore = flat_bicore_decomposition(self)
        return self._bicore

    def search_order(self, order: str) -> List[VertexKey]:
        """The requested total search order (memoised per order name).

        Accepts the same names as :func:`repro.cores.orders.search_order`
        and produces identical orders: the degree order falls out of the
        CSR id order directly (ids *are* the ``(side, repr(label))``
        tie-break), the degeneracy order delegates to the label-keyed
        peel, and the bidegeneracy order reuses
        :meth:`bicore_decomposition`.

        The returned list is the memoised object — treat it as immutable
        (mutating it would corrupt every later solve of this graph); its
        identity is also what keys the :meth:`order_view` memoisation.
        The public :func:`repro.cores.orders.search_order` wrapper hands
        out copies instead.
        """
        cached = self._orders.get(order)
        if cached is None:
            cached = self._compute_order(order)
            self._orders[order] = cached
        return cached

    def _compute_order(self, order: str) -> List[VertexKey]:
        from repro.cores.orders import (
            ORDER_BIDEGENERACY,
            ORDER_DEGENERACY,
            ORDER_DEGREE,
            search_order,
        )

        if order == ORDER_DEGREE:
            # Dense ids are assigned left side first, ``repr``-sorted per
            # side, so sorting ids by ``(-degree, id)`` is exactly the
            # label-keyed ``(-degree, side, repr(label))`` key.
            csr = self.csr
            ids = sorted(range(csr.num_vertices), key=lambda i: (-csr.degree(i), i))
            keys = csr.keys
            return [keys[i] for i in ids]
        if order == ORDER_BIDEGENERACY:
            return list(self.bicore_decomposition()[1])
        if order == ORDER_DEGENERACY:
            return search_order(self.graph, order)
        # Unknown names fall through to the canonical validator so the
        # error message stays in one place.
        return search_order(self.graph, order)

    def order_view(self, order: List[VertexKey]) -> "OrderView":
        """The position-space adjacency view for a total order.

        When ``order`` is (the exact list object of) one of this bundle's
        memoised :meth:`search_order` results, the view is memoised too —
        which is how a repeated solve of one graph generates its centred
        subgraphs without rebuilding anything.  Arbitrary order lists get
        a fresh view.
        """
        for name, cached in self._orders.items():
            if cached is order:
                view = self._views.get(name)
                if view is None:
                    view = OrderView(self, order)
                    self._views[name] = view
                return view
        return OrderView(self, order)

    # ------------------------------------------------------------------
    # residual snapshots
    # ------------------------------------------------------------------
    def for_subgraph(self, residual: BipartiteGraph) -> "PreparedGraph":
        """A prepared snapshot for a reduction residual of this graph.

        Returns ``self`` when ``residual`` has this graph's exact shape
        (the Lemma 4 reduction removed nothing — induced subgraphs of one
        graph are determined by their vertex sets, so equal counts mean
        equal content).  Otherwise the residual's own snapshot is
        prepared and memoised, keyed by its shape: the ``k``-cores of one
        graph are nested, so within one reduction chain the shape
        identifies the residual — and a full equality check guards the
        lookup anyway, because this bundle may outlive a single solve in
        the engine cache.
        """
        shape = (residual.num_left, residual.num_right, residual.num_edges)
        if shape == (
            self.graph.num_left,
            self.graph.num_right,
            self.graph.num_edges,
        ):
            return self
        child = self._children.get(shape)
        if child is not None and child.graph == residual:
            return child
        child = PreparedGraph.prepare(residual)
        if len(self._children) >= _MAX_CHILDREN:
            self._children.pop(next(iter(self._children)))
        self._children[shape] = child
        return child

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreparedGraph({self.csr!r})"


class OrderView:
    """A prepared snapshot re-indexed along one total search order.

    Everything is in *position space*: vertex ``p`` is the order's
    ``p``-th vertex, and ``adjacency[p]`` holds the positions of its
    neighbours **sorted ascending**.  That sort is the whole trick: the
    neighbours appearing *after* position ``p`` — the only ones
    vertex-centred subgraph generation ever looks at — are a contiguous
    tail located by one binary search, so the generator touches later
    vertices only instead of filtering every neighbour with a comparison
    (on average half the neighbourhood volume, with no per-element test).

    Building a view costs one pass over the adjacency plus per-row sorts
    (``O(|E| log dmax)``); :meth:`PreparedGraph.order_view` memoises it
    per order name, so one build serves every solve of the graph.
    """

    __slots__ = (
        "prepared",
        "order_ids",
        "positions",
        "adjacency",
        "label_rows",
        "is_left",
        "labels",
    )

    def __init__(self, prepared: "PreparedGraph", order: List[VertexKey]) -> None:
        csr = prepared.csr
        indptr = csr.indptr
        indices = csr.indices
        self.prepared = prepared
        self.order_ids, self.positions = positions_of(csr, order)
        positions = self.positions
        self.adjacency: List[List[int]] = [
            sorted(
                positions[neighbour]
                for neighbour in indices[indptr[vertex] : indptr[vertex + 1]]
            )
            for vertex in self.order_ids
        ]
        num_left = csr.num_left
        self.is_left: List[bool] = [
            vertex < num_left for vertex in self.order_ids
        ]
        #: Label of the vertex at each position — the id→label boundary
        #: map in position space, so member-set construction is one list
        #: index per member.
        self.labels: List[Vertex] = [
            prepared.labels[vertex] for vertex in self.order_ids
        ]
        labels = self.labels
        #: Each adjacency row translated to labels, element-aligned with
        #: :attr:`adjacency`: a later-tail of labels is then one slice
        #: that feeds ``set.update`` directly — member sets build in C
        #: with no per-element mapping at all.
        self.label_rows: List[List[Vertex]] = [
            [labels[p] for p in row] for row in self.adjacency
        ]

    def __len__(self) -> int:
        return len(self.order_ids)


def positions_of(
    csr: CSRBipartite, order: List[VertexKey]
) -> Tuple[List[int], List[int]]:
    """Map a key-space total order onto ``(order_ids, positions)`` arrays.

    ``order`` must be a permutation of the snapshot's vertex keys (the
    bridging stage validates this before generating subgraphs); a foreign
    key raises ``KeyError`` exactly like the label-keyed position maps.
    """
    index = csr.index_of
    order_ids = [index(key) for key in order]
    positions = [0] * len(order_ids)
    for position, vertex in enumerate(order_ids):
        positions[vertex] = position
    return order_ids, positions
