"""Tests for the brute-force oracle itself (checked against closed forms)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    grid_union_of_bicliques,
    star_bipartite,
)
from repro.baselines.brute_force import brute_force_mbb, brute_force_side_size


class TestBruteForce:
    def test_empty_graph(self):
        assert brute_force_mbb(BipartiteGraph()).side_size == 0

    def test_graph_without_edges(self):
        graph = BipartiteGraph(left=[1, 2], right=[3, 4])
        assert brute_force_side_size(graph) == 0

    @pytest.mark.parametrize("n_left,n_right", [(1, 1), (2, 5), (4, 4), (6, 3)])
    def test_complete_bipartite_closed_form(self, n_left, n_right):
        graph = complete_bipartite(n_left, n_right)
        assert brute_force_side_size(graph) == min(n_left, n_right)

    @pytest.mark.parametrize("n", range(0, 8))
    def test_crown_graph_closed_form(self, n):
        assert brute_force_side_size(crown_graph(n)) == n // 2

    def test_star_graph(self):
        assert brute_force_side_size(star_bipartite(7)) == 1

    def test_union_of_blocks(self):
        assert brute_force_side_size(grid_union_of_bicliques([3, 5, 2])) == 5

    def test_result_is_valid_biclique(self):
        graph = grid_union_of_bicliques([3, 2])
        result = brute_force_mbb(graph)
        assert result.is_valid_in(graph)
        assert result.is_balanced

    def test_enumerated_side_cap(self):
        graph = complete_bipartite(30, 2)
        # The smaller side (2) is enumerated, so the cap is not hit.
        assert brute_force_side_size(graph) == 2
        with pytest.raises(InvalidParameterError):
            brute_force_mbb(complete_bipartite(30, 30), max_side=10)
