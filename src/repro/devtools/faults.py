"""Deterministic fault injection for chaos-testing the engine's pool layer.

``MBBEngine.solve_many`` promises per-request error isolation, bounded
crash recovery and watchdog-bounded hangs — promises that only count if
they are *provable*, and timing-based chaos tests (kill a random worker,
hope the race lands) prove nothing reproducibly.  This module gives the
test suite named **injection points** compiled into the engine's fault
boundaries:

``worker.solve``
    Inside the worker fault boundary, after the request is decoded and
    before the solve runs.  A ``raise`` fault here exercises per-request
    error reports; an ``exit`` fault simulates a SIGKILL/OOM worker
    death (``BrokenProcessPool`` on the engine side).
``worker.hang``
    Same boundary, polled before ``worker.solve``.  A ``hang`` fault
    sleeps for a bounded number of seconds — long enough to trip the
    engine watchdog, short enough that an escaped hang cannot wedge the
    test suite.
``shm.attach``
    Inside :func:`repro.api.engine._attach_prepared_shm`, keyed by the
    segment name.  ``raise`` forces the attach to fail (exercising the
    shm → JSON re-prepare degradation); ``corrupt`` damages a byte of
    the named segment (idempotently, so concurrent workers cannot undo
    each other) and the format/fingerprint verification itself rejects
    it.
``shm.export``
    Parent-side, in :meth:`MBBEngine._shm_handle_for`, keyed by the
    graph fingerprint.  ``raise`` forces the publish step to fail, which
    must degrade to the plain JSON submit path.

Every point is **inert in production**: :func:`hit` is two dict lookups
when nothing is armed.  Tests arm faults either in-process via
:func:`arm`/:class:`FaultPlan` (a context manager) or across the pool
boundary via the :envvar:`REPRO_FAULTS` environment variable, whose spec
string is what :meth:`FaultPlan.to_env` prints.  Hit counters are
per-process, and specs can be matched on the hit key (the request tag
for ``worker.*`` points), so "the 2nd solve of the request tagged
``g3``, in a worker process, exits hard" is expressible independent of
pool scheduling — the crash lands on the same request every run.

Firing is scoped: ``scope="worker"`` specs only fire inside a process
that has a parent (``multiprocessing.parent_process() is not None``), so
an armed ``exit``/``hang`` fault cannot take down the test runner when
the engine runs a request in-process — the serial degradation paths, or
a poison re-run under ``RetryPolicy(in_process_fallback=True)``.

reprolint rule RPL009 pins the discipline that injection points stay
confined to this module and the engine's fault boundaries — scattering
``hit()`` calls through kernel code would turn a test harness into a
production liability.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InvalidParameterError

#: Environment variable carrying a fault spec across the pool boundary.
ENV_VAR = "REPRO_FAULTS"

#: ``FaultSpec.action`` values.
ACTION_RAISE = "raise"
ACTION_EXIT = "exit"
ACTION_HANG = "hang"
ACTION_CORRUPT = "corrupt"

_ACTIONS = (ACTION_RAISE, ACTION_EXIT, ACTION_HANG, ACTION_CORRUPT)

#: ``FaultSpec.scope`` values: fire anywhere, or only in pool workers.
SCOPE_ANY = "any"
SCOPE_WORKER = "worker"

_SCOPES = (SCOPE_ANY, SCOPE_WORKER)

#: Exit status used by ``exit`` faults (distinctive in pool tracebacks).
EXIT_STATUS = 87

#: Hard ceiling on ``hang`` sleeps: an escaped hang fault must never
#: wedge a test run for longer than a watchdog-scale pause.
MAX_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """Raised by an armed ``raise`` fault at its injection point."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it fires, what it does, and when.

    ``nth``/``times`` select *which* hits fire: the spec triggers on the
    ``nth`` matching hit (1-based, counted per process) and the
    ``times - 1`` hits after it.  ``match`` restricts matching hits to
    those whose key contains the substring — for ``worker.*`` points the
    key is the request tag, so a fault follows its request across
    retries and pool rebuilds instead of following scheduling accidents.
    """

    point: str
    action: str = ACTION_RAISE
    nth: int = 1
    times: int = 1
    #: Action argument: ``hang`` seconds (capped) or ``corrupt`` offset.
    arg: float = 0.0
    match: Optional[str] = None
    scope: str = SCOPE_ANY

    def __post_init__(self) -> None:
        if not self.point:
            raise InvalidParameterError("fault spec requires a point name")
        if self.action not in _ACTIONS:
            raise InvalidParameterError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.scope not in _SCOPES:
            raise InvalidParameterError(
                f"unknown fault scope {self.scope!r}; expected one of {_SCOPES}"
            )
        if self.nth < 1 or self.times < 1:
            raise InvalidParameterError(
                f"fault nth/times must be >= 1, got nth={self.nth} times={self.times}"
            )

    def to_entry(self) -> str:
        """Compact ``key=value`` form for the env spec (inverse of
        :meth:`from_entry`); defaults are omitted."""
        parts = [f"point={self.point}"]
        for spec_field in fields(self):
            if spec_field.name == "point":
                continue
            value = getattr(self, spec_field.name)
            if value == spec_field.default:
                continue
            parts.append(f"{spec_field.name}={value}")
        return ",".join(parts)

    @classmethod
    def from_entry(cls, entry: str) -> "FaultSpec":
        """Parse one env-spec entry written by :meth:`to_entry`."""
        known = {spec_field.name: spec_field for spec_field in fields(cls)}
        data: Dict[str, object] = {}
        for item in entry.split(","):
            item = item.strip()
            if not item:
                continue
            name, _, raw = item.partition("=")
            if name not in known:
                raise InvalidParameterError(
                    f"unknown fault spec field {name!r} in {entry!r}; "
                    f"expected one of {sorted(known)}"
                )
            if name in ("nth", "times"):
                data[name] = int(raw)
            elif name == "arg":
                data[name] = float(raw)
            else:
                data[name] = raw
        if "point" not in data:
            raise InvalidParameterError(f"fault spec entry {entry!r} lacks point=")
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` armed together.

    Usable as a context manager (arms on entry, disarms on exit) for
    in-process tests, or serialised with :meth:`to_env` into
    :envvar:`REPRO_FAULTS` so pool workers — fork *or* spawn — arm the
    same plan with their own fresh hit counters.
    """

    specs: Tuple[FaultSpec, ...]

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    def to_env(self) -> str:
        """The :envvar:`REPRO_FAULTS` value arming this plan."""
        return ";".join(spec.to_entry() for spec in self.specs)

    @classmethod
    def from_env(cls, text: str) -> "FaultPlan":
        """Parse an env spec (``;``-separated :meth:`FaultSpec.to_entry`)."""
        specs = tuple(
            FaultSpec.from_entry(entry)
            for entry in text.split(";")
            if entry.strip()
        )
        return cls(specs=specs)

    def __enter__(self) -> "FaultPlan":
        arm(*self.specs)
        return self

    def __exit__(self, *exc_info: object) -> None:
        disarm()


#: In-process armed specs (tests in this process) and per-spec hit
#: counters.  Counters key on the spec identity, not the bare point, so
#: two specs watching one point count independently and deterministically.
_ARMED: List[FaultSpec] = []
_HITS: Dict[Tuple[object, ...], int] = {}

#: Memoised parse of the env spec, keyed by the exact string.
_ENV_CACHE: Optional[Tuple[str, Tuple[FaultSpec, ...]]] = None


def arm(*specs: FaultSpec) -> None:
    """Arm ``specs`` in this process and reset the hit counters."""
    _ARMED.clear()
    _ARMED.extend(specs)
    _HITS.clear()


def disarm() -> None:
    """Disarm every in-process spec and reset the hit counters."""
    _ARMED.clear()
    _HITS.clear()


def armed() -> Tuple[FaultSpec, ...]:
    """The specs currently armed in this process (env specs excluded)."""
    return tuple(_ARMED)


def _env_specs() -> Tuple[FaultSpec, ...]:
    global _ENV_CACHE
    text = os.environ.get(ENV_VAR, "")
    if not text:
        return ()
    if _ENV_CACHE is not None and _ENV_CACHE[0] == text:
        return _ENV_CACHE[1]
    specs = FaultPlan.from_env(text).specs
    _ENV_CACHE = (text, specs)
    return specs


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def hit(point: str, *, key: str = "") -> None:
    """Poll the injection point ``point``; a no-op unless a fault is armed.

    ``key`` identifies the specific hit (request tag, segment name) for
    ``match`` filtering.  Counters increment per matching spec, so
    ``nth`` means "the nth time *this spec's* filter matched in this
    process" — deterministic under retries and pool scheduling.
    """
    if not _ARMED and ENV_VAR not in os.environ:
        return
    for spec in (*_ARMED, *_env_specs()):
        if spec.point != point:
            continue
        if spec.match is not None and spec.match not in key:
            continue
        if spec.scope == SCOPE_WORKER and not _in_worker():
            continue
        counter = (
            spec.point,
            spec.action,
            spec.nth,
            spec.times,
            spec.arg,
            spec.match,
            spec.scope,
        )
        count = _HITS.get(counter, 0) + 1
        _HITS[counter] = count
        if spec.nth <= count < spec.nth + spec.times:
            _fire(spec, point, key)


def _fire(spec: FaultSpec, point: str, key: str) -> None:
    where = f"{point}" + (f" ({key})" if key else "")
    if spec.action == ACTION_RAISE:
        raise InjectedFault(f"injected fault at {where}")
    if spec.action == ACTION_EXIT:
        # Simulates SIGKILL/OOM: no exception, no cleanup, the pool sees
        # a dead worker.  os._exit skips atexit hooks by design — the
        # pid-guarded export registry means a worker owns no segments.
        os._exit(EXIT_STATUS)
    if spec.action == ACTION_HANG:
        time.sleep(min(max(spec.arg, 0.0), MAX_HANG_SECONDS))
        return
    if spec.action == ACTION_CORRUPT:
        _corrupt_segment(key, int(spec.arg))


def _corrupt_segment(name: str, offset: int) -> None:
    """Corrupt one byte of the named shared-memory segment.

    Used by ``corrupt`` faults at ``shm.attach`` (where the hit key is
    the segment name) to prove the attach-side format/fingerprint
    verification rejects a damaged segment instead of solving garbage.
    Destructive by design: every later attach of this segment must fall
    back too.  The write sets the byte's high bit rather than XOR-ing
    it, so the corruption is *idempotent*: two workers firing the same
    fault back to back leave the segment corrupted, where a second XOR
    would flip the byte back to valid mid-race.  Aim it at an ASCII
    header field (magic, fingerprint) where the high bit is never set.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:
        # A deliberate out-of-protocol segment write: this is the one
        # sanctioned exception to the RPL005 to_shm/from_shm confinement,
        # existing precisely to test that readers survive corruption.
        segment.buf[offset] |= 0x80  # reprolint: disable=RPL005
    finally:
        segment.close()
