"""Typed flat int buffers: the storage layer under every flat engine.

Every flat structure in the sparse pipeline — the CSR ``indptr``/
``indices`` arrays of :class:`~repro.graph.csr.CSRBipartite`, the
``N_{<=2}`` arrays of :func:`~repro.cores.two_hop.n_le2_flat`, the bucket
peel's working arrays, the position-space rows of
:class:`~repro.graph.prepared.OrderView` — is a flat sequence of small
ints.  This module is the one place that decides *how those ints are
stored*, behind three interchangeable backends:

* :data:`BACKEND_ARRAY` (the default): :class:`array.array` with typecode
  ``'q'`` (signed 64-bit).  Eight bytes per element in one contiguous
  allocation — roughly an order of magnitude smaller than a list of
  boxed ints — and, crucially, it exposes the buffer protocol, so a
  buffer ships to another process through
  :mod:`multiprocessing.shared_memory` as raw bytes and attaches back as
  a **zero-copy** ``memoryview`` cast (no per-element conversion in
  either direction).
* :data:`BACKEND_NUMPY`: ``numpy.int64`` arrays when numpy is importable.
  Same memory layout and zero-copy attach (``numpy.frombuffer``), plus
  vectorised consumers can operate on the buffers directly.  Entirely
  optional — nothing in the library requires numpy.
* :data:`BACKEND_LIST`: plain Python lists, the no-deps fallback and the
  historical representation.  Pure-Python index loops are fastest on
  lists (typed containers box a fresh ``int`` per ``__getitem__``), so
  this backend remains selectable for latency-critical single-process
  runs; it cannot attach zero-copy, so shared-memory consumers fall back
  to a one-time copy.

The backend is selected per process via the ``REPRO_BUFFER_BACKEND``
environment variable (or :func:`set_default_backend`), and every backend
is property-tested to produce byte-identical peel orders, ``N_{<=2}``
arrays, subgraph streams and solve results.  Consumers never switch on
the backend: they index, slice and iterate the returned containers, and
take a :func:`buffer_view` once per hot loop so slicing is zero-copy
wherever the backend allows it.

A buffer is immutable once published (the same contract as the
snapshots that own them — RPL005); the only sanctioned mutable uses are
function-local working arrays built with :func:`mutable_int_buffer`.
Shared-memory segments are written only by
:meth:`~repro.graph.prepared.PreparedGraph.to_shm` and read only by
:meth:`~repro.graph.prepared.PreparedGraph.from_shm`.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, List, Optional, Sequence, Union

from repro.exceptions import InvalidParameterError

#: Plain Python lists — the dependency-free fallback backend.
BACKEND_LIST = "list"
#: ``array('q')`` typed storage — the default backend.
BACKEND_ARRAY = "array"
#: ``numpy.int64`` arrays — optional, only when numpy is importable.
BACKEND_NUMPY = "numpy"

#: Environment variable selecting the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_BUFFER_BACKEND"

_TYPECODE = "q"
_ITEMSIZE = 8

#: Static type of a flat int buffer.  ``memoryview`` appears when a
#: typed buffer is attached zero-copy from a shared-memory segment (or
#: handed out by :func:`buffer_view`); numpy arrays are duck-typed.
IntBuffer = Union[List[int], "array[int]", memoryview, Sequence[int]]

_numpy = None
_numpy_checked = False


def _numpy_module():
    """The numpy module, or ``None`` when it is not importable (cached)."""
    global _numpy, _numpy_checked
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
        _numpy_checked = True
    return _numpy


def available_backends() -> tuple:
    """Backends usable in this interpreter, default first."""
    backends = [BACKEND_ARRAY, BACKEND_LIST]
    if _numpy_module() is not None:
        backends.append(BACKEND_NUMPY)
    return tuple(backends)


_DEFAULT_BACKEND: Optional[str] = None


def _validate_backend(backend: str) -> str:
    if backend not in (BACKEND_LIST, BACKEND_ARRAY, BACKEND_NUMPY):
        raise InvalidParameterError(
            f"unknown buffer backend {backend!r}; expected one of "
            f"{(BACKEND_ARRAY, BACKEND_LIST, BACKEND_NUMPY)}"
        )
    if backend == BACKEND_NUMPY and _numpy_module() is None:
        raise InvalidParameterError(
            "buffer backend 'numpy' requested but numpy is not importable"
        )
    return backend


def default_backend() -> str:
    """The process-wide default backend.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_BUFFER_BACKEND`` environment variable, then
    :data:`BACKEND_ARRAY`.  The environment variable is re-read on every
    call so a test (or a CI leg forcing the pure-Python fallback) can
    flip it without importing anything.
    """
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        return _validate_backend(env)
    return BACKEND_ARRAY


def set_default_backend(backend: Optional[str]) -> None:
    """Override the default backend (``None`` restores env-var resolution)."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = None if backend is None else _validate_backend(backend)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _is_typed(values: object) -> bool:
    """True for containers already in a typed flat layout (pass-through)."""
    if isinstance(values, array) and values.typecode == _TYPECODE:
        return True
    if isinstance(values, memoryview):
        return True
    numpy = _numpy_module()
    return numpy is not None and isinstance(values, numpy.ndarray)


def freeze_buffer(values: Iterable[int], backend: Optional[str] = None) -> IntBuffer:
    """Canonicalise freshly built int data into the backend's container.

    Typed containers (``array('q')``, ``memoryview``, numpy arrays) pass
    through untouched — they are already flat, and degrading a zero-copy
    shared-memory view back to a list would silently re-copy the data the
    caller went out of its way to share.  Lists and other iterables are
    converted per the selected backend (for :data:`BACKEND_LIST` a list
    input is returned as-is).
    """
    if _is_typed(values):
        return values
    backend = _validate_backend(backend or default_backend())
    if backend == BACKEND_LIST:
        return values if isinstance(values, list) else list(values)
    if backend == BACKEND_ARRAY:
        return array(_TYPECODE, values)
    return _numpy_module().array(
        values if isinstance(values, list) else list(values), dtype="int64"
    )


def mutable_int_buffer(
    values: Iterable[int], backend: Optional[str] = None
) -> IntBuffer:
    """A freshly owned, mutable int buffer (for function-local working arrays).

    Unlike :func:`freeze_buffer` this never returns a ``memoryview`` (a
    shared view may be read-only, and mutating one would write through to
    shared state): the result is always a new list / ``array('q')`` /
    numpy array the caller owns outright.
    """
    backend = _validate_backend(backend or default_backend())
    if backend == BACKEND_LIST:
        return list(values)
    if backend == BACKEND_ARRAY:
        return array(_TYPECODE, values)
    numpy = _numpy_module()
    if isinstance(values, numpy.ndarray):
        return values.astype("int64")
    return numpy.array(list(values), dtype="int64")


# ----------------------------------------------------------------------
# views and conversions
# ----------------------------------------------------------------------
def buffer_view(buf: IntBuffer) -> IntBuffer:
    """A slice-cheap view of ``buf`` for hot loops.

    For the typed backends the result is a ``memoryview`` (or the numpy
    array itself), whose slices are zero-copy windows into the same
    memory; for the list backend it is the list itself (slices copy —
    the documented fallback semantics).  Taken once per hot function so
    the per-call cost is one attribute lookup, not a cast.
    """
    if isinstance(buf, array):
        return memoryview(buf)
    return buf


def buffer_backend(buf: IntBuffer) -> str:
    """Which backend family a buffer belongs to (views count as 'array')."""
    if isinstance(buf, list):
        return BACKEND_LIST
    if isinstance(buf, (array, memoryview)):
        return BACKEND_ARRAY
    numpy = _numpy_module()
    if numpy is not None and isinstance(buf, numpy.ndarray):
        return BACKEND_NUMPY
    raise InvalidParameterError(f"not an int buffer: {type(buf).__name__}")


def as_int_list(buf: IntBuffer) -> List[int]:
    """The buffer's contents as a plain list of Python ints."""
    if isinstance(buf, list):
        return list(buf)
    if isinstance(buf, (array, memoryview)):
        return buf.tolist()
    numpy = _numpy_module()
    if numpy is not None and isinstance(buf, numpy.ndarray):
        return buf.tolist()
    return [int(value) for value in buf]


def buffer_nbytes(buf: IntBuffer) -> int:
    """Payload size of the buffer in its wire form (8 bytes per element)."""
    return len(buf) * _ITEMSIZE


def buffer_to_bytes(buf: IntBuffer) -> bytes:
    """The buffer as native-endian signed 64-bit raw bytes (one copy)."""
    if isinstance(buf, array):
        return buf.tobytes()
    if isinstance(buf, memoryview):
        return bytes(buf)
    numpy = _numpy_module()
    if numpy is not None and isinstance(buf, numpy.ndarray):
        return buf.astype("int64", copy=False).tobytes()
    return array(_TYPECODE, buf).tobytes()


def ints_from_buffer(
    raw: memoryview, backend: Optional[str] = None
) -> IntBuffer:
    """Interpret raw int64 bytes as an int buffer, zero-copy where possible.

    For the ``array`` backend the result is ``raw.cast('q')`` — a typed
    ``memoryview`` over the *same* memory (this is the shared-memory
    attach path: no per-element conversion, no copy).  The numpy backend
    wraps the same memory with ``numpy.frombuffer``.  The list backend
    copies once into a plain list — the documented no-deps fallback.
    """
    backend = _validate_backend(backend or default_backend())
    cast = raw.cast(_TYPECODE)
    if backend == BACKEND_ARRAY:
        return cast
    if backend == BACKEND_NUMPY:
        return _numpy_module().frombuffer(raw, dtype="int64")
    return cast.tolist()


def pickleable_buffer(buf: IntBuffer) -> IntBuffer:
    """A pickle-safe equivalent of ``buf``.

    ``memoryview`` objects (zero-copy shared-memory attachments) do not
    pickle; they are materialised as an owned ``array('q')`` copy.  Every
    other backend container pickles natively and passes through.
    """
    if isinstance(buf, memoryview):
        return array(_TYPECODE, buf.tolist())
    return buf


# ----------------------------------------------------------------------
# shared-memory plumbing
# ----------------------------------------------------------------------
def create_shared_memory(size: int):
    """Create an anonymous-named shared-memory segment of ``size`` bytes."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=size)


def attach_shared_memory(name: str):
    """Attach to an existing segment by name, without adopting ownership.

    The attaching side must *not* register the segment with the
    ``multiprocessing`` resource tracker: the creator owns unlinking, and
    a tracker entry in a pool worker would tear the segment down when
    that worker exits (the well-known ``SharedMemory`` attach side
    effect, fixed upstream only in 3.13's ``track=False``).  The
    unregister is best-effort — on platforms without the tracker the
    attach alone is already correct.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - tracker internals differ per platform
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return segment


def unlink_shared_memory(segment) -> None:
    """Unlink a segment this process created, balancing tracker accounting.

    ``SharedMemory.unlink`` sends the resource tracker an unregister for
    the name — but if this same process also *attached* to the segment
    (the handoff benchmark does; tests do), :func:`attach_shared_memory`
    already consumed the registration, and the tracker would log a
    ``KeyError`` at exit.  The tracker's cache is a set and its pipe is
    ordered, so re-registering immediately before the unlink is
    idempotent when accounting is balanced and heals it when it is not.
    An already-removed segment is not an error.
    """
    try:  # pragma: no cover - tracker internals differ per platform
        from multiprocessing import resource_tracker

        resource_tracker.register(segment._name, "shared_memory")
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


class SegmentKeepalive:
    """Keeps an attached segment mapped for as long as views of it live.

    A :class:`~repro.graph.prepared.PreparedGraph` built zero-copy from
    shared memory stores one of these alongside its buffers.  Teardown
    order between the bundle's views and the segment is not guaranteed:
    the bundle sits in reference cycles (order views point back at it),
    so it dies inside a garbage-collector pass, where the finalizers of
    the whole unreachable group run in **arbitrary order** — including
    ``SharedMemory.__del__``, which prints a ``BufferError`` whenever it
    runs while the bundle's views still export the mapping.

    The wrapper therefore takes the mapping over *at construction*: it
    adopts the ``mmap``, the root buffer and the file descriptor, and
    neuters the ``SharedMemory`` object on the spot so its finalizer is
    a guaranteed no-op no matter when it fires.  The wrapper's own
    finalizer releases what it can and otherwise leaves the mapping to
    the surviving views — an ``mmap`` unmaps itself once its last
    exported view dies.  Nothing here unlinks: attachers never own the
    segment name.
    """

    __slots__ = ("name", "_mmap", "_buf", "_fd")

    def __init__(self, segment) -> None:
        self.name: str = segment.name
        self._mmap = segment._mmap
        self._buf = segment._buf
        self._fd = getattr(segment, "_fd", -1)
        segment._mmap = None
        segment._buf = None
        if hasattr(segment, "_fd"):
            segment._fd = -1

    def __del__(self) -> None:
        if self._buf is not None:
            try:
                self._buf.release()
            except (BufferError, ValueError):  # pragma: no cover - order
                pass
        if self._mmap is not None:
            try:
                self._mmap.close()
            except (BufferError, ValueError):  # pragma: no cover - order
                pass
        if self._fd >= 0:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - already closed
                pass
