"""RPL004 — process-pool safety: submissions and hooks must pickle.

History: the engine runs batches over a :class:`ProcessPoolExecutor`
and the ROADMAP's parallel-S3 item fans a *single* solve's subgraphs
over the pool with a shared incumbent.  Anything that crosses the
process boundary must pickle: lambdas, closures and locally-defined
functions do not, and the failure surfaces as an opaque
``PicklingError`` inside a worker — far cheaper to catch statically.

Sub-checks:

* **pool callables** — the first argument of a ``.submit(...)`` call
  must not be a ``lambda`` or a function defined inside the enclosing
  function (both unpicklable); module-level callables pass.  Applies to
  every scanned file — tests that submit closures would hang the same
  pool.
* **pool payloads** — the remaining ``submit`` arguments must not
  contain ``lambda`` expressions; payloads are expected to be
  picklable/JSON-serialisable values (the engine ships requests as their
  JSON wire form for exactly this reason).
* **synchronized primitives in payloads** — a ``submit`` argument that
  constructs ``multiprocessing.Value`` / ``RawValue`` / ``Array`` /
  ``RawArray`` is flagged: synchronized objects cross the process
  boundary only through the pool *initializer*'s ``initargs``
  inheritance (how :class:`repro.api.parallel.IncumbentChannel`
  travels); pickling one in a payload raises ``RuntimeError: ...
  should only be shared between processes through inheritance`` at
  runtime, inside the pool.
* **cancel hooks** — in library code (``src/repro/``), assigning a
  ``lambda`` (or passing ``cancel_hook=lambda ...``) to
  :attr:`repro.mbb.context.SearchContext.cancel_hook` is flagged: a
  context carrying a closure can never be handed to a pool worker, which
  is exactly what parallel S3 needs to do.  Module-level callable
  *objects* (a class with ``__call__`` holding its state in attributes)
  are the sanctioned replacement and pass.  Tests may use lambdas — a
  test context never crosses a process boundary.
* **shm attach callables** — in library code, a function *nested inside
  another function* that attaches a shared-memory segment
  (``attach_shared_memory`` / ``from_shm``) is flagged.  Attach code is
  what pool workers run, and the shared-memory handoff exists precisely
  so it can be submitted across the process boundary; a nested attach
  helper cannot pickle by reference, so it can only ever run in the
  parent — a landmine for the next person wiring it into ``submit``.
  Methods (functions nested in a class body) are module-addressable and
  pass.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.devtools.lint.base import FileContext, Rule, register_rule
from repro.devtools.lint.findings import Finding


def _locally_defined_callables(function: ast.AST) -> Set[str]:
    """Names bound to nested functions/lambdas inside ``function``."""
    local: Set[str] = set()
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
    return local


def _contains_lambda(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Lambda) for sub in ast.walk(node))


#: Callee names that attach a shared-memory segment on the worker side.
SHM_ATTACH_CALLEES = frozenset({"attach_shared_memory", "from_shm"})

#: Constructors of synchronized/shared-ctypes objects: inheritance-only
#: transport (pool initializer ``initargs``), never submit payloads.
SYNCHRONIZED_CTORS = frozenset({"Value", "RawValue", "Array", "RawArray"})


def _synchronized_ctor(node: ast.AST) -> str | None:
    """Name of the first synchronized-primitive constructor called in
    ``node``'s expression tree, or ``None``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            callee = sub.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if name in SYNCHRONIZED_CTORS:
                return name
    return None


def _attaches_shared_memory(function: ast.AST) -> bool:
    """True when ``function``'s own body calls an shm attach callee."""
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if name in SHM_ATTACH_CALLEES:
                return True
    return False


@register_rule
class PoolSafetyRule(Rule):
    code = "RPL004"
    name = "pool-safety"
    description = (
        "pool submissions must be module-level callables with picklable "
        "payloads; library cancel hooks must not be lambdas/closures"
    )
    rationale = (
        "solve_many ships work to a ProcessPoolExecutor, and the parallel-S3 "
        "plan ships cancel hooks with it: anything submitted must pickle. A "
        "lambda or closure pickles on no platform, and the failure only "
        "surfaces at runtime inside the pool, far from the offending line. "
        "PR 6 replaced the engine's closure cancel hooks with the picklable "
        "module-level callables (_ParentCancelled/_AnyHook/_TargetSideReached) "
        "this rule now protects."
    )
    example = (
        "# bad: closures cannot cross a process boundary\n"
        "context.cancel_hook = lambda: parent.cancelled   # RPL004\n"
        "\n"
        "# good: a picklable module-level callable object\n"
        "context.cancel_hook = _ParentCancelled(parent_id)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_submissions(ctx)
        if ctx.is_library_code():
            yield from self._check_cancel_hooks(ctx)
            yield from self._check_attach_callables(ctx)

    # ------------------------------------------------------------------
    # pool submissions
    # ------------------------------------------------------------------
    def _check_submissions(self, ctx: FileContext) -> Iterator[Finding]:
        # Walk function by function so "locally defined" has the right
        # scope; module-level submit calls only see module-level names.
        functions: List[ast.AST] = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        seen: Set[int] = set()
        for function in functions:
            local = _locally_defined_callables(function)
            for node in ast.walk(function):
                if _is_submit_call(node) and id(node) not in seen:
                    seen.add(id(node))
                    yield from self._check_one_submit(ctx, node, local)
        for node in ast.walk(ctx.tree):
            if _is_submit_call(node) and id(node) not in seen:
                yield from self._check_one_submit(ctx, node, set())

    def _check_one_submit(
        self, ctx: FileContext, call: ast.Call, local: Set[str]
    ) -> Iterator[Finding]:
        if call.args:
            target = call.args[0]
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    ctx,
                    target,
                    "submit() given a lambda; pool callables must be "
                    "module-level functions so they pickle by reference",
                )
            elif isinstance(target, ast.Name) and target.id in local:
                yield self.finding(
                    ctx,
                    target,
                    "submit() given a locally-defined callable; pool "
                    "callables must be module-level functions so they pickle "
                    "by reference",
                )
        payloads = list(call.args[1:]) + [kw.value for kw in call.keywords]
        for payload in payloads:
            if _contains_lambda(payload):
                yield self.finding(
                    ctx,
                    payload,
                    "submit() payload contains a lambda; payloads must be "
                    "picklable (prefer the JSON wire form)",
                )
            ctor = _synchronized_ctor(payload)
            if ctor is not None:
                yield self.finding(
                    ctx,
                    payload,
                    f"submit() payload constructs multiprocessing.{ctor}; "
                    "synchronized primitives cross the process boundary only "
                    "through the pool initializer's initargs inheritance, "
                    "never a submit payload",
                )

    # ------------------------------------------------------------------
    # shm attach callables
    # ------------------------------------------------------------------
    def _check_attach_callables(self, ctx: FileContext) -> Iterator[Finding]:
        # Recurse with an explicit "inside a function" flag so methods
        # (functions nested in a ClassDef) stay module-addressable and
        # only genuinely function-local definitions are flagged.
        def visit(node: ast.AST, inside_function: bool) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_function and _attaches_shared_memory(child):
                        yield self.finding(
                            ctx,
                            child,
                            f"shm attach callable {child.name!r} is defined "
                            "inside another function; attach code is the pool "
                            "workers' entry path and must live at module "
                            "level so it pickles by reference",
                        )
                    yield from visit(child, True)
                else:
                    # ClassDef bodies keep the enclosing flag: methods of
                    # a module-level class are module-addressable.
                    yield from visit(child, inside_function)

        yield from visit(ctx.tree, False)
    def _check_cancel_hooks(self, ctx: FileContext) -> Iterator[Finding]:
        message = (
            "cancel_hook bound to a lambda/closure is unpicklable across "
            "process pools; use a module-level callable object"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "cancel_hook"
                    ):
                        yield self.finding(ctx, node.value, message)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "cancel_hook" and isinstance(
                        keyword.value, ast.Lambda
                    ):
                        yield self.finding(ctx, keyword.value, message)


def _is_submit_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "submit"
    )
