"""Wire-format tests: GraphSpec / SolveRequest / SolveReport round-trips."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.api import GraphSpec, MBBEngine, SolveReport, SolveRequest
from repro.exceptions import InvalidParameterError
from repro.graph.generators import random_bipartite
from repro.graph.io import write_edge_list


class TestGraphSpec:
    def test_dataset_spec_materialises(self):
        graph = GraphSpec.dataset("unicodelang").materialise()
        assert graph.num_left == 180 and graph.num_right == 420

    def test_path_spec_materialises(self, tmp_path):
        graph = random_bipartite(8, 8, 0.5, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        assert GraphSpec.from_path(str(path)).materialise() == graph

    def test_inline_spec_materialises(self):
        spec = GraphSpec.inline([(0, "x"), (0, "y"), (1, "x")])
        graph = spec.materialise()
        assert graph.num_left == 2 and graph.num_right == 2 and graph.num_edges == 3

    def test_random_spec_is_deterministic(self):
        spec = GraphSpec.random(10, 12, 0.4, seed=7)
        assert spec.materialise() == spec.materialise()
        assert spec.materialise() == random_bipartite(10, 12, 0.4, seed=7)

    def test_power_law_spec_materialises(self):
        graph = GraphSpec.power_law(30, 30, 2.0, seed=3).materialise()
        assert graph.num_left == 30 and graph.num_right == 30

    @pytest.mark.parametrize(
        "spec",
        [
            GraphSpec.dataset("unicodelang"),
            GraphSpec.from_path("/tmp/some/graph.txt"),
            GraphSpec.inline([(0, "x"), (1, "y")]),
            GraphSpec.random(5, 6, 0.5, seed=2),
            GraphSpec.power_law(7, 8, 1.5, seed=4),
        ],
    )
    def test_dict_round_trip(self, spec):
        assert GraphSpec.from_dict(spec.to_dict()) == spec
        # And through an actual JSON encode/decode.
        assert GraphSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_unknown_kind_raises_on_materialise(self):
        with pytest.raises(InvalidParameterError):
            GraphSpec(kind="carrier-pigeon").materialise()

    def test_unknown_field_raises(self):
        with pytest.raises(InvalidParameterError):
            GraphSpec.from_dict({"kind": "dataset", "name": "x", "nope": 1})

    def test_missing_parameters_raise(self):
        with pytest.raises(InvalidParameterError):
            GraphSpec(kind="random", n_left=3).materialise()


class TestSolveRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_",
        [
            SolveRequest(graph=GraphSpec.dataset("unicodelang")),
            SolveRequest(
                graph=GraphSpec.random(8, 8, 0.6, seed=1),
                backend="dense",
                kernel="sets",
                node_budget=500,
                time_budget=2.5,
                seed=11,
                tag="cell-3",
            ),
            SolveRequest(graph=GraphSpec.inline([(1, 2), (1, 3)]), backend="basic"),
        ],
    )
    def test_json_round_trip_is_lossless(self, request_):
        assert SolveRequest.from_json(request_.to_json()) == request_

    def test_none_fields_are_omitted_from_json(self):
        request = SolveRequest(graph=GraphSpec.dataset("unicodelang"))
        payload = json.loads(request.to_json())
        assert "node_budget" not in payload and "tag" not in payload

    def test_missing_graph_raises(self):
        with pytest.raises(InvalidParameterError):
            SolveRequest.from_dict({"backend": "dense"})

    def test_unknown_field_raises(self):
        with pytest.raises(InvalidParameterError):
            SolveRequest.from_dict(
                {"graph": {"kind": "dataset", "name": "x"}, "mystery": True}
            )


class TestSolveReportRoundTrip:
    def _report(self, **request_kwargs) -> SolveReport:
        request = SolveRequest(
            graph=GraphSpec.random(10, 10, 0.6, seed=5), **request_kwargs
        )
        return MBBEngine().solve(request)

    def test_json_round_trip_is_lossless(self):
        report = self._report(backend="dense")
        assert SolveReport.from_json(report.to_json()) == report

    def test_round_trip_through_generic_json(self):
        report = self._report(backend="sparse")
        clone = SolveReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone == report
        assert clone.biclique == report.biclique

    def test_report_carries_provenance(self):
        report = self._report()
        assert report.version == __version__
        assert report.backend in ("dense", "sparse")
        assert report.kernel == "bits"

    def test_report_reconstructs_result(self):
        report = self._report(backend="basic")
        result = report.to_result()
        assert result.side_size == report.side_size
        assert result.stats.nodes == report.stats["nodes"]
        graph = report.request.graph.materialise()
        assert result.biclique.is_valid_in(graph)

    def test_stats_survive_round_trip(self):
        report = self._report(backend="dense")
        clone = SolveReport.from_json(report.to_json())
        assert clone.stats == report.stats
        assert clone.to_result().stats == report.to_result().stats

    def test_report_carries_graph_shape(self):
        report = self._report(backend="dense")
        assert (report.num_left, report.num_right) == (10, 10)
        assert report.num_edges > 0
        assert SolveReport.from_json(report.to_json()).num_edges == report.num_edges

    def test_unknown_report_field_raises(self):
        report = self._report(backend="basic")
        payload = report.to_dict()
        payload["mystery"] = 1
        with pytest.raises(InvalidParameterError):
            SolveReport.from_dict(payload)

    def test_missing_request_raises(self):
        payload = self._report(backend="basic").to_dict()
        del payload["request"]
        with pytest.raises(InvalidParameterError):
            SolveReport.from_dict(payload)


class TestSweepRequests:
    def test_expands_cartesian_product_with_tags(self):
        from repro.api import sweep_requests

        requests = sweep_requests(
            ["unicodelang", "moreno-crime"],
            ["sparse", "mvb"],
            time_budget=2.5,
        )
        assert len(requests) == 4
        assert [request.tag for request in requests] == [
            "unicodelang:sparse",
            "unicodelang:mvb",
            "moreno-crime:sparse",
            "moreno-crime:mvb",
        ]
        assert all(request.graph.kind == "dataset" for request in requests)
        # The budget lands on the budget-capable backend only (mvb would
        # reject it at dispatch time).
        assert all(
            request.time_budget == 2.5
            for request in requests
            if request.backend == "sparse"
        )

    def test_requests_round_trip_through_json(self):
        from repro.api import sweep_requests

        requests = sweep_requests(["unicodelang"], ["sparse"], node_budget=100)
        clone = SolveRequest.from_json(requests[0].to_json())
        assert clone == requests[0]
        assert clone.node_budget == 100

    def test_unknown_dataset_rejected_up_front(self):
        from repro.api import sweep_requests

        with pytest.raises(InvalidParameterError):
            sweep_requests(["no-such-dataset"], ["sparse"])

    def test_unknown_backend_rejected_up_front(self):
        from repro.api import sweep_requests

        with pytest.raises(InvalidParameterError):
            sweep_requests(["unicodelang"], ["quantum"])

    def test_empty_axes_rejected(self):
        from repro.api import sweep_requests

        with pytest.raises(InvalidParameterError):
            sweep_requests([], ["sparse"])
        with pytest.raises(InvalidParameterError):
            sweep_requests(["unicodelang"], [])

    def test_budgets_omitted_for_budget_less_backends(self):
        from repro.api import sweep_requests

        # mvb rejects budgets at dispatch time; a mixed sweep must not
        # poison the batch, so only the sparse cell carries the budget.
        requests = sweep_requests(
            ["unicodelang"], ["sparse", "mvb"], time_budget=5.0, node_budget=10
        )
        by_backend = {request.backend: request for request in requests}
        assert by_backend["sparse"].time_budget == 5.0
        assert by_backend["sparse"].node_budget == 10
        assert by_backend["mvb"].time_budget is None
        assert by_backend["mvb"].node_budget is None
        # Every generated request must actually dispatch.
        reports = MBBEngine().solve_many(requests, parallel=False)
        assert [report.request.tag for report in reports] == [
            "unicodelang:sparse",
            "unicodelang:mvb",
        ]
