"""Benchmark regenerating Figure 6: density of vertex-centred subgraphs.

For tough dataset stand-ins, generate the vertex-centred subgraph family
with each total search order and report the average edge density of the
non-empty subgraphs.

Expected shape (matching the paper): the bidegeneracy order produces the
densest subgraphs — the quantity that makes the dense solver effective in
the verification stage — clearly ahead of the degree order.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.analysis.metrics import average_subgraph_density
from repro.bench.figure6 import format_figure6, run_figure6
from repro.cores.orders import ORDER_BIDEGENERACY
from repro.workloads.datasets import load_dataset

FIGURE_DATASETS = ("jester", "github", "actor-movie", "discogs-affiliation")


@pytest.mark.figure
@pytest.mark.parametrize("dataset", ("jester", "github"))
def test_subgraph_density_measurement(benchmark, dataset):
    """Time the density measurement (three families) on one dataset."""
    graph = load_dataset(dataset)
    densities = benchmark(lambda: average_subgraph_density(graph))
    assert 0.0 <= densities[ORDER_BIDEGENERACY] <= 1.0


@pytest.mark.figure
def test_report_figure6(benchmark, capsys):
    """Regenerate and print the Figure 6 series."""
    rows = benchmark.pedantic(lambda: run_figure6(FIGURE_DATASETS), rounds=1, iterations=1)
    # The paper's headline observation: bidegeneracy produces denser
    # vertex-centred subgraphs than the degree order on every dataset.
    assert all(row["bidegeneracy"] >= row["maxDeg"] for row in rows)
    with capsys.disabled():
        print("\n=== Figure 6 (stand-ins): average density of vertex-centred subgraphs ===")
        print(format_figure6(rows))
