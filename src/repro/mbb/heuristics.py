"""Greedy heuristics and the ``hMBB`` stage (Algorithm 5).

The sparse framework separates heuristics from exhaustive search: a cheap
but effective heuristic finds a large balanced biclique first, the graph is
shrunk with the core-based reduction of Lemma 4, and — when the incumbent
already matches the degeneracy bound of Lemma 5 — the search terminates
without any exhaustive stage at all (the "S1" rows of Table 5).

Two greedy seeds are provided, following the paper: the global maximum
*degree* and the maximum *core number*.  Both feed the same greedy
extension routine, which grows the lagging side of the biclique by the
candidate that preserves the most opposite-side candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.cores.core import core_numbers, degeneracy
from repro.mbb.context import SearchContext
from repro.mbb.reductions import core_reduce
from repro.mbb.result import Biclique

VertexKey = Tuple[str, Vertex]


def greedy_extend(
    graph: BipartiteGraph,
    seed_side: str,
    seed_vertex: Vertex,
) -> Biclique:
    """Greedily grow a balanced biclique around a seed vertex.

    Starting from ``A = {seed}`` the routine alternately extends the
    lagging side, always choosing the candidate that keeps the largest
    number of candidates alive on the other side.  This is the standard
    maximum-degree greedy rule the paper uses inside ``hMBB``; it runs in
    ``O(d^2)`` around the seed where ``d`` is the seed's degree, so seeding
    it from a handful of top vertices stays near-linear overall.
    """
    if seed_side == LEFT:
        a = {seed_vertex}
        b: set = set()
        cb = set(graph.neighbors_left(seed_vertex))
        ca: set = set()
        for v in cb:
            ca.update(graph.neighbors_right(v))
        ca.discard(seed_vertex)
    else:
        b = {seed_vertex}
        a = set()
        ca = set(graph.neighbors_right(seed_vertex))
        cb = set()
        for u in ca:
            cb.update(graph.neighbors_left(u))
        cb.discard(seed_vertex)

    while True:
        extend_left = len(a) <= len(b)
        if extend_left:
            candidates, others = ca, cb
        else:
            candidates, others = cb, ca
        if not candidates:
            # Cannot extend the lagging side any further; try the other side
            # only if it is the lagging one next iteration (it will not be),
            # so stop.
            break
        best_vertex = None
        best_kept = -1
        for vertex in candidates:
            if extend_left:
                kept = len(graph.neighbors_left(vertex) & others)
            else:
                kept = len(graph.neighbors_right(vertex) & others)
            if kept > best_kept:
                best_kept = kept
                best_vertex = vertex
        if best_vertex is None:
            break
        if extend_left:
            a.add(best_vertex)
            ca.discard(best_vertex)
            cb &= graph.neighbors_left(best_vertex)
        else:
            b.add(best_vertex)
            cb.discard(best_vertex)
            ca &= graph.neighbors_right(best_vertex)
    return Biclique.of(a, b).balanced()


def _top_vertices(
    graph: BipartiteGraph,
    score: Callable[[str, Vertex], float],
    top_r: int,
) -> Iterable[Tuple[str, Vertex]]:
    """The ``top_r`` vertices of the graph ranked by ``score`` (descending)."""
    keys = [(LEFT, u) for u in graph.left_vertices()]
    keys.extend((RIGHT, v) for v in graph.right_vertices())
    keys.sort(key=lambda key: (-score(*key), key[0], repr(key[1])))
    return keys[:top_r]


def degree_heuristic(graph: BipartiteGraph, *, top_r: int = 5) -> Biclique:
    """Maximum-degree seeded greedy balanced biclique (first half of hMBB)."""

    def score(side: str, label: Vertex) -> float:
        return graph.degree_left(label) if side == LEFT else graph.degree_right(label)

    best = Biclique.empty()
    for side, label in _top_vertices(graph, score, top_r):
        candidate = greedy_extend(graph, side, label)
        if candidate.side_size > best.side_size:
            best = candidate
    return best


def core_heuristic(
    graph: BipartiteGraph,
    *,
    top_r: int = 5,
    cores: Optional[Dict[VertexKey, int]] = None,
) -> Biclique:
    """Maximum-core-number seeded greedy balanced biclique (second half of hMBB)."""
    if cores is None:
        cores = core_numbers(graph)

    def score(side: str, label: Vertex) -> float:
        return cores.get((side, label), 0)

    best = Biclique.empty()
    for side, label in _top_vertices(graph, score, top_r):
        candidate = greedy_extend(graph, side, label)
        if candidate.side_size > best.side_size:
            best = candidate
    return best


@dataclass
class HMBBOutcome:
    """Result of the heuristic-and-reduction stage (Algorithm 5)."""

    best: Biclique
    reduced_graph: BipartiteGraph
    proven_optimal: bool

    @property
    def exhausted(self) -> bool:
        """True when the reduction removed the entire residual graph."""
        return self.reduced_graph.num_vertices == 0


def h_mbb(
    graph: BipartiteGraph,
    *,
    top_r: int = 5,
    context: Optional[SearchContext] = None,
) -> HMBBOutcome:
    """Algorithm 5: heuristics, Lemma 4 reductions and Lemma 5 early exit.

    Returns the best balanced biclique found, the residual graph after the
    core-based reductions, and whether the Lemma 5 condition already proves
    the incumbent optimal.

    Lemma 5 states that a balanced biclique with side size ``k`` forces
    degeneracy at least ``k``, so ``δ(G) <= |A*|`` certifies the incumbent
    ``(A*, B*)`` optimal.  Crucially the degeneracy must be taken on the
    graph *before* it is shrunk to the ``(best_side + 1)``-core: a nonempty
    ``(k + 1)``-core always has degeneracy at least ``k + 1``, so comparing
    the post-reduction degeneracy against ``best_side`` (as an earlier
    revision of this function did) can never succeed and the early exit was
    dead code.  With the pre-reduction comparison, S1 can terminate the
    whole search while the residual graph is still nonempty.
    """
    if context is None:
        context = SearchContext()

    # Degree-based heuristic; Lemma 5 check on the *input* graph.
    best = degree_heuristic(graph, top_r=top_r)
    context.offer_biclique(best)
    context.stats.heuristic_side = max(
        context.stats.heuristic_side, context.best_side
    )
    if context.best_side > 0 and degeneracy(graph) <= context.best_side:
        return HMBBOutcome(context.best, graph, True)
    reduced = core_reduce(graph, context.best_side)
    if reduced.num_vertices == 0:
        return HMBBOutcome(context.best, reduced, True)

    # Core-based heuristic on the reduced graph; Lemma 5 check against the
    # degeneracy of that (pre-second-reduction) graph, then reduce again.
    cores = core_numbers(reduced)
    improved = core_heuristic(reduced, top_r=top_r, cores=cores)
    if context.offer_biclique(improved):
        context.stats.heuristic_side = max(
            context.stats.heuristic_side, context.best_side
        )
        if max(cores.values(), default=0) <= context.best_side:
            return HMBBOutcome(context.best, reduced, True)
        reduced = core_reduce(reduced, context.best_side)
        if reduced.num_vertices == 0:
            return HMBBOutcome(context.best, reduced, True)

    return HMBBOutcome(context.best, reduced, False)
