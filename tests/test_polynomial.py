"""Tests for the polynomial-time solver on near-complete subgraphs."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    random_bipartite,
    random_near_complete_bipartite,
)
from repro.mbb.context import SearchContext
from repro.mbb.polynomial import (
    component_choices,
    is_polynomially_solvable,
    maximum_balanced_biclique_near_complete,
    missing_neighbors,
    solve_polynomial_case,
)
from repro.mbb.reductions import NodeState
from repro.baselines.brute_force import brute_force_mbb


def _full_state(graph: BipartiteGraph) -> NodeState:
    return NodeState(set(), set(), graph.left, graph.right)


class TestIsPolynomiallySolvable:
    def test_complete_graph_is_solvable(self):
        graph = complete_bipartite(4, 4)
        assert is_polynomially_solvable(graph, _full_state(graph))

    def test_crown_graph_is_solvable(self):
        graph = crown_graph(5)
        assert is_polynomially_solvable(graph, _full_state(graph))

    def test_sparse_graph_is_not(self):
        graph = random_bipartite(6, 6, 0.2, seed=1)
        assert not is_polynomially_solvable(graph, _full_state(graph))

    @pytest.mark.parametrize("seed", range(5))
    def test_near_complete_generator_is_always_solvable(self, seed):
        graph = random_near_complete_bipartite(7, 6, max_missing=2, seed=seed)
        assert is_polynomially_solvable(graph, _full_state(graph))


class TestMissingNeighbors:
    def test_complement_adjacency_restricted_to_candidates(self):
        graph = crown_graph(3)
        complement = missing_neighbors(graph, _full_state(graph))
        # The crown complement is a perfect matching: every vertex misses
        # exactly one neighbour.
        assert all(len(misses) == 1 for misses in complement.values())
        assert complement[(LEFT, 0)] == {(RIGHT, 0)}


class TestComponentChoices:
    def test_path_choices_are_independent_sets(self):
        # Path u0 - v0 - u1 in the complement: choices are {u0,u1}, {v0}, ...
        sequence = [(LEFT, 0), (RIGHT, 0), (LEFT, 1)]
        choices = component_choices(sequence, is_cycle=False)
        pairs = {(c.a, c.b) for c in choices}
        assert (2, 0) in pairs  # both left endpoints
        assert (0, 1) in pairs  # the middle right vertex alone
        assert all(c.a + c.b <= 2 for c in choices)

    def test_cycle_choices_exclude_adjacent_pairs(self):
        # 4-cycle in the complement: at most one vertex per complement edge.
        sequence = [(LEFT, 0), (RIGHT, 0), (LEFT, 1), (RIGHT, 1)]
        choices = component_choices(sequence, is_cycle=True)
        pairs = {(c.a, c.b) for c in choices}
        assert (2, 0) in pairs
        assert (0, 2) in pairs
        assert (2, 1) not in pairs and (1, 2) not in pairs

    def test_empty_sequence(self):
        choices = component_choices([], is_cycle=False)
        assert len(choices) == 1
        assert choices[0].a == 0 and choices[0].b == 0


class TestSolvePolynomialCase:
    @pytest.mark.parametrize("n", range(2, 9))
    def test_crown_graphs_have_half_n_optimum(self, n):
        graph = crown_graph(n)
        result = maximum_balanced_biclique_near_complete(graph)
        assert result.side_size == n // 2
        assert result.is_valid_in(graph)

    def test_complete_graph(self):
        graph = complete_bipartite(5, 3)
        result = maximum_balanced_biclique_near_complete(graph)
        assert result.side_size == 3

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_on_near_complete_graphs(self, seed):
        graph = random_near_complete_bipartite(7, 7, max_missing=2, seed=seed)
        expected = brute_force_mbb(graph).side_size
        result = maximum_balanced_biclique_near_complete(graph)
        assert result.side_size == expected
        assert result.is_valid_in(graph)
        assert result.is_balanced

    def test_rejects_graphs_outside_lemma3(self):
        graph = random_bipartite(8, 8, 0.3, seed=2)
        if not is_polynomially_solvable(graph, _full_state(graph)):
            with pytest.raises(ValueError):
                maximum_balanced_biclique_near_complete(graph)

    def test_returns_none_when_incumbent_already_better(self):
        graph = complete_bipartite(2, 2)
        context = SearchContext()
        context.offer([0, 1, 2], [0, 1, 2])  # incumbent side 3 (fictional)
        result = solve_polynomial_case(graph, _full_state(graph), context)
        assert result is None

    def test_respects_partial_result(self):
        # Partial result (A={0}, B={0}) with candidates forming a complete
        # 2x2 block on {1,2} x {1,2}: the extension reaches side 3.
        graph = complete_bipartite(3, 3)
        state = NodeState({0}, {0}, {1, 2}, {1, 2})
        context = SearchContext()
        result = solve_polynomial_case(graph, state, context)
        assert result is not None
        assert result.side_size == 3
