"""Tests for the adapted baselines adp1..adp4."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_bipartite, random_bipartite
from repro.baselines.adapted import ADAPTED_BASELINES, run_adapted_baseline
from repro.baselines.brute_force import brute_force_side_size


class TestAdaptedBaselines:
    def test_registry_matches_paper(self):
        assert set(ADAPTED_BASELINES) == {"adp1", "adp2", "adp3", "adp4"}
        assert ADAPTED_BASELINES["adp3"] == {"heuristic": "sbmnas", "engine": "fmbe"}

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError):
            run_adapted_baseline(BipartiteGraph(), "adp9")

    @pytest.mark.parametrize("name", sorted(ADAPTED_BASELINES))
    def test_exactness_on_random_graphs(self, name, random_graph_factory):
        for seed in range(6):
            graph = random_graph_factory(seed, max_side=8)
            result = run_adapted_baseline(graph, name, heuristic_iterations=200)
            assert result.side_size == brute_force_side_size(graph), (name, seed)

    @pytest.mark.parametrize("name", sorted(ADAPTED_BASELINES))
    def test_complete_graph_short_circuits_after_heuristic(self, name):
        graph = complete_bipartite(5, 5)
        result = run_adapted_baseline(graph, name, heuristic_iterations=300)
        assert result.side_size == 5
        assert result.optimal

    def test_budget_gives_best_effort(self):
        graph = random_bipartite(14, 14, 0.6, seed=2)
        result = run_adapted_baseline(
            graph, "adp2", heuristic_iterations=50, node_budget=3
        )
        assert result.biclique.is_valid_in(graph)
