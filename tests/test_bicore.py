"""Tests for bicore decomposition, bidegeneracy and the bidegeneracy order."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    path_bipartite,
    random_bipartite,
    star_bipartite,
)
from repro.cores.bicore import bicore_numbers, bidegeneracy, bidegeneracy_order
from repro.cores.two_hop import n_le2_neighbors, n_le2_sizes


class TestBicoreNumbers:
    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 4)
        numbers = bicore_numbers(graph)
        # Every vertex sees the whole graph within two hops: |N_<=2| = 6.
        assert all(value == 6 for value in numbers.values())

    def test_star_graph(self):
        graph = star_bipartite(5)
        numbers = bicore_numbers(graph)
        # The centre sees its 5 leaves; every leaf sees the centre plus the
        # other 4 leaves, so all |N_<=2| values are 5 and never drop below
        # the final peel value.
        assert numbers[(LEFT, 0)] == 5
        assert all(numbers[(RIGHT, v)] == 5 for v in range(5))

    def test_single_edge(self):
        graph = BipartiteGraph(edges=[(0, 0)])
        numbers = bicore_numbers(graph)
        assert numbers == {(LEFT, 0): 1, (RIGHT, 0): 1}

    def test_empty_graph(self):
        assert bicore_numbers(BipartiteGraph()) == {}

    @pytest.mark.parametrize("seed", range(6))
    def test_peeling_matches_exact_reference(self, seed):
        graph = random_bipartite(6, 6, 0.35, seed=seed)
        fast = bicore_numbers(graph)
        exact = bicore_numbers(graph, exact=True)
        # The peeling of Algorithm 7 (Lemma 10 tie-break) and the exact
        # recomputation agree on the bidegeneracy, the quantity the sparse
        # framework's complexity depends on.
        assert max(fast.values(), default=0) == max(exact.values(), default=0)

    @pytest.mark.parametrize("seed", range(4))
    def test_bicore_at_least_core_like_lower_bounds(self, seed):
        graph = random_bipartite(8, 8, 0.3, seed=seed)
        numbers = bicore_numbers(graph)
        sizes = n_le2_sizes(graph)
        for key, value in numbers.items():
            # A vertex's bicore number can never exceed its |N_<=2| in the
            # full graph, and is never negative.
            assert 0 <= value <= sizes[key]


class TestBidegeneracy:
    def test_monotone_under_edge_addition(self):
        graph = random_bipartite(8, 8, 0.2, seed=3)
        before = bidegeneracy(graph)
        denser = graph.copy()
        for u in range(4):
            for v in range(4):
                denser.add_edge(u, v)
        assert bidegeneracy(denser) >= before

    def test_path_bidegeneracy_small(self):
        assert bidegeneracy(path_bipartite(6)) <= 4

    def test_empty_graph(self):
        assert bidegeneracy(BipartiteGraph()) == 0

    def test_bidegeneracy_at_least_balanced_biclique_bound(self):
        # A planted K_{4,4} forces every planted vertex to have |N_<=2| >= 7
        # inside the block, so the bidegeneracy is at least 7.
        graph = complete_bipartite(4, 4)
        assert bidegeneracy(graph) == 7


class TestBidegeneracyOrder:
    @pytest.mark.parametrize("seed", range(5))
    def test_is_permutation(self, seed):
        graph = random_bipartite(7, 7, 0.35, seed=seed)
        order = bidegeneracy_order(graph)
        assert len(order) == graph.num_vertices
        assert len(set(order)) == graph.num_vertices

    @pytest.mark.parametrize("seed", range(5))
    def test_suffix_n_le2_bounded_by_bidegeneracy(self, seed):
        """Definition 5: each vertex minimises |N_<=2| in its suffix subgraph."""
        graph = random_bipartite(7, 7, 0.35, seed=seed)
        order = bidegeneracy_order(graph)
        delta = bidegeneracy(graph)
        for index, key in enumerate(order):
            suffix = order[index:]
            left = [label for side, label in suffix if side == LEFT]
            right = [label for side, label in suffix if side == RIGHT]
            sub = graph.induced_subgraph(left, right)
            side, label = key
            if side == LEFT and not sub.has_left_vertex(label):
                continue
            if side == RIGHT and not sub.has_right_vertex(label):
                continue
            size = len(n_le2_neighbors(sub, side, label))
            assert size <= delta
