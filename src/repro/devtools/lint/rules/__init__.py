"""The shipped rule set.

Importing this package registers every built-in rule with
:data:`repro.devtools.lint.base.RULE_REGISTRY`.  RPL001–RPL004 are
per-file rules; RPL005–RPL009 are project rules driven by the whole-repo
model in :mod:`repro.devtools.lint.project` (import graph, symbol
tables, call graph):

========  =======================  ===========================================
code      name                     invariant
========  =======================  ===========================================
RPL001    budget-checkpoint        no hand-rolled budget/deadline math in the
                                   S1/S2/S3 search modules — poll
                                   ``SearchContext.checkpoint()``
RPL002    determinism              no wall clocks or unseeded ``random`` in
                                   library code; no set-order-dependent
                                   accumulation in kernel modules
RPL003    kernel-parity            every ``kernel="bits"`` dispatch keeps a
                                   reachable ``"sets"`` ablation counterpart
RPL004    pool-safety              pool submissions and ``cancel_hook``
                                   assignments stay picklable
RPL005    shared-state             no post-construction mutation of
                                   ``PreparedGraph``/``CSRBipartite`` or
                                   their flat arrays outside their defining
                                   modules
RPL006    checkpoint-reachability  every loop-bearing search entry point in
                                   ``mbb/`` reaches
                                   ``SearchContext.checkpoint()`` through the
                                   call graph
RPL007    layering                 graph/cores/mbb never import
                                   api/cli/bench; no module-level import
                                   cycles
RPL008    wire-format              dataclass fields covered by their
                                   ``to_dict``/``from_dict`` round-trip pair
RPL009    fault-boundary           pool-submitted callables reach an
                                   ``except Exception`` fault boundary through
                                   the call graph; ``faults.hit()`` injection
                                   points only in designated modules
========  =======================  ===========================================

Each rule encodes an invariant this repository already paid for in a
fixed bug (see the module docstrings for the history).
"""

from repro.devtools.lint.rules import (  # noqa: F401
    budget_checkpoint,
    checkpoint_reachability,
    determinism,
    fault_boundary,
    kernel_parity,
    layering,
    pool_safety,
    shared_state,
    wire_format,
)
