"""Synthetic workload definitions for the evaluation suites.

Two synthetic families are exposed:

* the **dense suite** mirrors Table 4 of the paper — uniform random
  bipartite graphs with edge density 0.70-0.95 over a sweep of side sizes.
  The paper uses 128-2048 vertices per side; the Python reproduction scales
  that down (configurable) while keeping the densities and the side-size
  doubling pattern so the *shape* of the table (who wins, how the running
  time grows with size and density) is preserved;
* **sparse synthetic graphs** — power-law bipartite graphs with an
  optional planted balanced biclique, used by the dataset stand-ins of
  Table 5/6 and by the heuristic-gap experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    planted_balanced_biclique,
    random_bipartite,
    random_power_law_bipartite,
)

#: Edge densities evaluated by Table 4 of the paper.
TABLE4_DENSITIES: Tuple[float, ...] = (0.70, 0.75, 0.80, 0.85, 0.90, 0.95)

#: Side sizes used by the scaled-down dense suite (the paper uses
#: 128, 256, ..., 2048; a pure-Python branch and bound cannot sweep those in
#: a benchmark harness, so the suite keeps the doubling pattern at a scale
#: where every algorithm finishes).  Sides 48 and 56 were added once the
#: bitset kernel made the side-40 instances >= 3x faster (see
#: ``BENCH_kernels.json``); the set-kernel ablation and the baselines rely
#: on the per-run time budget for the largest cells, exactly like the
#: paper's timeout dashes.
DEFAULT_DENSE_SIDES: Tuple[int, ...] = (16, 24, 32, 40, 48, 56)


@dataclass(frozen=True)
class DenseCase:
    """One cell of the dense synthetic sweep."""

    side: int
    density: float
    instances: int = 3
    seed: int = 0

    @property
    def label(self) -> str:
        """Row/column label used by the benchmark tables."""
        return f"{self.side}x{self.side}@{int(self.density * 100)}%"


def dense_case_graph(case: DenseCase, instance: int = 0) -> BipartiteGraph:
    """Generate the ``instance``-th random graph of a dense sweep cell."""
    seed = hash((case.side, round(case.density * 100), case.seed, instance)) & 0x7FFFFFFF
    return random_bipartite(case.side, case.side, case.density, seed=seed)


def dense_suite(
    sides: Sequence[int] = DEFAULT_DENSE_SIDES,
    densities: Sequence[float] = TABLE4_DENSITIES,
    instances: int = 3,
) -> Iterator[DenseCase]:
    """Iterate over all cells of the dense synthetic sweep (Table 4)."""
    for side in sides:
        for density in densities:
            yield DenseCase(side=side, density=density, instances=instances)


def sparse_synthetic_graph(
    n_left: int,
    n_right: int,
    avg_degree: float,
    *,
    planted_size: int = 0,
    exponent: float = 2.1,
    seed: int = 0,
) -> BipartiteGraph:
    """Power-law bipartite graph with an optional planted balanced biclique.

    This is the construction behind every KONECT stand-in: a heavy-tailed
    background (matching the degree skew of real interaction data) plus a
    planted balanced biclique that plays the role of the dataset's dense
    community, giving the instance a non-trivial optimum.
    """
    graph = random_power_law_bipartite(
        n_left, n_right, avg_degree, exponent=exponent, seed=seed
    )
    if planted_size > 0:
        planted = planted_balanced_biclique(
            planted_size, planted_size, planted_size, background_density=0.0
        )
        # Embed the planted block on the lowest-index vertices; those are the
        # highest-weight (hub) vertices of the power-law construction, which
        # matches how dense communities sit on hubs in real data.
        for u, v in planted.edges():
            graph.add_edge(u, v)
    return graph
