"""Tests for reprolint's whole-project model and the cross-file rules.

Covers the project model itself (module naming, import-graph/alias
resolution, re-export chasing, cycle detection, call-graph construction
and reachability) through fixture mini-packages, one seeded-violation
fixture suite per project rule (RPL005–RPL008), the new CLI surface
(``--explain``, ``--graph-dot``), and the determinism meta-test (two
consecutive runs over the repository render byte-identical JSON).
"""

import textwrap
from pathlib import Path

from repro.cli import main
from repro.devtools.lint import (
    Baseline,
    ProjectContext,
    build_project,
    module_name_for,
    render_json,
    render_text,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_fixture(tmp_path, files):
    """Write a ``relpath -> source`` mapping under a scratch root."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


def project_fixture(tmp_path, files) -> ProjectContext:
    write_fixture(tmp_path, files)
    roots = sorted({relpath.split("/")[0] for relpath in files})
    return build_project(roots, root=str(tmp_path))


def lint_fixture(tmp_path, files, rules=()):
    write_fixture(tmp_path, files)
    roots = sorted({relpath.split("/")[0] for relpath in files})
    return run_lint(roots, root=str(tmp_path), rules=rules)


def codes(result):
    return [finding.code for finding in result.new_findings]


#: A minimal stand-in for the real context module, used by the RPL006
#: fixtures (the rule resolves SearchContext/SearchAborted inside the
#: project under analysis, so the fixture must provide them).
CONTEXT_MODULE = """
    class SearchAborted(Exception):
        pass

    class SearchContext:
        def checkpoint(self):
            pass

        def enter_node(self, depth):
            self.checkpoint()
    """


# ----------------------------------------------------------------------
# the project model
# ----------------------------------------------------------------------
class TestModuleNaming:
    def test_src_is_the_import_root(self):
        assert module_name_for("src/repro/mbb/sparse.py") == "repro.mbb.sparse"

    def test_init_modules_are_their_package(self):
        assert module_name_for("src/repro/graph/__init__.py") == "repro.graph"

    def test_other_roots_keep_their_directory(self):
        assert module_name_for("tests/test_solver_api.py") == "tests.test_solver_api"
        assert module_name_for("benchmarks/run_dense.py") == "benchmarks.run_dense"

    def test_non_python_paths_resolve_to_none(self):
        assert module_name_for("README.md") is None


class TestProjectModel:
    def test_alias_imports_resolve(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/util.py": """
                    def helper():
                        return 1
                    """,
                "src/pkg/user.py": """
                    import pkg.util as u
                    from pkg.util import helper as h

                    def use():
                        u.helper()
                        h()
                    """,
            },
        )
        edges = project.call_graph["pkg.user::use"]
        assert edges == {"pkg.util::helper"}

    def test_re_export_chain_is_chased(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "from pkg.inner import Widget\n",
                "src/pkg/inner.py": """
                    class Widget:
                        def spin(self):
                            pass
                    """,
                "src/app.py": """
                    from pkg import Widget

                    def run(w: Widget):
                        w.spin()
                    """,
            },
        )
        assert project.resolve("app", "Widget") == ("class", "pkg.inner", "Widget")
        assert project.call_graph["app::run"] == {"pkg.inner::Widget.spin"}

    def test_self_method_and_base_class_resolution(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/base.py": """
                    class Base:
                        def poll(self):
                            pass
                    """,
                "src/pkg/sub.py": """
                    from pkg.base import Base

                    class Sub(Base):
                        def work(self):
                            self.poll()
                    """,
            },
        )
        assert project.call_graph["pkg.sub::Sub.work"] == {"pkg.base::Base.poll"}

    def test_constructor_assignment_types_the_receiver(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/thing.py": """
                    class Thing:
                        def go(self):
                            pass
                    """,
                "src/pkg/use.py": """
                    from pkg.thing import Thing

                    def drive():
                        t = Thing()
                        t.go()
                    """,
            },
        )
        assert "pkg.thing::Thing.go" in project.call_graph["pkg.use::drive"]

    def test_function_alias_ternary_resolves_both_arms(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/kernels.py": """
                    def fast():
                        pass

                    def slow():
                        pass

                    def dispatch(use_fast):
                        search = fast if use_fast else slow
                        search()
                    """,
            },
        )
        edges = project.call_graph["pkg.kernels::dispatch"]
        assert {"pkg.kernels::fast", "pkg.kernels::slow"} <= edges

    def test_reachability_is_transitive(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/chain.py": """
                    def a():
                        b()

                    def b():
                        c()

                    def c():
                        pass
                    """,
            },
        )
        region = project.reachable("pkg.chain::a")
        assert {"pkg.chain::a", "pkg.chain::b", "pkg.chain::c"} <= region

    def test_loop_and_recursion_detection(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/shape.py": """
                    def loopy(items):
                        for item in items:
                            pass

                    def straight():
                        return 1

                    def rec(n):
                        return rec(n - 1) if n else 0
                    """,
            },
        )
        assert "pkg.shape::loopy" in project.loop_nodes
        assert "pkg.shape::straight" not in project.loop_nodes
        assert "pkg.shape::rec" in project.recursive_nodes

    def test_module_level_cycle_detected_lazy_exempt(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "from pkg import b\n",
                "src/pkg/b.py": "from pkg import a\n",
                "src/pkg/c.py": """
                    def late():
                        from pkg import a
                    """,
            },
        )
        cycles = project.import_cycles()
        assert cycles == [["pkg.a", "pkg.b"]]
        # c's lazy import is recorded but creates no cycle edge.
        assert project.internal_import_edges()["pkg.c"] == []
        assert any(not record.toplevel for record in project.modules["pkg.c"].imports)

    def test_to_dot_lists_sorted_edges(self, tmp_path):
        project = project_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "from pkg import b\nfrom pkg import c\n",
                "src/pkg/b.py": "",
                "src/pkg/c.py": "",
            },
        )
        dot = project.to_dot()
        assert dot.startswith("digraph reprolint_imports {")
        assert dot.index('"pkg.a" -> "pkg.b";') < dot.index('"pkg.a" -> "pkg.c";')


# ----------------------------------------------------------------------
# RPL005 — shared-state safety
# ----------------------------------------------------------------------
PREPARED_STUB = """
    class PreparedGraph:
        pass
    """
CSR_STUB = """
    class CSRBipartite:
        pass
    """


class TestSharedStateRule:
    def test_attribute_assignment_on_annotated_param_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/graph/prepared.py": PREPARED_STUB,
                "src/repro/stage.py": """
                    from repro.graph.prepared import PreparedGraph

                    def clobber(bundle: PreparedGraph):
                        bundle.labels = []
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == ["RPL005"]
        assert "attribute assignment" in result.new_findings[0].message

    def test_element_store_into_flat_array_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/stage.py": """
                    def tweak(csr):
                        csr.indices[0] = 1
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == ["RPL005"]
        assert "element store" in result.new_findings[0].message

    def test_mutator_call_on_array_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/stage.py": """
                    def grow(prepared):
                        prepared.labels.append("x")
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == ["RPL005"]
        assert "in-place mutator" in result.new_findings[0].message

    def test_constructor_assignment_tracks_receiver(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/graph/csr.py": CSR_STUB,
                "src/repro/stage.py": """
                    from repro.graph.csr import CSRBipartite

                    def build(graph):
                        snapshot = CSRBipartite.from_bipartite(graph)
                        snapshot.indptr = []
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == ["RPL005"]

    def test_defining_modules_are_exempt(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/graph/prepared.py": """
                    class PreparedGraph:
                        def memoise(self, prepared):
                            prepared.labels = []
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == []

    def test_rebinding_and_reads_are_legal(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/stage.py": """
                    def use(factory, other):
                        prepared = factory()
                        prepared = other
                        return prepared.labels[0]
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == []

    def test_benchmarks_in_scope_tests_exempt(self, tmp_path):
        mutation = """
            def poke(prepared):
                prepared.labels.append(1)
            """
        flagged = lint_fixture(
            tmp_path, {"benchmarks/poke.py": mutation}, rules=["RPL005"]
        )
        assert codes(flagged) == ["RPL005"]
        exempt = lint_fixture(
            tmp_path, {"tests/test_poke.py": mutation}, rules=["RPL005"]
        )
        assert codes(exempt) == []

    def test_shm_buf_write_outside_protocol_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/stage.py": """
                    def patch(segment):
                        segment.buf[0:8] = b"deadbeef"
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == ["RPL005"]
        assert "outside to_shm/from_shm" in result.new_findings[0].message

    def test_shm_buf_write_inside_to_shm_passes(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/graph/prepared.py": """
                    class PreparedGraph:
                        def to_shm(self):
                            segment = create(self)
                            segment.buf[0:8] = b"RPGB0001"
                            return segment
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == []

    def test_shm_buf_write_in_defining_module_still_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/graph/prepared.py": """
                    def repaint(segment):
                        segment.buf[0] = 0
                    """,
            },
            rules=["RPL005"],
        )
        assert codes(result) == ["RPL005"]


# ----------------------------------------------------------------------
# RPL006 — checkpoint reachability
# ----------------------------------------------------------------------
class TestCheckpointReachabilityRule:
    def test_loop_bearing_entry_without_poll_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/context.py": CONTEXT_MODULE,
                "src/repro/mbb/driver.py": """
                    from repro.mbb.context import SearchContext

                    def expand(seed):
                        pass

                    def my_search(graph):
                        context = SearchContext()
                        for seed in graph:
                            expand(seed)
                    """,
            },
            rules=["RPL006"],
        )
        assert codes(result) == ["RPL006"]
        assert "my_search()" in result.new_findings[0].message

    def test_poll_through_helper_chain_passes(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/context.py": CONTEXT_MODULE,
                "src/repro/mbb/driver.py": """
                    from repro.mbb.context import SearchContext

                    def expand(seed, context: SearchContext):
                        context.checkpoint()

                    def my_search(graph):
                        context = SearchContext()
                        for seed in graph:
                            expand(seed, context)
                    """,
            },
            rules=["RPL006"],
        )
        assert codes(result) == []

    def test_abort_handler_marks_an_entry_point(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/context.py": CONTEXT_MODULE,
                "src/repro/mbb/driver.py": """
                    from repro.mbb.context import SearchAborted

                    def spin(graph):
                        pass

                    def harness(graph):
                        try:
                            while True:
                                spin(graph)
                        except SearchAborted:
                            return None
                    """,
            },
            rules=["RPL006"],
        )
        assert codes(result) == ["RPL006"]

    def test_recursion_counts_as_unbounded_work(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/context.py": CONTEXT_MODULE,
                "src/repro/mbb/driver.py": """
                    from repro.mbb.context import SearchContext

                    def descend(node):
                        descend(node)

                    def my_search(graph):
                        context = SearchContext()
                        descend(graph)
                    """,
            },
            rules=["RPL006"],
        )
        assert codes(result) == ["RPL006"]

    def test_straight_line_entry_is_exempt(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/context.py": CONTEXT_MODULE,
                "src/repro/mbb/driver.py": """
                    from repro.mbb.context import SearchContext

                    def dispatch(graph):
                        context = SearchContext()
                        return graph
                    """,
            },
            rules=["RPL006"],
        )
        assert codes(result) == []

    def test_helpers_taking_a_context_are_not_entry_points(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/context.py": CONTEXT_MODULE,
                "src/repro/mbb/driver.py": """
                    from repro.mbb.context import SearchContext

                    def helper(graph, context: SearchContext):
                        for vertex in graph:
                            pass
                    """,
            },
            rules=["RPL006"],
        )
        assert codes(result) == []

    def test_repo_entry_points_all_prove_reachability(self):
        result = run_lint(["src"], root=str(REPO_ROOT), rules=["RPL006"])
        assert codes(result) == [], render_text(result)


# ----------------------------------------------------------------------
# RPL007 — layering and import cycles
# ----------------------------------------------------------------------
class TestLayeringRule:
    def test_module_level_upward_import_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/mbb/solver.py": "from repro.api.engine import Engine\n",
            },
            rules=["RPL007"],
        )
        assert codes(result) == ["RPL007"]
        assert "repro.api.engine" in result.new_findings[0].message

    def test_lazy_upward_import_also_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/cores/peel.py": """
                    def run():
                        from repro.bench import harness
                        return harness
                    """,
            },
            rules=["RPL007"],
        )
        assert codes(result) == ["RPL007"]
        assert "(lazy import)" in result.new_findings[0].message

    def test_downward_import_is_legal(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/engine.py": "from repro.mbb import solver\n",
                "src/repro/mbb/__init__.py": "",
                "src/repro/mbb/solver.py": "",
            },
            rules=["RPL007"],
        )
        assert codes(result) == []

    def test_module_level_cycle_flagged_once(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "from pkg import b\n",
                "src/pkg/b.py": "from pkg import a\n",
            },
            rules=["RPL007"],
        )
        assert codes(result) == ["RPL007"]
        assert "pkg.a -> pkg.b -> pkg.a" in result.new_findings[0].message

    def test_lazy_back_reference_breaks_no_cycle(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "from pkg import b\n",
                "src/pkg/b.py": """
                    def back():
                        from pkg import a
                        return a
                    """,
            },
            rules=["RPL007"],
        )
        assert codes(result) == []

    def test_repo_import_graph_is_layered_and_acyclic(self):
        result = run_lint(["src"], root=str(REPO_ROOT), rules=["RPL007"])
        assert codes(result) == [], render_text(result)
        assert build_project(["src"], root=str(REPO_ROOT)).import_cycles() == []


# ----------------------------------------------------------------------
# RPL008 — wire-format drift
# ----------------------------------------------------------------------
class TestWireFormatRule:
    def test_field_missing_from_to_dict_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/wire.py": """
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class Report:
                        left: int
                        order_seconds: float

                        def to_dict(self):
                            return {"left": self.left}

                        @classmethod
                        def from_dict(cls, data):
                            return cls(**data)
                    """,
            },
            rules=["RPL008"],
        )
        assert codes(result) == ["RPL008"]
        assert "'order_seconds'" in result.new_findings[0].message
        assert "to_dict" in result.new_findings[0].message

    def test_field_missing_from_from_dict_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/wire.py": """
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class Report:
                        left: int
                        right: int

                        def to_dict(self):
                            return {"left": self.left, "right": self.right}

                        @classmethod
                        def from_dict(cls, data):
                            return cls(left=int(data["left"]))
                    """,
            },
            rules=["RPL008"],
        )
        assert codes(result) == ["RPL008"]
        assert "'right'" in result.new_findings[0].message
        assert "from_dict" in result.new_findings[0].message

    def test_extra_key_not_backed_by_field_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/wire.py": """
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class Report:
                        left: int

                        def to_dict(self):
                            return {"left": self.left, "legacy": 0}

                        @classmethod
                        def from_dict(cls, data):
                            data.pop("legacy", None)
                            return cls(**data)
                    """,
            },
            rules=["RPL008"],
        )
        assert codes(result) == ["RPL008"]
        assert "'legacy'" in result.new_findings[0].message

    def test_generic_fields_iteration_covers_everything(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/wire.py": """
                    from dataclasses import dataclass, fields

                    @dataclass(frozen=True)
                    class Spec:
                        kind: str
                        seed: int

                        def to_dict(self):
                            return {f.name: getattr(self, f.name) for f in fields(self)}

                        @classmethod
                        def from_dict(cls, data):
                            return cls(**data)
                    """,
            },
            rules=["RPL008"],
        )
        assert codes(result) == []

    def test_one_way_exporters_are_not_contracts(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/wire.py": """
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class Info:
                        name: str
                        hidden: int

                        def to_dict(self):
                            return {"name": self.name}
                    """,
            },
            rules=["RPL008"],
        )
        assert codes(result) == []

    def test_repo_wire_format_is_covered(self):
        result = run_lint(["src"], root=str(REPO_ROOT), rules=["RPL008"])
        assert codes(result) == [], render_text(result)


# ----------------------------------------------------------------------
# RPL009 — fault boundaries and injection-point confinement
# ----------------------------------------------------------------------

#: A stand-in for the faults module so fixture projects can resolve
#: ``repro.devtools.faults.hit`` the way the real repository does.
FAULTS_MODULE_FIXTURE = """
    def hit(point, *, key=""):
        pass
    """


class TestFaultBoundaryRule:
    def test_submitted_callable_without_boundary_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/runner.py": """
                    def _solve_payload(payload):
                        return payload.upper()

                    def run(pool, payload):
                        return pool.submit(_solve_payload, payload)
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == ["RPL009"]
        assert "_solve_payload" in result.new_findings[0].message

    def test_direct_boundary_handler_passes(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/runner.py": """
                    def _solve_payload(payload):
                        try:
                            return payload.upper()
                        except Exception as exc:
                            return str(exc)

                    def run(pool, payload):
                        return pool.submit(_solve_payload, payload)
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == []

    def test_boundary_reached_through_a_helper_passes(self, tmp_path):
        # The engine's real shape: the submitted entry point delegates to
        # a guarded helper, so the proof must walk the call graph.
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/runner.py": """
                    def _guarded(payload):
                        try:
                            return payload.upper()
                        except Exception as exc:
                            return str(exc)

                    def _solve_payload(payload):
                        return _guarded(payload)

                    def run(pool, payload):
                        return pool.submit(_solve_payload, payload)
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == []

    def test_unresolvable_submit_argument_is_left_to_rpl004(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/api/runner.py": """
                    def run(pool, solver, payload):
                        return pool.submit(solver.step, payload)
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == []

    def test_hit_outside_designated_modules_flagged(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                # ``from repro.devtools import faults`` resolves as a
                # module binding only when the package itself exists.
                "src/repro/__init__.py": "",
                "src/repro/devtools/__init__.py": "",
                "src/repro/devtools/faults.py": FAULTS_MODULE_FIXTURE,
                "src/repro/mbb/kernel.py": """
                    from repro.devtools import faults

                    def solve(graph):
                        faults.hit("kernel.solve")
                        return graph
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == ["RPL009"]
        assert "src/repro/mbb/kernel.py" in result.new_findings[0].path

    def test_hit_imported_by_name_is_flagged_too(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/devtools/faults.py": FAULTS_MODULE_FIXTURE,
                "src/repro/graph/io.py": """
                    from repro.devtools.faults import hit

                    def load(path):
                        hit("io.load", key=path)
                        return path
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == ["RPL009"]

    def test_hit_in_designated_module_passes(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/devtools/__init__.py": "",
                "src/repro/devtools/faults.py": FAULTS_MODULE_FIXTURE,
                "src/repro/api/engine.py": """
                    from repro.devtools import faults

                    def _guarded_solve(payload):
                        try:
                            faults.hit("worker.solve", key=payload)
                            return payload.upper()
                        except Exception as exc:
                            return str(exc)
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == []

    def test_hit_in_parallel_s3_module_passes(self, tmp_path):
        # src/repro/api/parallel.py is a designated fault module: its
        # worker entry point probes worker.hang/worker.solve behind the
        # same except-Exception boundary the engine workers use.
        result = lint_fixture(
            tmp_path,
            {
                "src/repro/__init__.py": "",
                "src/repro/devtools/__init__.py": "",
                "src/repro/devtools/faults.py": FAULTS_MODULE_FIXTURE,
                "src/repro/api/parallel.py": """
                    from repro.devtools import faults

                    def _run_s3_task(task):
                        try:
                            faults.hit("worker.solve", key=task)
                            return ("ok", task)
                        except Exception as exc:
                            return ("error", repr(exc))

                    def dispatch(pool, task):
                        return pool.submit(_run_s3_task, task)
                    """,
            },
            rules=["RPL009"],
        )
        assert codes(result) == []

    def test_repo_fault_boundaries_are_covered(self):
        result = run_lint(["src"], root=str(REPO_ROOT), rules=["RPL009"])
        assert codes(result) == [], render_text(result)


# ----------------------------------------------------------------------
# CLI polish and determinism
# ----------------------------------------------------------------------
class TestCliPolish:
    def test_explain_prints_rationale_example_and_guidance(self, capsys):
        assert main(["lint", "--explain", "RPL005,RPL007"]) == 0
        out = capsys.readouterr().out
        assert "RPL005 — shared-state" in out
        assert "RPL007 — layering" in out
        assert "Why:" in out and "Example:" in out and "Suppressing:" in out
        assert "reprolint: disable=RPL005" in out

    def test_explain_all_covers_every_rule(self, capsys):
        assert main(["lint", "--explain", "all"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004",
                     "RPL005", "RPL006", "RPL007", "RPL008"):
            assert code in out

    def test_explain_unknown_code_is_usage_error(self, capsys):
        assert main(["lint", "--explain", "RPL999"]) == 2
        assert "RPL999" in capsys.readouterr().err

    def test_graph_dot_to_stdout_and_file(self, tmp_path, capsys):
        write_fixture(
            tmp_path,
            {
                "src/pkg/__init__.py": "",
                "src/pkg/a.py": "from pkg import b\n",
                "src/pkg/b.py": "",
            },
        )
        assert main(["lint", "--root", str(tmp_path), "--graph-dot", "-"]) == 0
        out = capsys.readouterr().out
        assert '"pkg.a" -> "pkg.b";' in out
        target = tmp_path / "imports.dot"
        assert (
            main(["lint", "--root", str(tmp_path), "--graph-dot", str(target)]) == 0
        )
        assert '"pkg.a" -> "pkg.b";' in target.read_text(encoding="utf-8")


class TestDeterminism:
    def test_two_repo_runs_render_byte_identical_json(self):
        baseline = Baseline.load(str(REPO_ROOT / "reprolint-baseline.json"))
        paths = [
            path
            for path in ("src", "tests", "benchmarks", "examples")
            if (REPO_ROOT / path).exists()
        ]
        first = render_json(
            run_lint(paths, root=str(REPO_ROOT), baseline=baseline)
        )
        second = render_json(
            run_lint(paths, root=str(REPO_ROOT), baseline=baseline)
        )
        assert first == second

    def test_project_model_is_deterministic(self):
        first = build_project(["src"], root=str(REPO_ROOT))
        second = build_project(["src"], root=str(REPO_ROOT))
        assert first.to_dot() == second.to_dot()
        assert first.import_cycles() == second.import_cycles()
        assert {k: sorted(v) for k, v in first.call_graph.items()} == {
            k: sorted(v) for k, v in second.call_graph.items()
        }


class TestBaselineJustification:
    def test_justification_survives_round_trip(self, tmp_path):
        payload = {
            "version": 1,
            "tool": "reprolint",
            "entries": [
                {
                    "path": "src/repro/x.py",
                    "code": "RPL005",
                    "message": "m",
                    "count": 1,
                    "justification": "staged cleanup lands in the next PR",
                }
            ],
        }
        baseline = Baseline.from_dict(payload)
        target = tmp_path / "baseline.json"
        baseline.save(str(target))
        reloaded = Baseline.load(str(target))
        assert reloaded == baseline
        assert (
            reloaded.justifications["src/repro/x.py::RPL005::m"]
            == "staged cleanup lands in the next PR"
        )

    def test_regeneration_carries_surviving_justifications(self):
        from repro.devtools.lint.findings import Finding

        surviving = Finding(
            path="src/repro/x.py", line=3, column=1, code="RPL005", message="m"
        )
        previous = Baseline(
            {surviving.fingerprint: 1, "src/gone.py::RPL007::old": 1},
            {
                surviving.fingerprint: "kept",
                "src/gone.py::RPL007::old": "stale",
            },
        )
        regenerated = Baseline.from_findings([surviving], previous=previous)
        assert regenerated.justifications == {surviving.fingerprint: "kept"}
