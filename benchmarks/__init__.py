"""pytest-benchmark suites regenerating every table and figure of the paper."""
