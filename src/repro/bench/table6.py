"""Table 6 — breakdown of the proposed techniques on the tough datasets.

For every tough dataset the table reports:

* the cost of the building blocks in isolation — the heuristic stage
  ``hMBB``, the degeneracy order ``degOrder`` and the bidegeneracy order
  ``bdegOrder`` (overhead columns; ``bdegOrderHeap`` re-times the
  bidegeneracy order with the set-keyed heap peel the flat bucket engine
  replaced, so the table shows what the engine swap saves per dataset);
* the full framework ``hbvMBB``; and
* the ablations ``bd1`` (no heuristic stage), ``bd2`` (no core/bicore
  optimisations), ``bd3`` (no dense branching technique), ``bd4`` (degree
  order) and ``bd5`` (degeneracy order).

Expected shape: the overheads are small compared to the exhaustive search;
every ablation is slower than the full framework, with ``bd3`` (losing the
polynomial cases) and ``bd1`` (losing the incumbent and reduction) hurting
the most, and ``bd5`` beating ``bd4`` (degeneracy order beats degree
order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table, run_backend, timed
from repro.cores.bicore import IMPL_HEAP, bidegeneracy_order
from repro.cores.core import degeneracy_order
from repro.mbb.heuristics import h_mbb
from repro.mbb.sparse import VARIANT_CONFIGS, variant
from repro.workloads.datasets import DATASETS, TOUGH_DATASETS

#: Columns of the breakdown, in the paper's order.
COLUMNS = (
    "hMBB",
    "degOrder",
    "bdegOrder",
    "bdegOrderHeap",
    "bd1",
    "bd2",
    "bd3",
    "bd4",
    "bd5",
    "hbvMBB",
)


def run_dataset_breakdown(
    name: str,
    *,
    time_budget: Optional[float] = 15.0,
) -> Dict[str, object]:
    """Run every Table 6 column for one tough dataset."""
    graph = DATASETS[name].generate()
    row: Dict[str, object] = {"dataset": name}

    _, h_time = timed(h_mbb, graph)
    row["hMBB"] = h_time
    _, deg_time = timed(degeneracy_order, graph)
    row["degOrder"] = deg_time
    _, bdeg_time = timed(bidegeneracy_order, graph)
    row["bdegOrder"] = bdeg_time
    _, bdeg_heap_time = timed(bidegeneracy_order, graph, impl=IMPL_HEAP)
    row["bdegOrderHeap"] = bdeg_heap_time

    for variant_name in ("bd1", "bd2", "bd3", "bd4", "bd5", "hbvMBB"):
        result, elapsed = run_backend(
            graph,
            "sparse",
            time_budget=time_budget,
            sparse_config=variant(variant_name),
        )
        row[variant_name] = elapsed if result.optimal else "-"
        if variant_name == "hbvMBB":
            row["optimum"] = result.side_size
    return row


def run_table6(
    dataset_names: Sequence[str] = TOUGH_DATASETS,
    *,
    time_budget: Optional[float] = 15.0,
) -> List[Dict[str, object]]:
    """Produce the Table 6 rows for the tough datasets."""
    return [
        run_dataset_breakdown(name, time_budget=time_budget)
        for name in dataset_names
    ]


def format_table6(rows: Sequence[Dict[str, object]]) -> str:
    """Render the breakdown rows in the paper's column order."""
    columns = ["dataset"] + list(COLUMNS) + ["optimum"]
    return format_table(rows, columns)


def variant_names() -> List[str]:
    """All framework variants (for parametrised benchmarks)."""
    return list(VARIANT_CONFIGS)
