"""The :class:`MBBEngine` service facade: one solve, or a parallel batch.

The engine is the single entry point everything else is a wrapper around:

* :meth:`MBBEngine.solve_graph` — solve an in-memory graph with a named
  backend (what :func:`repro.solve_mbb` delegates to);
* :meth:`MBBEngine.solve` — execute one :class:`~repro.api.request.SolveRequest`
  end to end (materialise the graph, run the backend, build the report);
* :meth:`MBBEngine.solve_many` — execute a batch of requests over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with results returned
  in request order regardless of completion order.  Requests cross the
  process boundary as their JSON wire form, so every batch run also
  exercises the serialisation path a future network server would use.

Budgets flow through one mechanism: the engine builds a single
:class:`~repro.mbb.context.SearchContext` per request carrying the node
budget, the time budget and an absolute deadline, and hands it to the
backend; solvers abort cooperatively through the context instead of each
plumbing its own budget arguments.

The engine also owns the :class:`PreparedGraphCache`: a bounded LRU of
:class:`~repro.graph.prepared.PreparedGraph` snapshots keyed by graph
content fingerprint.  Backends that declare ``supports_prepared`` (the
sparse framework and ``auto``) receive the cached snapshot, so repeated
``solve()`` calls, ``solve_many`` batches over one graph and
``repro-mbb sweep`` parameter sweeps amortise the whole
CSR + ``N_{<=2}`` + peel pipeline across solves.  Every engine shares
one process-wide cache by default — which is exactly what makes the
amortisation reach the process-pool workers, each of which constructs a
fresh engine per request — and each solve reports its hit/miss and
``prepare_seconds`` through :class:`~repro.mbb.result.SearchStats`.

``solve_many`` extends the amortisation *across* the pool boundary: for
each pool-bound request whose backend consumes snapshots, the engine
prepares the graph once, publishes the bundle into a shared-memory
segment (:meth:`~repro.graph.prepared.PreparedGraph.to_shm`) and ships
the **segment name** with the request instead of letting every worker
re-pickle or re-prepare the graph.  Workers attach zero-copy, re-verify
the content fingerprint, and seed their process-local cache, so each
worker pays one attach per graph instead of one preparation per
request.  The engine end owns segment lifecycle through the module-wide
:class:`SharedPreparedExports` registry: segments are destroyed when
their snapshot is evicted from the cache LRU, on
:meth:`MBBEngine.shutdown`, and in an ``atexit`` hook — so a crashed
worker (or a crashed batch) can never leak a named segment, and the
registry is pid-guarded so forked workers can never tear down their
parent's segments.

Batches are **fault-tolerant**: every worker entry point is a fault
boundary (:func:`_guarded_solve`) converting exceptions into
``status="error"`` reports with a structured
:class:`~repro.api.request.SolveError`, worker deaths rebuild the pool
under a bounded :class:`RetryPolicy` (re-submitting only the unfinished
requests — crash suspects one at a time, so blame can never land on an
innocent co-flier — and finishing reproducible crashers as
``worker_crash`` reports, or isolating them in-process on explicit
opt-in), and a per-request
deadline watchdog — whose clock starts when a worker picks the request
up — terminates hung workers and marks their requests ``aborted``.  The
deterministic chaos harness in :mod:`repro.devtools.faults` arms the
injection points compiled into these boundaries, and reprolint RPL009
keeps every pool-submitted callable behind one.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.registry import SolverBackend, get_backend
from repro.api.request import (
    ERROR_KIND_INJECTED_FAULT,
    ERROR_KIND_INTERNAL,
    ERROR_KIND_INVALID_PARAMETER,
    ERROR_KIND_INVALID_REQUEST,
    ERROR_KIND_RESOURCE,
    ERROR_KIND_TIMEOUT,
    ERROR_KIND_WORKER_CRASH,
    STATUS_ABORTED,
    STATUS_ERROR,
    STATUS_OK,
    GraphSpec,
    SolveError,
    SolveReport,
    SolveRequest,
)
from repro.devtools import faults
from repro.devtools.faults import InjectedFault
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.prepared import PreparedGraph, PreparedGraphShm, graph_fingerprint
from repro.mbb import solver as _solver
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.result import MBBResult

_KERNELS = (KERNEL_BITS, KERNEL_SETS)

#: How often the batch loop re-polls while some submitted request is
#: still waiting for a worker slot: its watchdog deadline can only be
#: stamped once its future reports ``running()``, and ``wait()`` would
#: otherwise block indefinitely on a deadline-less future.
_WATCHDOG_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class RetryPolicy:
    """How :meth:`MBBEngine.solve_many` reacts to failing requests.

    ``max_attempts`` bounds *submissions* per request (1 = never retry);
    a request whose submissions are exhausted while it keeps crashing
    the pool is finished as a ``worker_crash`` error report.  Requests
    implicated in a crash are re-submitted one at a time with nothing
    else in flight, so only the actual crasher can repeatedly burn
    attempts — a request that merely shared the pool with it is
    implicated at most once.  Setting
    ``in_process_fallback`` instead re-runs such a poison request — and
    a batch whose pool-rebuild budget ran out — in-process behind the
    same fault boundary; it is opt-in because a request that genuinely
    segfaults or OOMs a worker would then take the parent (and every
    collected report) with it.  ``max_pool_rebuilds`` bounds how many
    times a broken pool is rebuilt before the remainder of the batch
    stops being retried (or, with ``in_process_fallback``, degrades to
    serial in-process execution).  Backoff before the n-th rebuild
    grows exponentially from ``backoff_seconds`` and is capped at
    ``backoff_cap_seconds``.  ``retryable_kinds`` names the
    :data:`~repro.api.request.ERROR_KINDS` worth resubmitting when a
    worker returns an error *report*; it is empty by default because
    worker crashes never produce a report to inspect — they surface as
    ``BrokenProcessPool`` and are always re-submitted up to
    ``max_attempts`` through that path.  ``watchdog_grace_seconds`` is
    added to a request's ``time_budget`` to form its completion
    deadline; the deadline clock starts when a worker actually picks
    the request up, not at submission, so queued requests do not burn
    their budget waiting for a slot.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_cap_seconds: float = 1.0
    max_pool_rebuilds: int = 3
    retryable_kinds: Tuple[str, ...] = ()
    watchdog_grace_seconds: float = 5.0
    in_process_fallback: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_pool_rebuilds < 0:
            raise InvalidParameterError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        if self.backoff_seconds < 0 or self.backoff_cap_seconds < 0:
            raise InvalidParameterError("backoff seconds must be non-negative")
        if self.watchdog_grace_seconds < 0:
            raise InvalidParameterError("watchdog grace must be non-negative")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries, no rebuilds: fail fast into error reports."""
        return cls(max_attempts=1, max_pool_rebuilds=0, retryable_kinds=())

    def backoff_for(self, rebuild: int) -> float:
        """Seconds to back off before the ``rebuild``-th rebuild (1-based)."""
        exponent = max(rebuild - 1, 0)
        return min(self.backoff_seconds * (2**exponent), self.backoff_cap_seconds)


class PreparedGraphCache:
    """Bounded LRU of :class:`PreparedGraph` snapshots keyed by content.

    The key is the graph's :func:`~repro.graph.prepared.graph_fingerprint`
    — content, not object identity, so two materialisations of the same
    request spec (e.g. across ``solve()`` calls or sweep cells) share one
    snapshot.  A fingerprint is a cache key, not a proof: every hit
    re-verifies ``cached.graph == graph`` and a mismatch (a ``repr``
    collision between distinct graphs) is handled as a miss that
    overwrites the colliding entry — a collision can cost a
    re-preparation but never leaks one graph's arrays into another
    graph's solve.

    ``on_evict`` (called with ``(fingerprint, prepared)`` whenever an
    entry leaves the cache, including via :meth:`clear`) is the hook the
    engine uses to tie shared-memory segment lifecycle to the LRU: when
    a snapshot falls out of the cache, its published segment is
    destroyed with it.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        on_evict: Optional[Callable[[str, PreparedGraph], None]] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        #: How often the shared-memory handoff around this cache degraded
        #: to the plain JSON submit path (see ``MBBEngine._shm_handle_for``).
        self.handoff_degradations = 0
        self._entries: "OrderedDict[str, PreparedGraph]" = OrderedDict()

    def get(self, graph: BipartiteGraph) -> Tuple[PreparedGraph, bool]:
        """Return ``(prepared, hit)`` for ``graph``, preparing on a miss."""
        fingerprint = graph_fingerprint(graph)
        cached = self._entries.get(fingerprint)
        if cached is not None and cached.graph == graph:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return cached, True
        self.misses += 1
        prepared = PreparedGraph.prepare(graph)
        self.seed(fingerprint, prepared)
        return prepared, False

    def seed(self, fingerprint: str, prepared: PreparedGraph) -> None:
        """Insert a snapshot under a known fingerprint, no accounting.

        The pool-worker attach path uses this: the fingerprint was
        verified by ``from_shm`` against the attached content, so
        re-deriving it here would just repeat that work.  Normal lookups
        must go through :meth:`get`.
        """
        self._entries[fingerprint] = prepared
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            evicted_fingerprint, evicted = self._entries.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(evicted_fingerprint, evicted)

    def clear(self) -> None:
        """Drop every cached snapshot (counters are kept)."""
        while self._entries:
            fingerprint, prepared = self._entries.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(fingerprint, prepared)

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current size, for observability."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
            "handoff_degradations": self.handoff_degradations,
        }

    def __len__(self) -> int:
        return len(self._entries)


class SharedPreparedExports:
    """Owner-side registry of published :class:`PreparedGraph` segments.

    One process-wide instance tracks every segment this process created
    (keyed by content fingerprint, so one graph is published exactly
    once no matter how many batches reference it).  Every removal path —
    LRU eviction from the shared cache, :meth:`release`,
    :meth:`release_all` from :meth:`MBBEngine.shutdown` or the
    ``atexit`` hook — destroys the segment, so named segments cannot
    outlive the process even when a worker or a batch crashes.

    The registry is pid-guarded: a forked pool worker inherits the
    parent's handle table, and acting on it would unlink segments the
    *parent* still serves.  Any operation from a different pid first
    resets the table (dropping the inherited handles without touching
    the segments), making every mutation a no-op on borrowed state.
    The table is also self-bounding: publishing beyond ``capacity``
    destroys the oldest segment (workers already attached keep their
    mappings — POSIX keeps attached memory alive past the unlink — and
    later attach failures fall back to local preparation).
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._owner_pid = os.getpid()
        self._handles: "OrderedDict[str, PreparedGraphShm]" = OrderedDict()

    def _guard_pid(self) -> None:
        if os.getpid() != self._owner_pid:
            self._owner_pid = os.getpid()
            self._handles = OrderedDict()

    def export(self, prepared: PreparedGraph) -> PreparedGraphShm:
        """Publish ``prepared`` (once per fingerprint) and return its handle."""
        self._guard_pid()
        handle = self._handles.get(prepared.fingerprint)
        if handle is None:
            handle = prepared.to_shm()
            self._handles[handle.fingerprint] = handle
            while len(self._handles) > self.capacity:
                _, oldest = self._handles.popitem(last=False)
                oldest.destroy()
        else:
            self._handles.move_to_end(prepared.fingerprint)
        return handle

    def release(self, fingerprint: str) -> None:
        """Destroy the segment published for ``fingerprint`` (idempotent)."""
        self._guard_pid()
        handle = self._handles.pop(fingerprint, None)
        if handle is not None:
            handle.destroy()

    def release_all(self) -> None:
        """Destroy every segment this process still owns."""
        self._guard_pid()
        while self._handles:
            _, handle = self._handles.popitem(last=False)
            handle.destroy()

    def __len__(self) -> int:
        self._guard_pid()
        return len(self._handles)


#: Process-wide segment registry; see :class:`SharedPreparedExports`.
_PREPARED_EXPORTS = SharedPreparedExports()
atexit.register(_PREPARED_EXPORTS.release_all)


def _release_prepared_export(fingerprint: str, prepared: PreparedGraph) -> None:
    """Cache-eviction hook: a snapshot leaving the LRU takes its segment."""
    _PREPARED_EXPORTS.release(fingerprint)


#: Process-wide default cache shared by every engine that is not given a
#: private one.  Sharing at module level is what lets process-pool
#: workers — which build a fresh ``MBBEngine`` per request — amortise
#: preparation across the requests they each execute.
_SHARED_PREPARED_CACHE = PreparedGraphCache(on_evict=_release_prepared_export)


def _classify_error(exc: BaseException) -> str:
    """Map an exception to its wire-format ``SolveError.kind``."""
    if isinstance(exc, InjectedFault):
        return ERROR_KIND_INJECTED_FAULT
    if isinstance(exc, InvalidParameterError):
        return ERROR_KIND_INVALID_PARAMETER
    if isinstance(exc, (MemoryError, OSError)):
        return ERROR_KIND_RESOURCE
    return ERROR_KIND_INTERNAL


def _error_report(
    request: SolveRequest, exc: BaseException, *, attempts: int = 1
) -> SolveReport:
    """Convert an exception into the error report the wire carries."""
    return SolveReport.from_error(
        request,
        SolveError(
            kind=_classify_error(exc),
            message=f"{type(exc).__name__}: {exc}",
            attempts=attempts,
        ),
    )


def _with_stat_increments(report: SolveReport, **increments: int) -> SolveReport:
    """Return ``report`` with stat counters bumped (reports are frozen)."""
    stats = dict(report.stats)
    for key, delta in increments.items():
        stats[key] = stats.get(key, 0) + delta
    return dataclass_replace(report, stats=stats)


def _guarded_solve(
    request: SolveRequest,
    *,
    graph: Optional[BipartiteGraph] = None,
    engine: Optional["MBBEngine"] = None,
) -> SolveReport:
    """The per-request fault boundary every execution path runs through.

    Any exception a solve raises — including an armed ``raise`` fault —
    becomes a ``status="error"`` report instead of propagating, so one
    failing request can never poison a batch.  The ``worker.hang`` and
    ``worker.solve`` injection points live here, keyed by the request
    tag, which is what makes chaos scenarios land on a chosen request
    independent of pool scheduling.
    """
    try:
        tag = request.tag or ""
        faults.hit("worker.hang", key=tag)
        faults.hit("worker.solve", key=tag)
        return (engine if engine is not None else MBBEngine()).solve(
            request, graph=graph
        )
    except Exception as exc:
        return _error_report(request, exc)


def _invalid_request_report(payload: str, exc: Exception) -> SolveReport:
    """Error report for a payload that does not parse into a request.

    The placeholder request keeps the report wire-complete (a report
    requires a request) while making clear nothing was solved.
    """
    placeholder = SolveRequest(graph=GraphSpec.inline(()), tag="<unparseable>")
    return SolveReport.from_error(
        placeholder,
        SolveError(
            kind=ERROR_KIND_INVALID_REQUEST,
            message=f"{type(exc).__name__}: {exc}",
        ),
    )


def _solve_request_json(payload: str) -> str:
    """Worker-process entry point: JSON request in, JSON report out.

    Module-level so it pickles by reference; the worker reconstructs the
    request from its wire form, which keeps the process-pool path on the
    exact same format a network server would receive.  A fault boundary:
    every failure comes back as an error *report*, never an exception.
    """
    try:
        request = SolveRequest.from_json(payload)
    except Exception as exc:
        return _invalid_request_report(payload, exc).to_json()
    return _guarded_solve(request).to_json()


#: Per-process memo of attached segments, keyed by segment name.  Lives
#: at module level (not on an engine) because pool workers construct a
#: fresh engine per request; bounded like the caches it feeds.
_WORKER_ATTACHMENTS: "OrderedDict[str, PreparedGraph]" = OrderedDict()
_MAX_WORKER_ATTACHMENTS = 8


def _attach_prepared_shm(name: str, fingerprint: str) -> Optional[PreparedGraph]:
    """Attach to a published snapshot segment, memoised per process.

    Module-level by design (and by RPL004 machine check): attach
    callables must pickle by reference into pool workers.  The attach
    re-verifies the stored fingerprint against both the engine's
    expectation and the actual graph content, then seeds the process's
    shared :class:`PreparedGraphCache` so the ensuing solve scores a
    cache hit with ``prepare_seconds`` ≈ one fingerprint computation.
    Returns ``None`` when the segment is gone or fails verification —
    callers fall back to preparing locally.
    """
    prepared = _WORKER_ATTACHMENTS.get(name)
    if prepared is not None and prepared.fingerprint == fingerprint:
        _WORKER_ATTACHMENTS.move_to_end(name)
        return prepared
    try:
        faults.hit("shm.attach", key=name)
        prepared = PreparedGraph.from_shm(name, fingerprint)
    except (InvalidParameterError, OSError, ValueError, InjectedFault):
        # Segment gone (evicted/unlinked between submit and execution),
        # failed format/fingerprint verification, or an injected attach
        # fault: all degrade to the JSON re-prepare path.  Anything else
        # is a real bug and propagates into the worker fault boundary.
        return None
    _WORKER_ATTACHMENTS[name] = prepared
    _WORKER_ATTACHMENTS.move_to_end(name)
    while len(_WORKER_ATTACHMENTS) > _MAX_WORKER_ATTACHMENTS:
        _WORKER_ATTACHMENTS.popitem(last=False)
    _SHARED_PREPARED_CACHE.seed(prepared.fingerprint, prepared)
    return prepared


def _solve_request_shm_json(payload: str, shm_name: str, fingerprint: str) -> str:
    """Worker-process entry point for shared-memory handed-off requests.

    Same wire contract as :func:`_solve_request_json`, plus the attach
    token: the worker attaches the published snapshot instead of
    materialising and re-preparing the request's graph.  If the attach
    fails (segment evicted between submit and execution, corrupted
    content, an injected fault), the request falls back to the plain
    JSON path and counts the degradation as ``handoff_fallbacks`` in its
    report — the handoff is an optimisation, never a correctness
    dependency.  A fault boundary like :func:`_solve_request_json`.
    """
    try:
        request = SolveRequest.from_json(payload)
    except Exception as exc:
        return _invalid_request_report(payload, exc).to_json()
    prepared = _attach_prepared_shm(shm_name, fingerprint)
    if prepared is None:
        report = _guarded_solve(request)
        return _with_stat_increments(report, handoff_fallbacks=1).to_json()
    return _guarded_solve(request, graph=prepared.graph).to_json()


class MBBEngine:
    """Facade dispatching solves to registered backends.

    Parameters
    ----------
    max_workers:
        Default process-pool size for :meth:`solve_many` (defaults to the
        CPU count, capped by the batch size).
    prepared_cache:
        The :class:`PreparedGraphCache` this engine threads through
        backends that declare ``supports_prepared``.  Defaults to one
        process-wide shared cache; pass a private instance to isolate a
        workload (or size the LRU differently).
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        prepared_cache: Optional[PreparedGraphCache] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers
        self.prepared_cache = (
            prepared_cache if prepared_cache is not None else _SHARED_PREPARED_CACHE
        )

    # ------------------------------------------------------------------
    # single solves
    # ------------------------------------------------------------------
    def solve_graph(
        self,
        graph: BipartiteGraph,
        *,
        backend: str = "auto",
        kernel: str = KERNEL_BITS,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        seed: int = 0,
        **backend_options: object,
    ) -> MBBResult:
        """Solve an in-memory graph with a named backend.

        This is the programmatic fast path used by :func:`repro.solve_mbb`;
        it skips the request/report wire format but runs the exact same
        validation and dispatch.
        """
        result, _, _ = self._dispatch(
            graph,
            backend=backend,
            kernel=kernel,
            node_budget=node_budget,
            time_budget=time_budget,
            seed=seed,
            **backend_options,
        )
        return result

    def solve(
        self, request: SolveRequest, *, graph: Optional[BipartiteGraph] = None
    ) -> SolveReport:
        """Execute one request end to end and return its report.

        ``graph`` lets a caller that already materialised the request's
        graph (e.g. to print its shape) skip a second materialisation; it
        must be the graph the request's spec describes.
        """
        if graph is None:
            graph = request.graph.materialise()
        options: Dict[str, object] = {}
        if request.parallel_s3 is not None:
            options["parallel_s3"] = request.parallel_s3
        result, resolved, kernel = self._dispatch(
            graph,
            backend=request.backend,
            kernel=request.kernel,
            node_budget=request.node_budget,
            time_budget=request.time_budget,
            seed=request.seed,
            **options,
        )
        return SolveReport.from_result(
            request, result, backend=resolved, kernel=kernel, graph=graph
        )

    # ------------------------------------------------------------------
    # batch solves
    # ------------------------------------------------------------------
    def solve_many(
        self,
        requests: Iterable[SolveRequest],
        *,
        max_workers: Optional[int] = None,
        parallel: bool = True,
        share_prepared: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        watchdog_seconds: Optional[float] = None,
    ) -> List[SolveReport]:
        """Execute a batch of requests, in a process pool when possible.

        Results are returned in request order regardless of which worker
        finishes first, so a batch is deterministic given deterministic
        backends.  Each request enforces its own budgets inside its
        worker.  With ``parallel=False`` (or a single-request batch, or a
        platform where process pools are unavailable) the batch runs
        serially in-process and produces the same reports apart from
        timings.

        **Fault tolerance.**  Every request is executed behind a fault
        boundary: a failing solve yields a ``status="error"`` report
        carrying a structured :class:`~repro.api.request.SolveError`
        instead of poisoning the batch.  A worker death
        (``BrokenProcessPool`` — SIGKILL, OOM) costs only the in-flight
        requests: the pool is rebuilt under ``retry_policy`` (defaults
        to :class:`RetryPolicy`'s bounded exponential backoff) and the
        unfinished requests are re-submitted, up to
        ``RetryPolicy.max_attempts`` submissions each; a request that
        keeps crashing the pool — and the whole crash cohort once
        ``RetryPolicy.max_pool_rebuilds`` is exhausted — is finished as
        a ``worker_crash`` error report (or re-run in-process when the
        policy opts into ``in_process_fallback``).  A request whose
        worker produces nothing by its deadline — ``time_budget`` plus
        ``RetryPolicy.watchdog_grace_seconds``, further clamped by
        ``watchdog_seconds`` for the whole batch, with the clock
        starting when a worker actually picks the request up — is
        marked ``status="aborted"`` and its hung worker is terminated.
        A wedged solve therefore cannot hang ``solve_many`` *provided
        it has a deadline*: a request with no ``time_budget`` in a
        batch run without ``watchdog_seconds`` is waited on
        indefinitely.  The accounting lands in each report's stats
        (``worker_retries``, ``pool_rebuilds``, ``handoff_fallbacks``).

        With ``share_prepared`` (the default), each pool-bound request
        whose backend consumes prepared snapshots is prepared **once**
        in this process and published to shared memory; its workers
        receive the segment name and attach zero-copy instead of
        re-pickling or re-preparing the graph per request (visible in
        the reports as ``prepared_cache_hits == 1`` with near-zero
        ``prepare_seconds``).  Published segments stay registered with
        the process-wide :class:`SharedPreparedExports` — bounded by the
        cache LRU and destroyed on eviction, :meth:`shutdown` or process
        exit — so repeated batches over the same graphs keep amortising
        and nothing leaks if a worker dies mid-batch.
        """
        batch: Sequence[SolveRequest] = list(requests)
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise InvalidParameterError(
                f"watchdog_seconds must be positive, got {watchdog_seconds}"
            )
        if not batch:
            return []
        if not parallel or len(batch) == 1:
            return [self._solve_isolated(request) for request in batch]
        workers = max_workers or self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(batch)))
        pool = self._make_pool(workers)
        if pool is None:
            # Process pools need working semaphores/fork support; fall
            # back to a serial batch on platforms that refuse them.
            return [self._solve_isolated(request) for request in batch]
        return self._run_pool_batch(
            batch,
            pool,
            workers,
            policy=policy,
            share_prepared=share_prepared,
            watchdog_seconds=watchdog_seconds,
        )

    def _run_pool_batch(
        self,
        batch: Sequence[SolveRequest],
        pool: ProcessPoolExecutor,
        workers: int,
        *,
        policy: RetryPolicy,
        share_prepared: bool,
        watchdog_seconds: Optional[float],
    ) -> List[SolveReport]:
        """The deadline-aware collection loop behind :meth:`solve_many`."""
        reports: List[Optional[SolveReport]] = [None] * len(batch)
        attempts = [0] * len(batch)  # submissions (pool or in-process)
        rebuilds_seen = [0] * len(batch)  # crash events each request lived through
        limits: List[Optional[float]] = [None] * len(batch)  # relative budgets
        deadlines: List[Optional[float]] = [None] * len(batch)  # stamped at start
        index_of: Dict[Future, int] = {}
        rebuilds = 0

        #: Requests waiting for a worker slot, as ``(idx, count_attempt)``.
        #: At most ``workers`` futures are ever outstanding (see ``pump``),
        #: so a queued request is held *here* — with no future and no
        #: deadline clock — never inside the executor's call queue, where
        #: its future would be marked running while it merely waits.
        pending: "deque[Tuple[int, bool]]" = deque()

        def submit(idx: int, *, count_attempt: bool = True) -> None:
            request = batch[idx]
            handle = self._shm_handle_for(request) if share_prepared else None
            if handle is None:
                future = pool.submit(_solve_request_json, request.to_json())
            else:
                future = pool.submit(
                    _solve_request_shm_json,
                    request.to_json(),
                    handle.name,
                    handle.fingerprint,
                )
            if count_attempt:
                attempts[idx] += 1
            index_of[future] = idx
            limit = None
            if request.time_budget is not None:
                limit = request.time_budget + policy.watchdog_grace_seconds
            if watchdog_seconds is not None:
                limit = (
                    watchdog_seconds if limit is None else min(limit, watchdog_seconds)
                )
            limits[idx] = limit
            # The deadline is *not* stamped here: the clock starts when a
            # worker actually picks the request up (see stamp_deadlines),
            # so a queued request cannot be declared overdue — and its
            # batch falsely aborted — just for waiting out earlier waves.
            deadlines[idx] = None

        def pump() -> None:
            """Feed pending requests to the pool, one per free worker slot.

            A crash *suspect* — a request that already lived through a
            pool crash and has not finished — is only ever submitted
            alone, with nothing else in flight: a further crash then
            implicates exactly that request, so poison attribution can
            never burn an innocent co-flier's attempts and declare it a
            crasher.  Quarantine serialises only the post-crash recovery
            wave; a healthy batch pumps at full width.
            """
            if any(rebuilds_seen[idx] for idx in index_of.values()):
                return  # a suspect is in flight alone; let it finish
            while pending and len(index_of) < workers:
                idx, count_attempt = pending[0]
                if rebuilds_seen[idx] and index_of:
                    return  # quarantine: wait for the pool to drain first
                try:
                    submit(idx, count_attempt=count_attempt)
                except (BrokenProcessPool, RuntimeError):
                    # The pool died (BrokenProcessPool) or was already
                    # terminated (submit-after-shutdown RuntimeError); leave
                    # the queue intact — the loop rebuilds before pumping
                    # again, via the crash path or the empty-pool guard.
                    return
                pending.popleft()
                if rebuilds_seen[idx]:
                    return  # the suspect flies solo

        def drain_pending_in_process() -> None:
            # No pool left to run them.  Pending requests were never in
            # flight during a crash, so serial in-process execution is as
            # safe for them as the documented ``parallel=False`` path.
            while pending:
                idx, _ = pending.popleft()
                solve_in_process(idx)

        def stamp_deadlines() -> None:
            now = time.perf_counter()
            for future, idx in index_of.items():
                if (
                    deadlines[idx] is None
                    and limits[idx] is not None
                    and future.running()
                ):
                    deadlines[idx] = now + limits[idx]

        def solve_in_process(idx: int) -> None:
            attempts[idx] += 1
            finish(idx, self._solve_isolated(batch[idx], attempts=attempts[idx]))

        def finish_crashed(idx: int, why: str) -> None:
            finish(
                idx,
                SolveReport.from_error(
                    batch[idx],
                    SolveError(
                        kind=ERROR_KIND_WORKER_CRASH,
                        message=f"worker process died executing this request ({why})",
                        attempts=attempts[idx],
                    ),
                ),
            )

        def finish(idx: int, report: SolveReport) -> None:
            if report.error is not None and report.error.attempts != attempts[idx]:
                report = dataclass_replace(
                    report,
                    error=dataclass_replace(report.error, attempts=attempts[idx]),
                )
            increments = {}
            if attempts[idx] > 1:
                increments["worker_retries"] = attempts[idx] - 1
            if rebuilds_seen[idx]:
                increments["pool_rebuilds"] = rebuilds_seen[idx]
            if increments:
                report = _with_stat_increments(report, **increments)
            reports[idx] = report

        def next_timeout() -> Optional[float]:
            stamped = [
                deadlines[idx]
                for idx in index_of.values()
                if deadlines[idx] is not None
            ]
            timeout = None
            if stamped:
                timeout = max(0.0, min(stamped) - time.perf_counter())
            if any(
                deadlines[idx] is None and limits[idx] is not None
                for idx in index_of.values()
            ):
                # Some budgeted request has not been stamped yet: poll so
                # its deadline starts promptly once a worker picks it up.
                timeout = (
                    _WATCHDOG_POLL_SECONDS
                    if timeout is None
                    else min(timeout, _WATCHDOG_POLL_SECONDS)
                )
            return timeout

        try:
            pending.extend((idx, True) for idx in range(len(batch)))
            while index_of or pending:
                pump()
                if not index_of:
                    # The pool refused every submission (it broke before
                    # accepting work): rebuild it or finish the remainder.
                    self._terminate_pool(pool)
                    rebuilds += 1
                    rebuilt = (
                        self._make_pool(workers)
                        if rebuilds <= policy.max_pool_rebuilds
                        else None
                    )
                    if rebuilt is None:
                        drain_pending_in_process()
                    else:
                        pool = rebuilt
                    continue
                stamp_deadlines()
                done, _ = wait(
                    frozenset(index_of),
                    timeout=next_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                crashed: List[int] = []
                for future in done:
                    idx = index_of.pop(future)
                    failure = future.exception()
                    if failure is None:
                        report = SolveReport.from_json(future.result())
                        if (
                            report.status == STATUS_ERROR
                            and report.error is not None
                            and report.error.kind in policy.retryable_kinds
                            and attempts[idx] < policy.max_attempts
                        ):
                            pending.append((idx, True))
                        else:
                            finish(idx, report)
                    elif isinstance(failure, BrokenProcessPool):
                        crashed.append(idx)
                    else:
                        # The worker boundary should make this unreachable
                        # (cancellation, pickling failures); keep the batch
                        # alive regardless.
                        finish(
                            idx,
                            _error_report(batch[idx], failure, attempts=attempts[idx]),
                        )
                if crashed:
                    # A dead worker breaks the whole executor: every future
                    # not already done is lost with it.
                    for future in list(index_of):
                        crashed.append(index_of.pop(future))
                    crashed.sort()
                    self._terminate_pool(pool)
                    for idx in crashed:
                        rebuilds_seen[idx] += 1
                    retry = [
                        idx for idx in crashed if attempts[idx] < policy.max_attempts
                    ]
                    isolate = [
                        idx for idx in crashed if attempts[idx] >= policy.max_attempts
                    ]
                    if retry:
                        rebuilds += 1
                        if rebuilds > policy.max_pool_rebuilds:
                            # Rebuild budget exhausted: finish the crash
                            # cohort without a pool — in-process only on
                            # explicit opt-in, because one of these requests
                            # is likely the crasher and a genuine
                            # segfault/OOM would take the parent (and every
                            # collected report) with it.  Queued requests
                            # were never implicated; run them serially.
                            for idx in crashed:
                                if policy.in_process_fallback:
                                    solve_in_process(idx)
                                else:
                                    finish_crashed(
                                        idx, "pool rebuild budget exhausted"
                                    )
                            drain_pending_in_process()
                            continue
                        time.sleep(policy.backoff_for(rebuilds))
                        rebuilt = self._make_pool(workers)
                        if rebuilt is None:
                            for idx in crashed:
                                if policy.in_process_fallback:
                                    solve_in_process(idx)
                                else:
                                    finish_crashed(idx, "pool rebuild refused")
                            drain_pending_in_process()
                            continue
                        pool = rebuilt
                        pending.extendleft((idx, True) for idx in reversed(retry))
                    # Poison isolation: a request out of pool submissions is
                    # finished as a worker_crash error report — or, on
                    # explicit opt-in, gets one final in-process run through
                    # the same fault boundary (worker-scoped injected faults
                    # are inert there; real crashers are not).
                    for idx in isolate:
                        if policy.in_process_fallback:
                            solve_in_process(idx)
                        else:
                            finish_crashed(idx, "pool submissions exhausted")
                    continue
                # Watchdog: requests overdue past their *started* deadline
                # (stamped only once their future was running) are aborted
                # and their (presumed hung) workers reclaimed by terminating
                # the pool — a running task cannot be cancelled.
                now = time.perf_counter()
                overdue = [
                    (future, idx)
                    for future, idx in index_of.items()
                    if deadlines[idx] is not None
                    and now > deadlines[idx]
                    and not future.done()
                ]
                if overdue:
                    hung: List[int] = []
                    requeue: List[int] = []
                    for future, idx in overdue:
                        index_of.pop(future)
                        if future.cancel():
                            # The future never actually ran (its deadline
                            # was stamped while it sat prefetched in the
                            # call queue): nothing to abort — requeue it.
                            requeue.append(idx)
                            continue
                        hung.append(idx)
                        finish(
                            idx,
                            SolveReport.from_error(
                                batch[idx],
                                SolveError(
                                    kind=ERROR_KIND_TIMEOUT,
                                    message=(
                                        "watchdog: worker produced no report "
                                        "before the request deadline"
                                    ),
                                    attempts=attempts[idx],
                                ),
                                status=STATUS_ABORTED,
                            ),
                        )
                    if not hung:
                        # Nothing actually hung — the pool is healthy.
                        pending.extendleft(
                            (idx, False) for idx in sorted(requeue, reverse=True)
                        )
                        continue
                    self._terminate_pool(pool)
                    survivors = sorted(set(index_of.values()) | set(requeue))
                    index_of.clear()
                    if survivors:
                        # Innocent bystanders of the termination: their
                        # resubmission neither burns an attempt nor accrues
                        # retry/rebuild stats in their reports — the
                        # batch-level rebuild budget still bounds the loop.
                        rebuilds += 1
                        rebuilt = (
                            self._make_pool(workers)
                            if rebuilds <= policy.max_pool_rebuilds
                            else None
                        )
                        if rebuilt is None:
                            for idx in survivors:
                                solve_in_process(idx)
                            drain_pending_in_process()
                        else:
                            pool = rebuilt
                            pending.extendleft(
                                (idx, False) for idx in reversed(survivors)
                            )
        finally:
            # Abort path: never leave submitted work running behind a
            # raised exception — cancel what has not started and drop the
            # queue without blocking on in-flight solves.
            if index_of:
                for future in list(index_of):
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        for idx, report in enumerate(reports):
            if report is None:  # pragma: no cover - loop invariant backstop
                reports[idx] = SolveReport.from_error(
                    batch[idx],
                    SolveError(
                        kind=ERROR_KIND_INTERNAL,
                        message="batch loop lost this request",
                        attempts=attempts[idx],
                    ),
                )
        return [report for report in reports if report is not None]

    def _solve_isolated(self, request: SolveRequest, *, attempts: int = 1) -> SolveReport:
        """In-process execution behind the same fault boundary as workers."""
        report = _guarded_solve(request, engine=self)
        if report.error is not None and report.error.attempts != attempts:
            report = dataclass_replace(
                report, error=dataclass_replace(report.error, attempts=attempts)
            )
        return report

    @staticmethod
    def _make_pool(workers: int) -> Optional[ProcessPoolExecutor]:
        """Build a process pool, or ``None`` where the platform refuses."""
        try:
            return ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError):
            return None

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool: kill its workers and drop queued work.

        ``Future.cancel`` cannot reclaim a *running* task and a hung or
        poisoned worker never returns, so the only way to get the slot
        back is to terminate the worker processes.  ``_processes`` is
        stdlib-private, hence the guarded access: when it is missing the
        shutdown below still prevents new work, we just cannot reclaim
        the stuck process early.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                continue
        pool.shutdown(wait=False, cancel_futures=True)

    def _shm_handle_for(self, request: SolveRequest) -> Optional[PreparedGraphShm]:
        """Publish the request's prepared graph, or ``None`` to ship JSON.

        Sharing only applies when the backend actually consumes prepared
        snapshots (and ``auto`` would not resolve to the dense solver,
        which ignores them).  Expected failures degrade to the plain
        JSON path — an unknown backend or a spec that does not
        materialise makes the worker produce the canonical error report,
        and shm-filesystem pressure (``OSError``/``MemoryError``) just
        costs a re-preparation — but each degradation is counted in
        :meth:`PreparedGraphCache.stats`, and an *unexpected* exception
        kind additionally emits a ``RuntimeWarning`` instead of being
        swallowed: the handoff never changes what a batch computes, yet
        a systematic failure must not stay silent.
        """
        try:
            solver = get_backend(request.backend)
        except InvalidParameterError:
            # Unknown backend: the worker raises the canonical error.
            return None
        if not solver.info.supports_prepared:
            return None
        try:
            faults.hit("shm.export", key=request.tag or "")
            graph = request.graph.materialise()
            resolved = request.backend
            if resolved == "auto":
                from repro.api.backends import resolve_auto

                resolved = resolve_auto(graph)
            if resolved == "dense":
                return None
            prepared, _ = self.prepared_cache.get(graph)
            return _PREPARED_EXPORTS.export(prepared)
        except (InvalidParameterError, InjectedFault):
            # The spec does not materialise (the worker will report the
            # canonical error) or an injected export fault.
            self.prepared_cache.handoff_degradations += 1
            return None
        except (OSError, MemoryError):
            # Shared-memory pressure (full /dev/shm, fd limits): the
            # sanctioned degradation — workers re-prepare from JSON.
            self.prepared_cache.handoff_degradations += 1
            return None
        except Exception as exc:
            self.prepared_cache.handoff_degradations += 1
            warnings.warn(
                f"shared-memory handoff degraded to the JSON path on an "
                f"unexpected {type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def shutdown(self) -> None:
        """Destroy every shared-memory segment this process published.

        Cached :class:`PreparedGraph` bundles stay usable — they own
        their buffers; only the published segments (the cross-process
        transport) are torn down, along with the parallel-S3 worker pool
        (whose workers hold attachments to those segments).  Safe to
        call repeatedly and from any engine instance: the export
        registry is process-wide, exactly like the segments themselves.
        Also runs at interpreter exit via ``atexit``, so an un-shut-down
        engine still cannot leak segments past the process.
        """
        from repro.api import parallel

        parallel.shutdown()
        _PREPARED_EXPORTS.release_all()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        graph: BipartiteGraph,
        *,
        backend: str,
        kernel: str,
        node_budget: Optional[int],
        time_budget: Optional[float],
        seed: int,
        **backend_options: object,
    ) -> Tuple[MBBResult, str, str]:
        """Validate, build the shared context, run the backend."""
        solver = get_backend(backend)
        self._validate(solver, kernel, node_budget, time_budget)
        if (
            backend_options.get("parallel_s3") is not None
            and not solver.info.supports_prepared
        ):
            # Parallel S3 is a property of the sparse framework's
            # verification stage; only snapshot-consuming backends
            # (sparse, auto) have one to parallelise.
            raise InvalidParameterError(
                f"backend {solver.info.name!r} does not support parallel_s3"
            )
        # The time budget is expressed solely as an absolute deadline so
        # enter_node pays one clock read per search node, and so the
        # cutoff survives the context being handed across solver stages.
        context = SearchContext(node_budget=node_budget)
        if time_budget is not None:
            context.deadline = time.perf_counter() + time_budget
        resolved = backend
        if backend == "auto":
            from repro.api.backends import resolve_auto

            resolved = resolve_auto(graph)
        if (
            solver.info.supports_prepared
            and "prepared" not in backend_options
            # ``auto`` resolving to the dense solver would drop the
            # snapshot unused — don't pollute the cache for it.
            and resolved != "dense"
        ):
            prepare_start = time.perf_counter()
            prepared, hit = self.prepared_cache.get(graph)
            context.stats.prepare_seconds += time.perf_counter() - prepare_start
            if hit:
                context.stats.prepared_cache_hits += 1
            else:
                context.stats.prepared_cache_misses += 1
            backend_options["prepared"] = prepared
        result = solver.run(graph, context, kernel=kernel, seed=seed, **backend_options)
        return result, resolved, kernel

    @staticmethod
    def _validate(
        solver: SolverBackend,
        kernel: str,
        node_budget: Optional[int],
        time_budget: Optional[float],
    ) -> None:
        if kernel not in _KERNELS:
            raise InvalidParameterError(
                f"unknown kernel {kernel!r}; expected one of {_KERNELS}"
            )
        info = solver.info
        if info.kernels and kernel not in info.kernels:
            raise InvalidParameterError(
                f"backend {info.name!r} supports kernels {info.kernels}, got {kernel!r}"
            )
        if not info.supports_budgets and (
            node_budget is not None or time_budget is not None
        ):
            raise InvalidParameterError(
                f"backend {info.name!r} does not support node/time budgets"
            )
        if node_budget is not None and node_budget < 0:
            raise InvalidParameterError(
                f"node_budget must be non-negative, got {node_budget}"
            )
        if time_budget is not None and time_budget < 0:
            raise InvalidParameterError(
                f"time_budget must be non-negative, got {time_budget}"
            )


def _solve_graph_with_default_engine(
    graph: BipartiteGraph, **options: object
) -> MBBResult:
    """Module-level engine entry point for :func:`repro.mbb.solver.solve_mbb`.

    A fresh :class:`MBBEngine` per call is cheap — the expensive state
    (the prepared-graph cache) is process-wide and shared by default.
    Module-level (not a lambda/closure) so the reference stays picklable
    if it ever crosses a pool boundary (RPL004 discipline).
    """
    return MBBEngine().solve_graph(graph, **options)


# Dependency inversion for the layering contract (RPL007): the kernel
# layer's solve_mbb must not import this service module, so the engine
# installs itself into the solver's registration hook at import time.
_solver.register_engine(_solve_graph_with_default_engine)
