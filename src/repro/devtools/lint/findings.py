"""The :class:`Finding` record and its deterministic ordering.

A finding is one rule violation at one source location.  Findings are
value objects: the analyzer produces them in whatever order the rules
visit the AST, then sorts them by :meth:`Finding.sort_key` so output,
baselines and exit codes are reproducible run to run.

The :attr:`Finding.fingerprint` deliberately excludes the line and
column: a baseline entry keyed by fingerprint survives unrelated edits
that shift code up or down, which is what makes a checked-in baseline
practical (the same design as pylint/ruff ``--add-noqa`` baselines).
Because fingerprints collapse repeated identical findings in one file,
the baseline stores a *count* per fingerprint (see
:mod:`repro.devtools.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Project-root-relative POSIX path of the offending file.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 1-based column of the offending node (``ast`` columns are 0-based;
    #: rules convert so locations match editor conventions).
    column: int
    #: Rule code, e.g. ``"RPL001"`` (``"RPL000"`` marks a parse failure).
    code: str
    #: Human message.  Stable — never embeds line numbers or timings —
    #: because it is part of the baseline fingerprint.
    message: str

    @property
    def location(self) -> str:
        """``path:line:column`` in the conventional clickable form."""
        return f"{self.path}:{self.line}:{self.column}"

    @property
    def fingerprint(self) -> str:
        """Line-free identity used by the baseline (path + code + message)."""
        return f"{self.path}::{self.code}::{self.message}"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Total order: path, then line, column, code, message."""
        return (self.path, self.line, self.column, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for ``--json`` output and the baseline file."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by baseline round-trips)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            column=int(payload["column"]),  # type: ignore[arg-type]
            code=str(payload["code"]),
            message=str(payload["message"]),
        )


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Return ``findings`` as a list in the canonical deterministic order."""
    return sorted(findings, key=Finding.sort_key)
