"""Flat CSR adjacency snapshot of a :class:`BipartiteGraph`.

The label-keyed adjacency sets of :class:`~repro.graph.bipartite.
BipartiteGraph` are the right shape for the solvers (set intersections,
membership tests), but they throttle the *decomposition* algorithms whose
inner loops only ever walk neighbourhoods: every visited neighbour costs a
hash lookup on a ``(side, label)`` tuple.  :class:`CSRBipartite` is the
flat counterpart — the whole graph mapped once onto dense integer vertex
ids with the adjacency lists packed into two flat int arrays in the
classic compressed-sparse-row layout:

* vertex ids are ``0 .. n-1`` with the left side first: left labels get
  ``0 .. num_left-1`` and right labels get ``num_left .. n-1``, each side
  sorted by ``repr(label)`` so the id assignment is deterministic for any
  mix of label types (the same convention as
  :meth:`~repro.graph.bipartite.BipartiteGraph.to_biadjacency`);
* ``indices[indptr[i]:indptr[i + 1]]`` holds the neighbour ids of vertex
  ``i`` in ascending order, so walking a neighbourhood is a flat slice of
  small ints — no tuples, no hashing.

The id order doubles as the canonical deterministic tie-break of the
bicore engine (:mod:`repro.cores.bicore`): comparing two vertices by id is
exactly comparing them by ``(side, repr(label))``, which is what lets the
bucket, heap and oracle peels agree on one total order.

The arrays are flat int buffers from :mod:`repro.graph.buffers` —
``array('q')`` by default, numpy or plain lists by backend selection.
The typed backends store eight bytes per element in one contiguous
allocation, ship through :mod:`multiprocessing.shared_memory` as raw
bytes, and make :meth:`CSRBipartite.neighbors` a zero-copy
``memoryview`` window instead of a fresh list per call.  The pure-list
backend (``REPRO_BUFFER_BACKEND=list``) keeps the historical
representation as the no-deps fallback.

A snapshot is immutable by convention: it does not track later mutations
of the source graph, exactly like :class:`~repro.graph.bitset.
IndexedBitGraph` (and by machine check — RPL005).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.buffers import (
    IntBuffer,
    buffer_view,
    freeze_buffer,
    pickleable_buffer,
)

VertexKey = Tuple[str, Vertex]


def sorted_vertex_keys(
    left: Iterable[Vertex], right: Iterable[Vertex]
) -> Tuple[List[VertexKey], int]:
    """The canonical dense-id key order: left side first, repr-sorted.

    Shared by :meth:`CSRBipartite.from_bipartite` and the shared-memory
    rebuild path so both produce the same id assignment for the same
    graph.  Returns ``(keys, num_left)``.
    """
    left_sorted = sorted(left, key=repr)
    right_sorted = sorted(right, key=repr)
    keys: List[VertexKey] = [(LEFT, u) for u in left_sorted]
    keys.extend((RIGHT, v) for v in right_sorted)
    return keys, len(left_sorted)


class CSRBipartite:
    """Immutable CSR view of a bipartite graph over dense vertex ids."""

    __slots__ = (
        "keys",
        "indptr",
        "indices",
        "num_left",
        "num_right",
        "_index",
        "_rows",
    )

    def __init__(
        self,
        keys: List[VertexKey],
        indptr: Sequence[int],
        indices: Sequence[int],
        num_left: int,
        *,
        backend: Optional[str] = None,
    ) -> None:
        self.keys = keys
        self.indptr: IntBuffer = freeze_buffer(indptr, backend)
        self.indices: IntBuffer = freeze_buffer(indices, backend)
        self.num_left = num_left
        self.num_right = len(keys) - num_left
        self._index: Dict[VertexKey, int] = {key: i for i, key in enumerate(keys)}
        # One cached slice-cheap view over the neighbour array: typed
        # backends slice it zero-copy, the list backend falls back to
        # list-slice semantics.
        self._rows = buffer_view(self.indices)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bipartite(cls, graph: BipartiteGraph) -> "CSRBipartite":
        """Index ``graph`` once into the flat CSR form."""
        keys, num_left = sorted_vertex_keys(
            graph.left_vertices(), graph.right_vertices()
        )
        left = [label for _, label in keys[:num_left]]
        right = [label for _, label in keys[num_left:]]
        left_id = {u: i for i, u in enumerate(left)}
        right_id = {v: num_left + j for j, v in enumerate(right)}
        indptr = [0] * (len(keys) + 1)
        indices: List[int] = []
        for i, u in enumerate(left):
            indices.extend(sorted(right_id[v] for v in graph.neighbors_left(u)))
            indptr[i + 1] = len(indices)
        for j, v in enumerate(right):
            indices.extend(sorted(left_id[u] for u in graph.neighbors_right(v)))
            indptr[num_left + j + 1] = len(indices)
        return cls(keys, indptr, indices, num_left)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Total number of vertices ``|L| + |R|``."""
        return len(self.keys)

    @property
    def num_edges(self) -> int:
        """Number of edges (each contributes one entry per direction)."""
        return len(self.indices) // 2

    def index_of(self, key: VertexKey) -> int:
        """Dense id of a ``(side, label)`` key."""
        return self._index[key]

    def key_of(self, vertex: int) -> VertexKey:
        """``(side, label)`` key of a dense id."""
        return self.keys[vertex]

    def is_left(self, vertex: int) -> bool:
        """``True`` when the id belongs to the left side."""
        return vertex < self.num_left

    def degree(self, vertex: int) -> int:
        """Degree of the vertex with the given dense id."""
        return int(self.indptr[vertex + 1]) - int(self.indptr[vertex])

    def neighbors(self, vertex: int) -> Sequence[int]:
        """Neighbour ids of ``vertex``, ascending.

        Under the typed backends this is a zero-copy view into the flat
        neighbour array (a ``memoryview``/ndarray slice) — iterate,
        index or ``list(...)`` it, but do not assume list identity or
        mutate it.  Under the list backend it is a fresh list slice, the
        historical semantics.
        """
        return self._rows[int(self.indptr[vertex]) : int(self.indptr[vertex + 1])]

    def __len__(self) -> int:
        return len(self.keys)

    # ------------------------------------------------------------------
    # pickling — drops the derived index/view state and converts any
    # zero-copy shared-memory views back to owned arrays, so a snapshot
    # attached via shm still crosses process boundaries when it must.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (
            self.keys,
            pickleable_buffer(self.indptr),
            pickleable_buffer(self.indices),
            self.num_left,
        )

    def __setstate__(self, state) -> None:
        keys, indptr, indices, num_left = state
        self.__init__(keys, indptr, indices, num_left)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRBipartite(|L|={self.num_left}, |R|={self.num_right}, "
            f"|E|={self.num_edges})"
        )
