"""Tests for the bipartite complement construction."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.complement import (
    bipartite_complement,
    complement_density,
    max_missing_degree,
    missing_degree_left,
    missing_degree_right,
)
from repro.graph.generators import complete_bipartite, crown_graph, random_bipartite
from repro.graph.validation import check_consistent


class TestBipartiteComplement:
    def test_complement_of_complete_graph_has_no_edges(self):
        graph = complete_bipartite(4, 5)
        complement = bipartite_complement(graph)
        assert complement.num_edges == 0
        assert complement.left == graph.left
        assert complement.right == graph.right

    def test_complement_of_empty_graph_is_complete(self):
        graph = BipartiteGraph(left=[0, 1], right=[0, 1, 2])
        complement = bipartite_complement(graph)
        assert complement.num_edges == 6

    def test_complement_is_involution(self):
        graph = random_bipartite(6, 7, 0.4, seed=3)
        assert bipartite_complement(bipartite_complement(graph)) == graph

    def test_edge_counts_sum_to_full_grid(self):
        graph = random_bipartite(5, 8, 0.3, seed=11)
        complement = bipartite_complement(graph)
        assert graph.num_edges + complement.num_edges == 5 * 8
        check_consistent(complement)

    def test_crown_graph_complement_is_perfect_matching(self):
        graph = crown_graph(5)
        complement = bipartite_complement(graph)
        assert complement.num_edges == 5
        assert all(complement.degree_left(u) == 1 for u in complement.left_vertices())

    def test_isolated_vertices_are_preserved(self):
        graph = BipartiteGraph(left=[1, 2], right=["a"], edges=[(1, "a")])
        complement = bipartite_complement(graph)
        assert complement.left == {1, 2}
        assert complement.has_edge(2, "a")
        assert not complement.has_edge(1, "a")


class TestMissingDegrees:
    def test_missing_degree_left_and_right(self):
        graph = BipartiteGraph(left=[0, 1], right=[0, 1, 2], edges=[(0, 0), (0, 1)])
        assert missing_degree_left(graph, 0) == 1
        assert missing_degree_left(graph, 1) == 3
        assert missing_degree_right(graph, 2) == 2

    def test_max_missing_degree_matches_complement_max_degree(self):
        graph = random_bipartite(6, 6, 0.5, seed=7)
        complement = bipartite_complement(graph)
        assert max_missing_degree(graph) == complement.max_degree()

    def test_max_missing_degree_of_complete_graph_is_zero(self):
        assert max_missing_degree(complete_bipartite(3, 4)) == 0


class TestComplementDensity:
    def test_complement_density_is_one_minus_density(self):
        graph = random_bipartite(5, 5, 0.32, seed=2)
        assert complement_density(graph) == pytest.approx(1.0 - graph.density)

    def test_complement_density_of_empty_side(self):
        graph = BipartiteGraph(left=[1])
        assert complement_density(graph) == 0.0
