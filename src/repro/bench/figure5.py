"""Figure 5 — average exhaustive-search depth over δ̈ for the three orders.

For every tough dataset, the sparse framework is run once with each total
search order (maximum degree, degeneracy, bidegeneracy) and the average
depth of the dense-solver recursion during the verification stage is
reported, normalised by the dataset's bidegeneracy.

Expected shape: the bidegeneracy order yields by far the smallest ratio
(well below one), with degeneracy second and degree order last — the
bidegeneracy order both shrinks the centred subgraphs and tightens the
local bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import search_depth_ratio
from repro.bench.harness import format_table
from repro.cores.bicore import bidegeneracy
from repro.cores.orders import ORDER_BIDEGENERACY, ORDER_DEGENERACY, ORDER_DEGREE
from repro.workloads.datasets import DATASETS, TOUGH_DATASETS


def run_figure5(
    dataset_names: Sequence[str] = TOUGH_DATASETS,
    *,
    time_budget: Optional[float] = 15.0,
) -> List[Dict[str, object]]:
    """Compute the depth-over-δ̈ ratios for every requested dataset."""
    rows: List[Dict[str, object]] = []
    for index, name in enumerate(dataset_names, start=1):
        graph = DATASETS[name].generate()
        ratios = search_depth_ratio(graph, time_budget=time_budget)
        rows.append(
            {
                "label": f"D{index}",
                "dataset": name,
                "bidegeneracy": bidegeneracy(graph),
                "maxDeg": ratios[ORDER_DEGREE],
                "degeneracy": ratios[ORDER_DEGENERACY],
                "bi-degeneracy": ratios[ORDER_BIDEGENERACY],
            }
        )
    return rows


def format_figure5(rows: Sequence[Dict[str, object]]) -> str:
    """Render the Figure 5 series as a table."""
    return format_table(
        rows,
        ["label", "dataset", "bidegeneracy", "maxDeg", "degeneracy", "bi-degeneracy"],
    )
