"""Tests for the bridging (Algorithm 6) and verification (Algorithm 8) stages."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    grid_union_of_bicliques,
    planted_balanced_biclique,
    random_bipartite,
    random_power_law_bipartite,
)
from repro.cores.core import degeneracy
from repro.cores.orders import ORDER_BIDEGENERACY, ORDER_DEGREE
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.verify import verify_mbb
from repro.baselines.brute_force import brute_force_side_size


class TestBridgeMBB:
    def test_empty_graph(self):
        context = SearchContext()
        outcome = bridge_mbb(BipartiteGraph(), context)
        assert outcome.exhausted
        assert outcome.best.side_size == 0

    def test_pruning_with_strong_incumbent_removes_everything(self):
        graph = random_bipartite(12, 12, 0.2, seed=1)
        context = SearchContext()
        # Give the context an incumbent that is certainly at least as large
        # as anything in this sparse graph.
        context.offer(range(100, 108), range(200, 208))
        outcome = bridge_mbb(graph, context)
        assert outcome.exhausted

    def test_local_heuristic_improves_incumbent_on_planted_graph(self):
        graph = planted_balanced_biclique(40, 40, 6, background_density=0.02, seed=3)
        context = SearchContext()
        outcome = bridge_mbb(graph, context)
        assert outcome.best.side_size >= 5

    def test_surviving_subgraphs_have_enough_vertices(self):
        graph = random_bipartite(20, 20, 0.25, seed=4)
        context = SearchContext()
        context.offer([0, 1], [0, 1])
        outcome = bridge_mbb(graph, context)
        for sub in outcome.surviving:
            assert min(sub.graph.num_left, sub.graph.num_right) >= context.best_side + 1

    def test_statistics_are_populated(self):
        graph = random_bipartite(15, 15, 0.3, seed=5)
        context = SearchContext()
        bridge_mbb(graph, context)
        assert context.stats.subgraphs_generated == graph.num_vertices

    @pytest.mark.parametrize("order_name", [ORDER_DEGREE, ORDER_BIDEGENERACY])
    def test_bridge_plus_verify_reaches_optimum(self, order_name):
        for seed in range(6):
            graph = random_bipartite(9, 9, 0.5, seed=seed)
            optimum = brute_force_side_size(graph)
            context = SearchContext()
            outcome = bridge_mbb(graph, context, order=order_name)
            verify_mbb(outcome.surviving, context)
            assert context.best_side == optimum


class TestBridgeKernels:
    """Property tests: the bits and sets S2 kernels are interchangeable."""

    @pytest.mark.parametrize("seed", range(12))
    def test_surviving_subgraphs_identical(self, seed):
        graph = random_bipartite(18, 18, 0.3, seed=seed)
        context_bits = SearchContext()
        context_sets = SearchContext()
        bits = bridge_mbb(graph, context_bits, kernel=KERNEL_BITS)
        sets = bridge_mbb(graph, context_sets, kernel=KERNEL_SETS)
        assert [sub.center for sub in bits.surviving] == [
            sub.center for sub in sets.surviving
        ]
        assert context_bits.best == context_sets.best
        assert bits.local_heuristic_best == sets.local_heuristic_best
        assert (
            context_bits.stats.subgraphs_pruned
            == context_sets.stats.subgraphs_pruned
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_surviving_subgraphs_identical_power_law(self, seed):
        graph = random_power_law_bipartite(40, 40, 3.0, seed=seed)
        context_bits = SearchContext()
        context_sets = SearchContext()
        bits = bridge_mbb(graph, context_bits, kernel=KERNEL_BITS)
        sets = bridge_mbb(graph, context_sets, kernel=KERNEL_SETS)
        assert [sub.center for sub in bits.surviving] == [
            sub.center for sub in sets.surviving
        ]
        assert context_bits.best == context_sets.best

    @pytest.mark.parametrize("kernel", [KERNEL_BITS, KERNEL_SETS])
    def test_degeneracy_cached_on_survivors(self, kernel):
        graph = random_bipartite(16, 16, 0.35, seed=9)
        context = SearchContext()
        outcome = bridge_mbb(graph, context, kernel=kernel)
        for sub in outcome.surviving:
            assert sub.degeneracy is not None
            assert sub.degeneracy == degeneracy(sub.graph)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(InvalidParameterError):
            bridge_mbb(random_bipartite(4, 4, 0.5, seed=1), SearchContext(), kernel="quantum")

    def test_precomputed_order_matches_internal(self):
        from repro.cores.orders import search_order

        graph = random_bipartite(15, 15, 0.3, seed=4)
        order = search_order(graph, ORDER_BIDEGENERACY)
        with_order = bridge_mbb(graph, SearchContext(), total_order=order)
        without = bridge_mbb(graph, SearchContext())
        assert [sub.center for sub in with_order.surviving] == [
            sub.center for sub in without.surviving
        ]

    def test_mismatched_precomputed_order_rejected(self):
        from repro.cores.orders import search_order

        graph = random_bipartite(10, 10, 0.4, seed=5)
        other = random_bipartite(12, 12, 0.4, seed=6)
        stale_order = search_order(other, ORDER_BIDEGENERACY)
        with pytest.raises(InvalidParameterError):
            bridge_mbb(graph, SearchContext(), total_order=stale_order)


class TestBridgeBudgets:
    def test_cancel_hook_mid_s2_aborts_within_one_subgraph(self):
        graph = random_bipartite(25, 25, 0.3, seed=11)
        context = SearchContext()
        cutoff = 5
        context.cancel_hook = (
            lambda: context.stats.subgraphs_generated >= cutoff
        )
        outcome = bridge_mbb(graph, context)
        assert context.aborted and context.cancelled
        # The hook fired once `cutoff` subgraphs had been generated; the
        # checkpoint before the next subgraph must be the last poll.
        assert context.stats.subgraphs_generated == cutoff
        assert outcome.best.is_valid_in(graph)

    def test_checkpoint_does_not_inflate_node_stats(self):
        graph = random_bipartite(15, 15, 0.3, seed=12)
        context = SearchContext()
        bridge_mbb(graph, context)
        # Bridging only checkpoints; search nodes belong to S3.
        assert context.stats.nodes == 0

    def test_expired_deadline_aborts_immediately(self):
        import time

        graph = random_bipartite(15, 15, 0.3, seed=13)
        context = SearchContext()
        context.deadline = time.perf_counter() - 1.0
        outcome = bridge_mbb(graph, context)
        assert context.aborted
        assert context.stats.subgraphs_generated == 0
        # An aborted scan with no survivors is *not* exhaustion: subgraphs
        # it never reached could still hold an improvement.
        assert outcome.aborted
        assert not outcome.exhausted


class TestVerifyMBB:
    def test_verify_on_no_subgraphs_keeps_incumbent(self):
        context = SearchContext()
        context.offer([1], [2])
        best = verify_mbb([], context)
        assert best.side_size == 1

    def test_verify_improves_on_union_of_blocks(self):
        graph = grid_union_of_bicliques([4, 2])
        context = SearchContext()
        outcome = bridge_mbb(graph, context, use_local_heuristic=False)
        verify_mbb(outcome.surviving, context)
        assert context.best_side == 4

    def test_verify_without_core_pruning_still_correct(self):
        graph = random_bipartite(8, 8, 0.6, seed=7)
        optimum = brute_force_side_size(graph)
        context = SearchContext()
        outcome = bridge_mbb(graph, context, use_core_pruning=False)
        verify_mbb(outcome.surviving, context, use_core_pruning=False)
        assert context.best_side == optimum

    def test_verify_respects_time_budget(self):
        graph = complete_bipartite(12, 12)
        context = SearchContext(node_budget=1)
        outcome = bridge_mbb(graph, context, use_local_heuristic=False)
        # With a one-node budget the verification aborts but must still
        # return a valid (possibly sub-optimal) incumbent.
        best = verify_mbb(outcome.surviving, context)
        assert best.is_valid_in(graph)
