#!/usr/bin/env python3
"""Quickstart: build a bipartite graph and find its maximum balanced biclique.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BipartiteGraph, bidegeneracy, degeneracy, solve_mbb


def main() -> None:
    # A small author-paper graph: authors on the left, papers on the right.
    edges = [
        ("alice", "p1"),
        ("alice", "p2"),
        ("alice", "p3"),
        ("bob", "p1"),
        ("bob", "p2"),
        ("bob", "p3"),
        ("carol", "p2"),
        ("carol", "p3"),
        ("dave", "p3"),
        ("erin", "p4"),
    ]
    graph = BipartiteGraph(edges=edges)
    print(f"graph: {graph}")
    print(f"density = {graph.density:.3f}")
    print(f"degeneracy = {degeneracy(graph)}, bidegeneracy = {bidegeneracy(graph)}")

    # One call does it all: `solve_mbb` picks the right algorithm (dense vs
    # sparse) and returns the optimum together with search statistics.
    result = solve_mbb(graph)
    biclique = result.biclique
    print()
    print(f"maximum balanced biclique side size: {result.side_size}")
    print(f"  authors : {sorted(biclique.left)}")
    print(f"  papers  : {sorted(biclique.right)}")
    print(f"  optimal : {result.optimal}")
    print(f"  explored nodes: {result.stats.nodes}")

    # Every author in the answer co-authored every paper in the answer.
    assert biclique.is_valid_in(graph)
    assert biclique.is_balanced


if __name__ == "__main__":
    main()
