"""Parallel S3: the process-pool verification stage vs the serial loop.

The contract under test (see :mod:`repro.api.parallel`): the parallel
stage always produces the same incumbent *size* as the serial stage —
across graph families, kernels, worker counts, injected worker faults
and pool crashes — and ``strict`` mode reproduces the identical witness
across worker counts.  Aborts (deadline, cancel hook) stop outstanding
tasks and report best-effort, never losing a delivered incumbent.
"""

from __future__ import annotations

import pytest

import repro.api  # noqa: F401  (registers the parallel S3 verifier)
from repro.api import GraphSpec, MBBEngine, SolveRequest
from repro.api import parallel
from repro.devtools import faults
from repro.devtools.faults import (
    ACTION_EXIT,
    ACTION_RAISE,
    SCOPE_WORKER,
    FaultPlan,
    FaultSpec,
)
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    random_bipartite,
    random_power_law_bipartite,
)
from repro.graph.prepared import PreparedGraph
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.sparse import SparseConfig, hbv_mbb
from repro.mbb.verify import (
    ParallelVerifyOptions,
    schedule_hardest_first,
    subgraph_hardness,
    verify_mbb,
)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """Chaos hygiene: no armed plan or env-keyed pool outlives a test."""
    yield
    faults.disarm()
    parallel.shutdown()


def mixed_label_graph(seed: int) -> BipartiteGraph:
    """A graph mixing int and str labels (and sharing labels across sides)."""
    base = random_bipartite(14, 14, 0.35, seed=seed)
    graph = BipartiteGraph()
    for u, v in base.edges():
        left = u if u % 2 == 0 else f"u{u}"
        right = v if v % 2 == 1 else f"v{v}"
        graph.add_edge(left, right)
    return graph


GRAPH_FAMILIES = {
    "random": lambda seed: random_bipartite(40, 40, 0.3, seed=seed),
    "power_law": lambda seed: random_power_law_bipartite(40, 40, 2.5, seed=seed),
    "mixed_label": mixed_label_graph,
}

#: Heuristic off so the verification stage actually receives survivors.
_SERIAL = SparseConfig(use_heuristic=False)


def _parallel_config(**overrides) -> SparseConfig:
    defaults = dict(
        use_heuristic=False,
        parallel_s3=True,
        parallel_s3_threshold=1,
        parallel_s3_workers=2,
    )
    defaults.update(overrides)
    return SparseConfig(**defaults)


def _surviving_family(graph, *, order="bidegeneracy"):
    """Bridge with the local heuristic off: a context plus survivors for
    driving ``verify_mbb`` directly."""
    context = SearchContext()
    prepared = PreparedGraph.prepare(graph)
    bridge = bridge_mbb(
        graph,
        context,
        prepared=prepared,
        total_order=prepared.search_order(order),
        use_local_heuristic=False,
    )
    return context, prepared, bridge.surviving


class TestSchedule:
    def test_hardest_first_orders_by_descending_bound(self):
        graph = random_bipartite(30, 30, 0.3, seed=1)
        _context, _prepared, surviving = _surviving_family(graph)
        assert len(surviving) >= 2
        ordered = schedule_hardest_first(surviving)
        bounds = [sub.min_side for sub in ordered]
        assert bounds == sorted(bounds, reverse=True)
        # Deterministic: ties broken by generation position.
        assert [subgraph_hardness(s) for s in ordered] == sorted(
            subgraph_hardness(s) for s in surviving
        )

    def test_serial_stage_consumes_the_shared_schedule(self):
        # The serial loop and the parallel dispatcher must search the
        # same subgraph at the same schedule slot: verify_mbb with no
        # parallel options still reorders hardest-first.
        graph = random_bipartite(30, 30, 0.3, seed=2)
        context, _prepared, surviving = _surviving_family(graph)
        baseline = SearchContext()
        baseline.offer_biclique(context.best)
        verify_mbb(list(reversed(surviving)), baseline)
        other = SearchContext()
        other.offer_biclique(context.best)
        verify_mbb(surviving, other)
        assert baseline.best.side_size == other.best.side_size


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("kernel", [KERNEL_BITS, KERNEL_SETS])
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    @pytest.mark.parametrize("seed", range(3))
    def test_same_incumbent_size(self, family, kernel, seed):
        graph = GRAPH_FAMILIES[family](seed)
        serial = hbv_mbb(graph, config=SparseConfig(use_heuristic=False, kernel=kernel))
        par = hbv_mbb(graph, config=_parallel_config(kernel=kernel))
        strict = hbv_mbb(
            graph, config=_parallel_config(kernel=kernel, parallel_s3_strict=True)
        )
        assert par.side_size == serial.side_size
        assert strict.side_size == serial.side_size
        assert par.optimal and strict.optimal and serial.optimal

    def test_dispatch_actually_happens(self):
        graph = random_bipartite(40, 40, 0.3, seed=0)
        result = hbv_mbb(graph, config=_parallel_config())
        assert result.stats.s3_tasks > 0
        assert result.stats.s3_parallel_workers == 2

    def test_full_config_unaffected_by_default(self):
        # parallel_s3 defaults off: the stock config never dispatches.
        graph = random_bipartite(40, 40, 0.3, seed=0)
        result = hbv_mbb(graph, config=SparseConfig(use_heuristic=False))
        assert result.stats.s3_tasks == 0
        assert result.stats.s3_parallel_workers == 0

    def test_node_budget_declines_parallel(self):
        # Slicing a deterministic node budget across racing processes is
        # undefined; the dispatcher declines and the serial loop runs.
        graph = random_bipartite(40, 40, 0.3, seed=3)
        config = _parallel_config(node_budget=10_000_000)
        result = hbv_mbb(graph, config=config)
        assert result.stats.s3_tasks == 0

    def test_strict_witness_identical_across_worker_counts(self):
        graph = random_bipartite(40, 40, 0.3, seed=5)
        witnesses = []
        for workers in (2, 3):
            result = hbv_mbb(
                graph,
                config=_parallel_config(
                    parallel_s3_workers=workers, parallel_s3_strict=True
                ),
            )
            witnesses.append(
                (
                    sorted(result.biclique.left, key=repr),
                    sorted(result.biclique.right, key=repr),
                )
            )
        assert witnesses[0] == witnesses[1]


class TestEngineAndWire:
    def test_engine_forwards_parallel_s3(self):
        engine = MBBEngine()
        spec = GraphSpec.random(40, 40, 0.3, seed=7)
        serial = engine.solve(SolveRequest(graph=spec, backend="sparse"))
        par = engine.solve(
            SolveRequest(graph=spec, backend="sparse", parallel_s3=True)
        )
        assert par.side_size == serial.side_size
        assert set(par.stats) >= {
            "s3_tasks",
            "s3_parallel_workers",
            "incumbent_broadcasts",
            "s3_pruned_by_broadcast",
        }

    def test_request_round_trips_parallel_s3(self):
        spec = GraphSpec.random(5, 5, 0.5, seed=0)
        on = SolveRequest(graph=spec, parallel_s3=True)
        off = SolveRequest(graph=spec)
        assert SolveRequest.from_json(on.to_json()).parallel_s3 is True
        assert SolveRequest.from_json(off.to_json()).parallel_s3 is None

    def test_dense_backend_rejects_parallel_s3(self):
        engine = MBBEngine()
        request = SolveRequest(
            graph=GraphSpec.random(6, 6, 0.5, seed=0),
            backend="dense",
            parallel_s3=True,
        )
        with pytest.raises(InvalidParameterError, match="parallel_s3"):
            engine.solve(request)


class TestAbort:
    def test_cancel_hook_mid_stage_aborts_outstanding_tasks(self):
        graph = random_bipartite(40, 40, 0.3, seed=1)
        context, prepared, surviving = _surviving_family(graph)
        assert len(surviving) >= 2
        incumbent_before = context.best.side_size

        calls = {"n": 0}

        def cancel_after_first_poll() -> bool:
            calls["n"] += 1
            return calls["n"] > 1

        context.cancel_hook = cancel_after_first_poll
        verify_mbb(
            surviving,
            context,
            prepared=prepared,
            order_name="bidegeneracy",
            parallel=ParallelVerifyOptions(workers=2, threshold=1),
        )
        assert context.aborted
        # The incumbent entering the stage is never lost to the abort.
        assert context.best.side_size >= incumbent_before

    def test_expired_deadline_reports_aborted_best_effort(self):
        graph = random_bipartite(40, 40, 0.3, seed=2)
        serial = hbv_mbb(graph, config=_SERIAL)
        context = SearchContext()
        context.deadline = 0.0  # expired before the stage starts
        result = hbv_mbb(graph, config=_parallel_config(), context=context)
        assert not result.optimal
        assert result.side_size <= serial.side_size


class TestChaos:
    def _serial_size(self, graph) -> int:
        return hbv_mbb(graph, config=_SERIAL).side_size

    def test_worker_solve_fault_degrades_to_serial(self, monkeypatch):
        # Every S3 task raises inside the worker's fault boundary; the
        # parent re-runs the whole family serially, same answer.
        graph = random_bipartite(40, 40, 0.3, seed=0)
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_RAISE,
                match="s3:",
                times=64,
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        result = hbv_mbb(graph, config=_parallel_config())
        assert result.side_size == self._serial_size(graph)
        assert result.optimal
        assert result.stats.s3_tasks > 0

    def test_worker_crash_rebuilds_then_recovers(self, monkeypatch):
        # Each worker process os._exit()s on its first S3 task: the pool
        # breaks, bounded rebuilds fire, and once the budget is spent the
        # remainder degrades to the serial loop — same answer, no lost
        # subgraphs.
        graph = random_bipartite(40, 40, 0.3, seed=5)
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_EXIT,
                match="s3:",
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        result = hbv_mbb(graph, config=_parallel_config())
        assert result.side_size == self._serial_size(graph)
        assert result.optimal
        assert result.stats.pool_rebuilds >= 1

    def test_budgets_still_fire_with_faults_armed(self, monkeypatch):
        graph = random_bipartite(40, 40, 0.3, seed=6)
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_RAISE,
                match="s3:",
                times=64,
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        context = SearchContext()
        context.deadline = 0.0
        result = hbv_mbb(graph, config=_parallel_config(), context=context)
        assert not result.optimal


class TestSharedIncumbentContext:
    def test_checkpoint_polls_shared_value(self):
        class _Channel:
            def __init__(self, value):
                self.value = value

        context = SearchContext(shared_best_side=_Channel(5), shared_poll_interval=1)
        context.checkpoint()
        assert context.best_side == 5
        assert context.stats.incumbent_broadcasts == 1

    def test_offer_publishes_improvements(self):
        class _Channel:
            def __init__(self, value):
                self.value = value

        channel = _Channel(0)
        context = SearchContext(shared_best_side=channel)
        context.offer({"a", "b"}, {"x", "y"})
        assert channel.value == 2

    def test_adopt_witness_bypasses_unconfirmed_floor(self):
        # The floor echoes a broadcast of this same witness; offer()
        # would reject it, adopt_witness() must keep the vertices.
        context = SearchContext(incumbent_floor=2)
        assert not context.offer({"a", "b"}, {"x", "y"})
        assert context.adopt_witness({"a", "b"}, {"x", "y"})
        assert context.best.side_size == 2

    def test_channel_failures_are_advisory(self):
        class _Broken:
            @property
            def value(self):
                raise OSError("channel torn down")

        context = SearchContext(shared_best_side=_Broken(), shared_poll_interval=1)
        context.checkpoint()  # poll swallows the failure
        context.offer({"a"}, {"x"})  # publish swallows the failure
        assert context.best.side_size == 1
