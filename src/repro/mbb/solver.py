"""Unified public solver API (a thin wrapper over the engine).

Most users should simply call :func:`solve_mbb` (or the even smaller
:func:`maximum_balanced_biclique`), which inspects the input graph and
dispatches to the dense-graph algorithm or to the sparse framework, the two
exact algorithms contributed by the paper.  Both are thin wrappers over
:class:`repro.api.engine.MBBEngine`: ``method`` is a backend name from the
:mod:`repro.api` registry (``auto``, ``dense``, ``sparse``, ``basic``,
``size-constrained``, the baselines, ...), so anything registered through
:func:`repro.api.register_backend` is reachable from here too.  For
structured requests, JSON reports and batch-parallel solves use the engine
directly.

Both exact solvers run on the indexed bitset kernel by default (see
:mod:`repro.mbb.dense`); pass ``kernel="sets"`` to force the original
adjacency-set implementation for ablations and comparisons.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.exceptions import SolverError
from repro.graph.bipartite import BipartiteGraph
from repro.mbb.dense import KERNEL_BITS
from repro.mbb.result import Biclique, MBBResult
from repro.mbb.sparse import SparseConfig

METHOD_AUTO = "auto"
METHOD_DENSE = "dense"
METHOD_SPARSE = "sparse"
METHOD_BASIC = "basic"

#: The historical core methods (the registry knows many more backends).
_METHODS = (METHOD_AUTO, METHOD_DENSE, METHOD_SPARSE, METHOD_BASIC)

#: Density threshold above which the dense solver is chosen automatically.
#: The paper targets ``denseMBB`` at graphs with density >= 0.7 but it is
#: already the better choice well below that; 0.4 keeps mid-density random
#: instances on the dense path while routing genuinely sparse data to the
#: bidegeneracy framework.
DENSE_DENSITY_THRESHOLD = 0.4
#: Graphs at most this many vertices are handed to the dense solver
#: regardless of density — constructing orders and centred subgraphs is not
#: worth it for tiny inputs.
SMALL_GRAPH_VERTICES = 64


def choose_method(graph: BipartiteGraph) -> str:
    """Pick ``dense`` or ``sparse`` for a graph the way ``auto`` does."""
    if graph.num_vertices <= SMALL_GRAPH_VERTICES:
        return METHOD_DENSE
    if graph.density >= DENSE_DENSITY_THRESHOLD:
        return METHOD_DENSE
    return METHOD_SPARSE


#: Engine entry point installed by :mod:`repro.api.engine` at import time.
#: The kernel layer must not import the service layer above it (RPL007),
#: so the dependency is inverted: the engine registers its solve function
#: here when it loads, and :func:`solve_mbb` dispatches through the hook.
#: ``repro/__init__`` imports :mod:`repro.api`, so the hook is always
#: installed before user code can reach :func:`solve_mbb`.
_ENGINE_SOLVE_GRAPH: Optional[Callable[..., MBBResult]] = None


def register_engine(solve_graph: Callable[..., MBBResult]) -> None:
    """Install the engine-backed solve function :func:`solve_mbb` uses.

    Called by :mod:`repro.api.engine` when it is imported.  The callable
    receives ``(graph, **options)`` with the keyword options
    :meth:`repro.api.engine.MBBEngine.solve_graph` accepts (``backend``,
    ``kernel``, ``node_budget``, ``time_budget``, ``sparse_config`` …).
    """
    global _ENGINE_SOLVE_GRAPH
    _ENGINE_SOLVE_GRAPH = solve_graph


def solve_mbb(
    graph: BipartiteGraph,
    *,
    method: str = METHOD_AUTO,
    kernel: str = KERNEL_BITS,
    sparse_config: Optional[SparseConfig] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Find a maximum balanced biclique of ``graph``.

    Parameters
    ----------
    graph:
        The bipartite graph to search.
    method:
        ``"auto"`` (default) picks between the two exact algorithms based
        on density and size; ``"dense"``, ``"sparse"`` and ``"basic"``
        force a specific solver (``basic`` is the unoptimised Algorithm 1,
        exposed mainly for education and testing).  Any other registered
        backend name (see :func:`repro.api.available_backends`) is
        accepted too.
    kernel:
        :data:`~repro.mbb.dense.KERNEL_BITS` (default) or
        :data:`~repro.mbb.dense.KERNEL_SETS`; selects the branch-and-bound
        inner loop of the dense solver and of the sparse framework's
        verification stage.  Ignored when an explicit ``sparse_config``
        already carries a kernel choice.
    sparse_config:
        Optional :class:`SparseConfig` forwarded to the sparse framework.
        Budgets passed to this function override the config's budgets; all
        other config fields are preserved as given.
    node_budget, time_budget:
        Optional budgets; exhausted budgets return the best-so-far result
        with ``optimal=False``.

    Returns
    -------
    MBBResult
        The balanced biclique together with statistics and optimality flag.
    """
    if _ENGINE_SOLVE_GRAPH is None:
        raise SolverError(
            "no engine registered for solve_mbb; import repro (or "
            "repro.api.engine) so the service layer can install its hook"
        )
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    options = {}
    if sparse_config is not None and method in (METHOD_AUTO, METHOD_SPARSE):
        options["sparse_config"] = sparse_config
    return _ENGINE_SOLVE_GRAPH(
        graph,
        backend=method,
        kernel=kernel,
        node_budget=node_budget,
        time_budget=time_budget,
        **options,
    )


def maximum_balanced_biclique(graph: BipartiteGraph, **kwargs) -> Biclique:
    """Return just the maximum balanced biclique (see :func:`solve_mbb`)."""
    return solve_mbb(graph, **kwargs).biclique
