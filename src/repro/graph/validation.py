"""Structural validators for bipartite graphs and bicliques.

These checks back the library's property-based tests and are also exposed
publicly so downstream users can assert invariants on graphs they build by
hand (a common source of silent bugs when biadjacency data is transposed).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.exceptions import GraphError
from repro.graph.bipartite import BipartiteGraph, Vertex


def check_consistent(graph: BipartiteGraph) -> None:
    """Raise :class:`GraphError` if the two adjacency maps disagree.

    The invariant is that ``v in neighbors_left(u)`` holds exactly when
    ``u in neighbors_right(v)``, and that the cached edge count matches the
    number of stored pairs.
    """
    forward = 0
    for u in graph.left_vertices():
        for v in graph.neighbors_left(u):
            forward += 1
            if not graph.has_right_vertex(v):
                raise GraphError(f"edge ({u!r}, {v!r}) points to a missing right vertex")
            if u not in graph.neighbors_right(v):
                raise GraphError(f"edge ({u!r}, {v!r}) missing from the right adjacency")
    backward = sum(graph.degree_right(v) for v in graph.right_vertices())
    if forward != backward:
        raise GraphError(
            f"adjacency maps disagree: {forward} forward edges vs {backward} backward"
        )
    if forward != graph.num_edges:
        raise GraphError(
            f"cached edge count {graph.num_edges} != stored edges {forward}"
        )


def is_biclique(
    graph: BipartiteGraph,
    left: Iterable[Vertex],
    right: Iterable[Vertex],
) -> bool:
    """Return ``True`` if every pair in ``left x right`` is an edge of ``graph``.

    Vertices must exist on their respective sides; a missing vertex makes
    the answer ``False`` rather than raising, because solvers use this as a
    cheap post-hoc verification step.
    """
    left_list = list(left)
    right_list = list(right)
    for u in left_list:
        if not graph.has_left_vertex(u):
            return False
    for v in right_list:
        if not graph.has_right_vertex(v):
            return False
    for u in left_list:
        neighbours = graph.neighbors_left(u)
        for v in right_list:
            if v not in neighbours:
                return False
    return True


def is_balanced_biclique(
    graph: BipartiteGraph,
    left: Iterable[Vertex],
    right: Iterable[Vertex],
) -> bool:
    """Return ``True`` for a biclique whose two sides have equal size."""
    left_list = list(left)
    right_list = list(right)
    return len(left_list) == len(right_list) and is_biclique(graph, left_list, right_list)


def assert_valid_biclique(
    graph: BipartiteGraph,
    left: Iterable[Vertex],
    right: Iterable[Vertex],
    *,
    balanced: bool = True,
) -> None:
    """Raise :class:`GraphError` unless ``(left, right)`` is a (balanced) biclique."""
    left_list = list(left)
    right_list = list(right)
    if balanced and len(left_list) != len(right_list):
        raise GraphError(
            f"biclique is not balanced: |A|={len(left_list)} |B|={len(right_list)}"
        )
    if not is_biclique(graph, left_list, right_list):
        raise GraphError("vertex sets do not induce a biclique")


def degree_histogram(graph: BipartiteGraph) -> Tuple[dict, dict]:
    """Return ``(left_histogram, right_histogram)`` mapping degree -> count."""
    left_hist: dict = {}
    right_hist: dict = {}
    for u in graph.left_vertices():
        d = graph.degree_left(u)
        left_hist[d] = left_hist.get(d, 0) + 1
    for v in graph.right_vertices():
        d = graph.degree_right(v)
        right_hist[d] = right_hist.get(d, 0) + 1
    return left_hist, right_hist
