#!/usr/bin/env python3
"""User-item co-engagement: exact dense community vs heuristics.

Recommendation and social datasets (the KONECT networks of the paper's
Table 5) are large sparse user-item bipartite graphs.  The maximum balanced
biclique is the largest group of users who all interacted with the same
number of common items — a seed for co-clustering and recommendation.

The example runs on one of the library's KONECT stand-ins and compares:

* the published heuristics (POLS- and SBMNAS-style local search),
* the library's own heuristic stage (hMBB), and
* the exact optimum from the sparse framework,

reproducing in miniature the heuristic-gap story of the paper's Figure 4.

Run with::

    python examples/recommendation_communities.py
"""

from __future__ import annotations

import time

from repro import hbv_mbb
from repro.baselines.local_search import pols, sbmnas
from repro.mbb.heuristics import h_mbb
from repro.workloads.datasets import DATASETS, load_dataset

DATASET = "flickr-groupmemberships"


def main() -> None:
    spec = DATASETS[DATASET]
    graph = load_dataset(DATASET)
    print(f"dataset stand-in: {DATASET}")
    print(
        f"  original network: |L|={spec.paper_left:,} |R|={spec.paper_right:,} "
        f"(optimum side {spec.paper_optimum})"
    )
    print(
        f"  stand-in        : |L|={graph.num_left} |R|={graph.num_right} "
        f"|E|={graph.num_edges}"
    )
    print()

    candidates = {}
    for name, heuristic in [("POLS", pols), ("SBMNAS", sbmnas)]:
        started = time.perf_counter()
        biclique = heuristic(graph, iterations=1500, seed=1)
        candidates[name] = (biclique.side_size, time.perf_counter() - started)

    started = time.perf_counter()
    outcome = h_mbb(graph)
    candidates["hMBB (this library)"] = (
        outcome.best.side_size,
        time.perf_counter() - started,
    )

    started = time.perf_counter()
    exact = hbv_mbb(graph)
    exact_seconds = time.perf_counter() - started

    print(f"{'method':<22}{'side size':>10}{'seconds':>10}")
    for name, (side, seconds) in candidates.items():
        gap = exact.side_size - side
        print(f"{name:<22}{side:>10}{seconds:>10.3f}   (gap to optimum: {gap})")
    print(f"{'hbvMBB (exact)':<22}{exact.side_size:>10}{exact_seconds:>10.3f}   "
          f"(terminated at {exact.terminated_at})")

    assert exact.biclique.is_valid_in(graph)
    assert all(side <= exact.side_size for side, _ in candidates.values())


if __name__ == "__main__":
    main()
