"""Tests for the POLS- and SBMNAS-style heuristic baselines."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    planted_balanced_biclique,
    random_bipartite,
)
from repro.baselines.brute_force import brute_force_side_size
from repro.baselines.local_search import pols, sbmnas


@pytest.mark.parametrize("heuristic", [pols, sbmnas])
class TestLocalSearchHeuristics:
    def test_empty_graph(self, heuristic):
        assert heuristic(BipartiteGraph()).side_size == 0

    def test_edgeless_graph(self, heuristic):
        graph = BipartiteGraph(left=[1, 2], right=[3])
        assert heuristic(graph).side_size == 0

    def test_complete_graph_reaches_optimum(self, heuristic):
        graph = complete_bipartite(5, 5)
        assert heuristic(graph, iterations=200).side_size == 5

    @pytest.mark.parametrize("seed", range(8))
    def test_result_is_valid_and_never_exceeds_optimum(self, heuristic, seed):
        graph = random_bipartite(9, 9, 0.5, seed=seed)
        result = heuristic(graph, iterations=300, seed=seed)
        assert result.is_balanced
        assert result.is_valid_in(graph)
        assert result.side_size <= brute_force_side_size(graph)

    def test_planted_block_is_mostly_recovered(self, heuristic):
        graph = planted_balanced_biclique(25, 25, 6, background_density=0.05, seed=4)
        result = heuristic(graph, iterations=800, seed=1)
        assert result.side_size >= 4

    def test_deterministic_given_seed(self, heuristic):
        graph = random_bipartite(12, 12, 0.4, seed=6)
        a = heuristic(graph, iterations=200, seed=11)
        b = heuristic(graph, iterations=200, seed=11)
        assert a == b
