"""File discovery and analysis orchestration for reprolint.

:func:`run_lint` is the one entry point the CLI, the CI job and the test
suite share: discover Python files under the given paths, parse each one
once, run every (selected) rule over the shared AST, drop line-suppressed
findings, split the rest against the baseline, and return a
:class:`LintResult` whose ordering is fully deterministic.

The analyzer is dependency-free on purpose — :mod:`ast` plus the
standard library — so the CI job can run it straight from a checkout
with no installation step, and so it can never disagree with the
interpreter about what the code parses to.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.devtools.lint.base import (
    PARSE_ERROR_CODE,
    FileContext,
    Rule,
    all_rules,
)
from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.findings import Finding, sort_findings

#: Directory names never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass
class LintResult:
    """Outcome of one analyzer run (all lists canonically sorted)."""

    #: Findings not absorbed by the baseline — these fail the run.
    new_findings: List[Finding] = field(default_factory=list)
    #: Findings matched (and absorbed) by baseline entries.
    baselined_findings: List[Finding] = field(default_factory=list)
    #: Count of findings silenced by inline ``# reprolint: disable=...``.
    suppressed: int = 0
    #: Number of files parsed and analyzed.
    checked_files: int = 0
    #: Codes of the rules that ran, sorted.
    rules: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """``0`` when no new findings survived, ``1`` otherwise."""
        return 1 if self.new_findings else 0

    @property
    def all_findings(self) -> List[Finding]:
        """New and baselined findings together, canonically sorted."""
        return sort_findings(self.new_findings + self.baselined_findings)


def iter_python_files(paths: Sequence[str], root: str) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` in sorted, deterministic order.

    ``paths`` entries are interpreted relative to ``root`` unless
    absolute; files are yielded as absolute paths.  Missing paths raise
    ``FileNotFoundError`` so a typo in CI fails loudly instead of
    linting nothing.
    """
    collected: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            if absolute.endswith(".py"):
                collected.append(os.path.abspath(absolute))
            continue
        if not os.path.isdir(absolute):
            raise FileNotFoundError(f"lint path does not exist: {path}")
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                name
                for name in dirnames
                if not name.startswith(".") and name not in _SKIPPED_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    collected.append(os.path.abspath(os.path.join(dirpath, filename)))
    # Deduplicate overlapping path arguments while keeping sorted order.
    return iter(sorted(set(collected)))


def _relpath(path: str, root: str) -> str:
    relative = os.path.relpath(path, root)
    return relative.replace(os.sep, "/")


def analyze_file(
    path: str, root: str, rules: Sequence[Rule]
) -> tuple:
    """Run every rule over one file; returns ``(findings, suppressed)``.

    A file that fails to parse yields a single unsuppressable
    ``RPL000`` finding carrying the syntax error message.
    """
    relpath = _relpath(path, root)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        return (
            [
                Finding(
                    path=relpath,
                    line=error.lineno or 1,
                    column=(error.offset or 1),
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {error.msg}",
                )
            ],
            0,
        )
    ctx = FileContext(relpath, source, tree)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


def run_lint(
    paths: Sequence[str],
    *,
    root: Optional[str] = None,
    rules: Iterable[str] = (),
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Analyze ``paths`` and return a deterministic :class:`LintResult`.

    Parameters
    ----------
    paths:
        Files and/or directories to scan (relative to ``root``).
    root:
        Project root used both to resolve relative ``paths`` and to
        compute the root-relative paths the rules scope by (default:
        the current working directory).
    rules:
        Optional subset of rule codes to run (default: all registered).
    baseline:
        Optional :class:`Baseline` absorbing known findings; with
        ``None`` every finding is new.
    """
    resolved_root = os.path.abspath(root or os.getcwd())
    selected = all_rules(rules)
    findings: List[Finding] = []
    suppressed = 0
    checked = 0
    for path in iter_python_files(paths, resolved_root):
        checked += 1
        file_findings, file_suppressed = analyze_file(path, resolved_root, selected)
        findings.extend(file_findings)
        suppressed += file_suppressed
    new, accepted = (baseline or Baseline()).split(findings)
    return LintResult(
        new_findings=new,
        baselined_findings=accepted,
        suppressed=suppressed,
        checked_files=checked,
        rules=[rule.code for rule in selected],
    )
