"""RPL006 — interprocedural checkpoint reachability for search entry points.

RPL001 polices the *mechanics* per file (no hand-rolled budget math);
this rule proves the *coverage* property that actually matters for
cancellation and the shared-incumbent parallel-S3 plan: every search
entry point in ``src/repro/mbb/`` whose work is unbounded — it reaches a
loop or recursion through its call graph — must also reach
``SearchContext.checkpoint()`` (or its superset ``enter_node()``)
through that same call graph.  An entry point that spins without
polling can neither honour a deadline nor observe a cross-worker cancel
hook; exactly this bug shipped twice before the per-seed/per-subgraph
polls landed in PR 3.

**Entry point** means a module-level function that marks a
budget-enforcement boundary by one of the two idioms this repository
uses: it constructs ``SearchContext(...)`` itself, or it catches
``SearchAborted``.  Helpers that merely *take* a context (``greedy
extend``, the polynomial-case solvers …) are their callers'
responsibility and are not flagged — the reachability proof happens at
the boundary.

The proof is conservative on the safe side: the call graph resolves
direct, imported, aliased (``search = _bits if ... else _sets``),
``self.``- and annotation-typed method calls, so a checkpoint buried two
helpers deep still counts; an entry point whose region provably lacks
any loop or recursion (straight-line dispatch) is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.devtools.lint.base import ProjectRule, register_rule
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import ProjectContext

#: Where the search drivers live (the budget-enforcement surface).
MBB_PREFIX = "src/repro/mbb/"

#: The budget mechanism itself is exempt (it *is* the checkpoint).
EXCLUDED_FILES = frozenset({"src/repro/mbb/context.py"})

CONTEXT_MODULE = "repro.mbb.context"
CONTEXT_CLASS = "SearchContext"
ABORT_CLASS = "SearchAborted"

#: Call-graph nodes that count as polling the budget.
CHECKPOINT_NODES = frozenset(
    {
        f"{CONTEXT_MODULE}::{CONTEXT_CLASS}.checkpoint",
        f"{CONTEXT_MODULE}::{CONTEXT_CLASS}.enter_node",
    }
)


@register_rule
class CheckpointReachabilityRule(ProjectRule):
    code = "RPL006"
    name = "checkpoint-reachability"
    description = (
        "every loop-bearing search entry point in mbb/ must reach "
        "SearchContext.checkpoint()/enter_node() through the call graph"
    )
    rationale = (
        "Deadlines, node budgets and cross-worker cancel hooks only work if "
        "the search polls SearchContext.checkpoint() inside its hot path. "
        "PR 3 fixed two drivers that ignored their budgets until S3 because "
        "no poll was reachable from the entry point; a per-file heuristic "
        "cannot see a checkpoint that lives two helpers deep in another "
        "module. This rule walks the whole-project call graph from each "
        "budget-enforcement boundary (a function that constructs "
        "SearchContext or catches SearchAborted) and demands a reachable "
        "poll whenever the region contains a loop or recursion."
    )
    example = (
        "# bad: budgeted loop, but no poll reachable from the entry point\n"
        "def my_search(graph):\n"
        "    context = SearchContext(time_budget=5.0)\n"
        "    for seed in seeds(graph):\n"
        "        expand(seed)            # expand() never checkpoints\n"
        "\n"
        "# good: the helper polls, the proof goes through the call graph\n"
        "def expand(seed, context):\n"
        "    context.checkpoint()\n"
        "    ..."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if not info.relpath.startswith(MBB_PREFIX):
                continue
            if info.relpath in EXCLUDED_FILES:
                continue
            for fn_name in sorted(info.functions):
                fn = info.functions[fn_name]
                node_id = f"{module_name}::{fn_name}"
                if not self._is_entry_point(project, module_name, fn.node, node_id):
                    continue
                region = project.reachable(node_id)
                if not self._region_has_unbounded_work(project, region):
                    continue
                if region & CHECKPOINT_NODES:
                    continue
                yield self.project_finding(
                    info.relpath,
                    fn.node,
                    f"search entry point {fn_name}() constructs SearchContext "
                    f"or handles SearchAborted but never reaches "
                    f"SearchContext.checkpoint()/enter_node() through its call "
                    f"graph; budgets and cancel hooks are dead in its loops",
                )

    # ------------------------------------------------------------------
    # entry-point detection
    # ------------------------------------------------------------------
    def _is_entry_point(
        self,
        project: ProjectContext,
        module_name: str,
        fn_node: ast.AST,
        node_id: str,
    ) -> bool:
        if self._constructs_context(project, node_id):
            return True
        return self._handles_abort(project, module_name, fn_node)

    def _constructs_context(self, project: ProjectContext, node_id: str) -> bool:
        context_node = f"{CONTEXT_MODULE}::{CONTEXT_CLASS}"
        return context_node in project.call_graph.get(node_id, set())

    def _handles_abort(
        self, project: ProjectContext, module_name: str, fn_node: ast.AST
    ) -> bool:
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            caught: List[ast.AST] = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in caught:
                if isinstance(expr, ast.Name):
                    resolved = project.resolve(module_name, expr.id)
                    if resolved == ("class", CONTEXT_MODULE, ABORT_CLASS):
                        return True
                elif isinstance(expr, ast.Attribute) and expr.attr == ABORT_CLASS:
                    return True
        return False

    # ------------------------------------------------------------------
    # unbounded-work test
    # ------------------------------------------------------------------
    def _region_has_unbounded_work(
        self, project: ProjectContext, region: Set[str]
    ) -> bool:
        return any(
            node in project.loop_nodes or node in project.recursive_nodes
            for node in region
        )
