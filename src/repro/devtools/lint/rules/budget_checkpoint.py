"""RPL001 — budget-checkpoint coverage in the search modules.

History: PR 3 fixed budgets being silently ignored outside the dense
kernel — stages that hand-rolled their own deadline/budget arithmetic
drifted from the one enforcement point and either never aborted or
claimed exhaustion after aborting.  The repaired contract is that search
code polls :meth:`repro.mbb.context.SearchContext.checkpoint` (or
:meth:`enter_node`, its per-search-node superset) and forwards remaining
budgets through the ``remaining_node_budget()`` /
``remaining_time_budget()`` helpers, so ``optimal=False`` abort
semantics stay uniform across S1/S2/S3.

The rule therefore flags, in the S1/S2/S3 search modules
(``src/repro/mbb/`` and ``src/repro/cores/``, excluding ``context.py``
which *implements* the mechanism):

* ordering comparisons (``<``, ``<=``, ``>``, ``>=``) on a context's
  ``deadline``, ``time_budget``, ``node_budget`` or ``elapsed``
  attributes — e.g. ``time.perf_counter() > context.deadline``;
* additive arithmetic (``+``/``-``) on those attributes — e.g.
  ``context.time_budget - context.elapsed`` — the "remaining budget by
  hand" pattern the context helpers replace.

Reading the attributes (``elapsed_seconds=context.elapsed``), None
guards (``context.deadline is not None``) and constructor keywords
(``SearchContext(node_budget=...)``) are all untouched: only the
comparison/arithmetic that re-implements enforcement is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.lint.base import FileContext, Rule, register_rule
from repro.devtools.lint.findings import Finding

#: SearchContext attributes whose math belongs in ``context.py``.
BUDGET_ATTRIBUTES = frozenset({"deadline", "time_budget", "node_budget", "elapsed"})

#: Modules the rule covers: the three-stage search framework.
SEARCH_MODULE_PREFIXES = ("src/repro/mbb", "src/repro/cores")

#: The mechanism's own implementation is the one legitimate home for
#: budget arithmetic.
EXCLUDED_FILES = frozenset({"src/repro/mbb/context.py"})

_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _budget_attributes_in(node: ast.AST) -> Set[str]:
    """Budget attribute names read anywhere inside ``node``."""
    found: Set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.ctx, ast.Load)
            and sub.attr in BUDGET_ATTRIBUTES
        ):
            found.add(sub.attr)
    return found


@register_rule
class BudgetCheckpointRule(Rule):
    code = "RPL001"
    name = "budget-checkpoint"
    description = (
        "search modules must poll SearchContext.checkpoint() instead of "
        "hand-rolling deadline/budget math"
    )
    rationale = (
        "Before PR 6, size_constrained.py re-implemented its node-budget "
        "arithmetic inline and drifted from the engine's semantics (fixed at "
        "size_constrained.py:377). SearchContext.checkpoint() and the "
        "remaining_node_budget()/remaining_time_budget() helpers are the one "
        "budget mechanism; any comparison or arithmetic on "
        "deadline/time_budget/node_budget fields in a search module is a "
        "second implementation waiting to disagree."
    )
    example = (
        "# bad: hand-rolled deadline math in a search module\n"
        "if time.monotonic() > context.deadline:  # RPL001\n"
        "    raise SearchAborted()\n"
        "\n"
        "# good: one mechanism, polled\n"
        "context.checkpoint(enforce_node_budget=True)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_under(*SEARCH_MODULE_PREFIXES):
            return
        if ctx.relpath in EXCLUDED_FILES:
            return
        flagged_subtrees: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare) and any(
                isinstance(op, _ORDERING_OPS) for op in node.ops
            ):
                attrs = _budget_attributes_in(node)
                if attrs:
                    # Remember descendants so the BinOp inside an already
                    # flagged comparison does not double-report.
                    flagged_subtrees.update(id(sub) for sub in ast.walk(node))
                    yield self.finding(
                        ctx,
                        node,
                        "hand-rolled budget comparison on "
                        f"SearchContext.{'/'.join(sorted(attrs))}; poll "
                        "SearchContext.checkpoint() instead",
                    )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Add, ast.Sub))
                and id(node) not in flagged_subtrees
            ):
                attrs = _budget_attributes_in(node)
                if attrs:
                    flagged_subtrees.update(id(sub) for sub in ast.walk(node))
                    yield self.finding(
                        ctx,
                        node,
                        "hand-rolled budget arithmetic on "
                        f"SearchContext.{'/'.join(sorted(attrs))}; use "
                        "SearchContext.remaining_node_budget()/"
                        "remaining_time_budget() instead",
                    )
