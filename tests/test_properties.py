"""Property-based tests (hypothesis) for core invariants of the library."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph.bipartite import LEFT, BipartiteGraph
from repro.graph.complement import bipartite_complement
from repro.graph.validation import check_consistent, is_biclique
from repro.cores.core import core_numbers, degeneracy, k_core
from repro.cores.bicore import bicore_numbers, bidegeneracy
from repro.cores.two_hop import n_le2_sizes
from repro.mbb.dense import dense_mbb
from repro.mbb.sparse import hbv_mbb
from repro.mbb.result import Biclique
from repro.baselines.brute_force import brute_force_mbb
from repro.baselines.mvb import maximum_vertex_biclique


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def bipartite_graphs(draw, max_left: int = 7, max_right: int = 7):
    """Random small bipartite graphs with arbitrary edge subsets."""
    n_left = draw(st.integers(min_value=0, max_value=max_left))
    n_right = draw(st.integers(min_value=0, max_value=max_right))
    graph = BipartiteGraph(left=range(n_left), right=range(n_right))
    if n_left and n_right:
        pairs = [(u, v) for u in range(n_left) for v in range(n_right)]
        chosen = draw(
            st.lists(st.sampled_from(pairs), max_size=len(pairs), unique=True)
        )
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# Graph substrate invariants
# ----------------------------------------------------------------------
@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_generated_graphs_are_internally_consistent(graph):
    check_consistent(graph)


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_complement_is_involution_and_partitions_edges(graph):
    complement = bipartite_complement(graph)
    assert graph.num_edges + complement.num_edges == graph.num_left * graph.num_right
    assert bipartite_complement(complement) == graph


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_biadjacency_round_trip(graph):
    matrix, left_order, right_order = graph.to_biadjacency()
    rebuilt = BipartiteGraph.from_biadjacency(matrix)
    assert rebuilt.num_edges == graph.num_edges


# ----------------------------------------------------------------------
# Core / bicore invariants
# ----------------------------------------------------------------------
@given(bipartite_graphs())
@settings(max_examples=50, deadline=None)
def test_core_numbers_bounded_by_degree(graph):
    numbers = core_numbers(graph)
    for (side, label), value in numbers.items():
        degree = (
            graph.degree_left(label) if side == LEFT else graph.degree_right(label)
        )
        assert 0 <= value <= degree


@given(bipartite_graphs())
@settings(max_examples=50, deadline=None)
def test_k_core_is_induced_and_has_min_degree_k(graph):
    delta = degeneracy(graph)
    for k in range(1, delta + 1):
        core = k_core(graph, k)
        for u in core.left_vertices():
            assert core.degree_left(u) >= k
        for v in core.right_vertices():
            assert core.degree_right(v) >= k


@given(bipartite_graphs())
@settings(max_examples=50, deadline=None)
def test_bicore_numbers_bounded_by_n_le2_and_bidegeneracy_at_least_degeneracy(graph):
    numbers = bicore_numbers(graph)
    sizes = n_le2_sizes(graph)
    for key, value in numbers.items():
        assert 0 <= value <= sizes[key]
    # |N_<=2(u)| >= |N(u)|, so the bicore/bidegeneracy dominates the core
    # counterparts.
    assert bidegeneracy(graph) >= degeneracy(graph)


# ----------------------------------------------------------------------
# Solver invariants
# ----------------------------------------------------------------------
@given(bipartite_graphs())
@settings(max_examples=40, deadline=None)
def test_dense_solver_matches_oracle_and_returns_valid_biclique(graph):
    result = dense_mbb(graph)
    oracle = brute_force_mbb(graph)
    assert result.side_size == oracle.side_size
    assert result.biclique.is_balanced
    assert is_biclique(graph, result.biclique.left, result.biclique.right)


@given(bipartite_graphs())
@settings(max_examples=30, deadline=None)
def test_sparse_framework_matches_oracle(graph):
    result = hbv_mbb(graph)
    assert result.side_size == brute_force_mbb(graph).side_size


@given(bipartite_graphs())
@settings(max_examples=30, deadline=None)
def test_mvb_upper_bounds_mbb(graph):
    mvb = maximum_vertex_biclique(graph)
    mbb = brute_force_mbb(graph)
    assert 2 * mbb.side_size <= mvb.total_size
    assert is_biclique(graph, mvb.left, mvb.right)


# ----------------------------------------------------------------------
# Biclique value object
# ----------------------------------------------------------------------
@given(
    st.sets(st.integers(min_value=0, max_value=20), max_size=8),
    st.sets(st.integers(min_value=0, max_value=20), max_size=8),
)
def test_biclique_balancing_properties(left, right):
    biclique = Biclique.of(left, right)
    balanced = biclique.balanced()
    assert balanced.is_balanced
    assert balanced.side_size == biclique.side_size
    assert balanced.left <= biclique.left
    assert balanced.right <= biclique.right


@given(bipartite_graphs(max_left=5, max_right=5))
@settings(max_examples=40, deadline=None)
def test_adding_edges_never_decreases_the_optimum(graph):
    base = brute_force_mbb(graph).side_size
    denser = graph.copy()
    for u in list(denser.left_vertices())[:2]:
        for v in list(denser.right_vertices())[:2]:
            denser.add_edge(u, v)
    assert brute_force_mbb(denser).side_size >= base
