"""Tests for the benchmark harness (tiny configurations, fast to run)."""

from __future__ import annotations

from repro.bench.harness import format_cell, format_table, rows_to_csv, timed
from repro.bench.table4 import format_table4, run_table4
from repro.bench.table5 import format_table5, run_table5
from repro.bench.table6 import format_table6, run_dataset_breakdown
from repro.bench.figure4 import format_figure4, run_figure4
from repro.bench.figure5 import format_figure5, run_figure5
from repro.bench.figure6 import format_figure6, run_figure6


class TestHarnessHelpers:
    def test_timed_returns_result_and_elapsed(self):
        value, elapsed = timed(sum, [1, 2, 3])
        assert value == 6
        assert elapsed >= 0.0

    def test_format_cell(self):
        assert format_cell(0.12345) == "0.123"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(123.456) == "123.5"
        assert format_cell("x") == "x"
        assert format_cell(0.0) == "0"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_rows_to_csv(self):
        rows = [{"a": 1, "b": 2.5}]
        assert rows_to_csv(rows) == "a,b\n1,2.50"
        assert rows_to_csv([]) == ""


class TestTable4Harness:
    def test_tiny_sweep_produces_expected_rows(self):
        rows = run_table4(sides=[8], densities=[0.8, 0.9], time_budget=5.0, instances=1)
        assert len(rows) == 4  # 2 densities x 2 algorithms
        assert {row["algorithm"] for row in rows} == {"extBBCl", "denseMBB"}
        text = format_table4(rows)
        assert "80%" in text and "90%" in text


class TestTable5Harness:
    def test_single_dataset_row(self):
        rows = run_table5(["unicodelang"], time_budget=5.0)
        assert len(rows) == 1
        row = rows[0]
        assert row["dataset"] == "unicodelang"
        assert row["step"] in ("S1", "S2", "S3")
        assert isinstance(row["optimum"], int)
        assert "hbvMBB" in format_table5(rows)

    def test_algorithm_subset(self):
        rows = run_table5(["moreno-crime"], time_budget=5.0, algorithms=("hbvMBB",))
        assert "adp1" not in rows[0]


class TestTable6Harness:
    def test_breakdown_row_contains_all_columns(self):
        row = run_dataset_breakdown("unicodelang", time_budget=5.0)
        for column in ("hMBB", "degOrder", "bdegOrder", "bd1", "bd5", "hbvMBB"):
            assert column in row
        assert "unicodelang" in format_table6([row])


class TestFigureHarnesses:
    def test_figure4_rows(self):
        rows = run_figure4(["unicodelang"], time_budget=5.0)
        assert rows[0]["label"] == "D1"
        assert rows[0]["gap_local"] >= 0
        assert "heuGlobal" in format_figure4(rows)

    def test_figure5_rows(self):
        rows = run_figure5(["unicodelang"], time_budget=5.0)
        assert set(rows[0]) >= {"maxDeg", "degeneracy", "bi-degeneracy"}
        assert "bi-degeneracy" in format_figure5(rows)

    def test_figure6_rows(self):
        rows = run_figure6(["unicodelang"])
        assert 0.0 <= rows[0]["bidegeneracy"] <= 1.0
        assert "bidegeneracy" in format_figure6(rows)
