"""RPL007 — layering and import-cycle discipline.

The package is layered ``graph → cores → mbb → baselines/api →
cli/bench``: the kernel layers at the bottom must stay importable (and
testable, and picklable for pool workers) without dragging in the
service layers above them.  A kernel module that imports ``repro.api``
couples solver internals to engine policy, breaks the
dependency-injection seam the engine registry provides, and — the
concrete hazard for parallel S3 — makes worker processes import the
whole service stack just to unpickle a kernel callable.

Two checks:

* **layering** — modules under ``repro.graph``, ``repro.cores`` and
  ``repro.mbb`` must not import ``repro.api``, ``repro.cli`` or
  ``repro.bench``.  *Every* import statement counts, including lazy
  function-level ones: a lazy import hides the coupling from the module
  graph but still executes in the worker.  (The fix is dependency
  inversion — the kernel module exposes a registration hook the upper
  layer fills in; see ``repro.mbb.solver.register_engine``.)
* **cycles** — no module-level import cycles anywhere in the scanned
  tree, found as strongly connected components of the import graph.
  Only imports that execute at module import time participate: lazy
  body-level imports are this repository's sanctioned idiom for
  acyclic-by-construction back-references (``graph/prepared.py`` →
  ``repro.cores``), so they must not count as cycle edges.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.devtools.lint.base import ProjectRule, register_rule
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import ImportRecord, ModuleInfo, ProjectContext

#: Kernel layers that must stay clean of the service layers.
PROTECTED_PREFIXES = ("repro.graph", "repro.cores", "repro.mbb")

#: Service layers the kernel layers must not import.
FORBIDDEN_PREFIXES = ("repro.api", "repro.cli", "repro.bench")


def _under(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


def _forbidden_target(record: ImportRecord) -> Optional[str]:
    """The forbidden module a record imports, if any."""
    candidates = [record.target]
    if record.symbol is not None:
        candidates.append(f"{record.target}.{record.symbol}")
    for candidate in candidates:
        for prefix in FORBIDDEN_PREFIXES:
            if _under(candidate, prefix):
                return candidate
    return None


@register_rule
class LayeringRule(ProjectRule):
    code = "RPL007"
    name = "layering"
    description = (
        "graph/cores/mbb must not import api/cli/bench; no module-level "
        "import cycles anywhere"
    )
    rationale = (
        "The kernel layers (graph, cores, mbb) are the bottom of the stack: "
        "pool workers import them standalone, and the engine/api layer is "
        "swapped in through explicit registration, not imports. An upward "
        "import — even a lazy one inside a function — couples kernel "
        "internals to service policy and forces worker processes to load "
        "the full service stack. Module-level import cycles additionally "
        "make initialisation order fragile (partially-initialised modules) "
        "and are banned outright; the sanctioned back-reference idiom is a "
        "lazy function-level import, which this rule deliberately exempts "
        "from the cycle check."
    )
    example = (
        "# bad (in repro/mbb/solver.py): upward import, even lazily\n"
        "def solve_mbb(graph, **options):\n"
        "    from repro.api.engine import MBBEngine   # RPL007\n"
        "    return MBBEngine().solve_graph(graph, **options)\n"
        "\n"
        "# good: dependency inversion — the upper layer registers itself\n"
        "_ENGINE_SOLVE = None\n"
        "def register_engine(solve):\n"
        "    global _ENGINE_SOLVE\n"
        "    _ENGINE_SOLVE = solve\n"
        "def solve_mbb(graph, **options):\n"
        "    return _ENGINE_SOLVE(graph, **options)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        yield from self._check_layering(project)
        yield from self._check_cycles(project)

    # ------------------------------------------------------------------
    # layering
    # ------------------------------------------------------------------
    def _check_layering(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name in sorted(project.modules):
            if not any(_under(module_name, p) for p in PROTECTED_PREFIXES):
                continue
            info = project.modules[module_name]
            for record in sorted(
                info.imports, key=lambda r: (r.lineno, r.col_offset, r.target)
            ):
                forbidden = _forbidden_target(record)
                if forbidden is None:
                    continue
                lazy = "" if record.toplevel else " (lazy import)"
                yield self.line_finding(
                    info.relpath,
                    record.lineno,
                    record.col_offset + 1,
                    f"layering violation: {module_name} imports {forbidden}"
                    f"{lazy}; kernel layers (graph/cores/mbb) must not depend "
                    f"on api/cli/bench — invert the dependency via a "
                    f"registration hook",
                )

    # ------------------------------------------------------------------
    # cycles
    # ------------------------------------------------------------------
    def _check_cycles(self, project: ProjectContext) -> Iterator[Finding]:
        for cycle in project.import_cycles():
            closure = " -> ".join(cycle + [cycle[0]])
            anchor_module = project.modules[cycle[0]]
            successor = cycle[1] if len(cycle) > 1 else cycle[0]
            lineno, column = self._edge_anchor(project, anchor_module, successor)
            yield self.line_finding(
                anchor_module.relpath,
                lineno,
                column,
                f"module-level import cycle: {closure}; break it by moving "
                f"one edge to a lazy function-level import or extracting the "
                f"shared piece into a lower module",
            )

    @staticmethod
    def _edge_anchor(
        project: ProjectContext, info: ModuleInfo, successor: str
    ) -> tuple:
        """Line/column of the first module-level import landing on ``successor``."""
        for record in sorted(info.imports, key=lambda r: (r.lineno, r.col_offset)):
            if not record.toplevel:
                continue
            if project._internal_target(record) == successor:
                return record.lineno, record.col_offset + 1
        return 1, 1
