"""Shared helpers for the benchmark harness: timing and table rendering."""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Sequence, Tuple


def timed(function: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def format_cell(value: object) -> str:
    """Render one table cell: floats get three significant decimals."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Iterable[str] | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    rendered: List[List[str]] = [[format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return "\n".join([header, separator, body])


def rows_to_csv(rows: Sequence[Dict[str, object]], columns: Iterable[str] | None = None) -> str:
    """Render rows as CSV text (used to archive results in EXPERIMENTS.md)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(format_cell(row.get(col, "")) for col in columns))
    return "\n".join(lines)
