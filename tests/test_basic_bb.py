"""Tests for the basic branch-and-bound enumeration (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_bipartite
from repro.mbb.basic_bb import basic_bb
from repro.mbb.context import SearchContext
from repro.baselines.brute_force import brute_force_side_size


class TestBasicBB:
    def test_empty_graph(self):
        result = basic_bb(BipartiteGraph())
        assert result.side_size == 0
        assert result.optimal

    def test_single_edge(self, single_edge):
        result = basic_bb(single_edge)
        assert result.side_size == 1
        assert result.biclique.is_valid_in(single_edge)

    def test_complete_bipartite(self):
        graph = complete_bipartite(4, 6)
        result = basic_bb(graph)
        assert result.side_size == 4

    def test_union_of_blocks(self, two_blocks):
        result = basic_bb(two_blocks)
        assert result.side_size == 3

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force(self, seed, random_graph_factory):
        graph = random_graph_factory(seed, max_side=8)
        assert basic_bb(graph).side_size == brute_force_side_size(graph)

    def test_result_is_balanced_and_valid(self, random_graph_factory):
        graph = random_graph_factory(3, max_side=8)
        result = basic_bb(graph)
        assert result.biclique.is_balanced
        assert result.biclique.is_valid_in(graph)

    def test_node_budget_returns_best_effort(self):
        graph = complete_bipartite(6, 6)
        result = basic_bb(graph, node_budget=1)
        assert not result.optimal
        assert result.biclique.is_valid_in(graph)

    def test_preseeded_context_is_respected(self):
        graph = complete_bipartite(3, 3)
        context = SearchContext()
        context.offer([10, 11, 12, 13], [20, 21, 22, 23])  # fake incumbent side 4
        result = basic_bb(graph, context=context)
        # The incumbent cannot be beaten inside a 3x3 graph, so it survives.
        assert result.side_size == 4

    def test_stats_are_collected(self):
        graph = complete_bipartite(3, 3)
        result = basic_bb(graph)
        assert result.stats.nodes > 0
        assert result.elapsed_seconds >= 0.0
