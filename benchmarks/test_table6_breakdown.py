"""Benchmarks regenerating Table 6: technique breakdown on tough datasets.

Per-variant benchmarks time the full framework and each ablation (bd1-bd5)
on a representative tough dataset; overhead benchmarks time the heuristic
stage and the two order computations in isolation; the reporting test runs
the whole breakdown table over several tough datasets and prints it.

Expected shape (matching the paper): the overhead columns (hMBB, degOrder,
bdegOrder) are small; every ablation is slower than (or at best equal to)
the full framework; bd5 (degeneracy order) beats bd4 (degree order).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.bench.table6 import format_table6, run_table6
from repro.cores.bicore import IMPL_HEAP, bidegeneracy_order
from repro.cores.core import degeneracy_order
from repro.mbb.heuristics import h_mbb
from repro.mbb.sparse import hbv_mbb, variant_with_budget
from repro.workloads.datasets import load_dataset

#: Tough dataset used for the per-variant timing benchmarks.
BENCH_DATASET = "jester"
#: Subset of tough datasets used by the reporting test.
REPORT_DATASETS = ("jester", "github", "discogs-style", "edit-dewiki")


@pytest.mark.table
@pytest.mark.parametrize("variant_name", ("hbvMBB", "bd1", "bd2", "bd3", "bd4", "bd5"))
def test_framework_variant(benchmark, variant_name):
    """Time one framework variant on a tough dataset stand-in."""
    graph = load_dataset(BENCH_DATASET)
    config = variant_with_budget(variant_name, time_budget=30.0)

    result = benchmark(lambda: hbv_mbb(graph, config=config))
    assert result.biclique.is_valid_in(graph)


@pytest.mark.table
def test_overhead_h_mbb(benchmark):
    """Time the heuristic + reduction stage in isolation."""
    graph = load_dataset(BENCH_DATASET)
    outcome = benchmark(lambda: h_mbb(graph))
    assert outcome.best.is_valid_in(graph)


@pytest.mark.table
def test_overhead_degeneracy_order(benchmark):
    graph = load_dataset(BENCH_DATASET)
    order = benchmark(lambda: degeneracy_order(graph))
    assert len(order) == graph.num_vertices


@pytest.mark.table
def test_overhead_bidegeneracy_order(benchmark):
    graph = load_dataset(BENCH_DATASET)
    order = benchmark(lambda: bidegeneracy_order(graph))
    assert len(order) == graph.num_vertices


@pytest.mark.table
def test_overhead_bidegeneracy_order_heap_ablation(benchmark):
    """Time the set-keyed heap peel the flat bucket engine replaced."""
    graph = load_dataset(BENCH_DATASET)
    order = benchmark(lambda: bidegeneracy_order(graph, impl=IMPL_HEAP))
    assert order == bidegeneracy_order(graph)


@pytest.mark.table
def test_report_table6(benchmark, capsys):
    """Regenerate and print the breakdown table for several tough datasets."""
    rows = benchmark.pedantic(
        lambda: run_table6(REPORT_DATASETS, time_budget=10.0), rounds=1, iterations=1
    )
    for row in rows:
        # The full framework must finish within the budget on every dataset.
        assert row["hbvMBB"] != "-"
    with capsys.disabled():
        print("\n=== Table 6 (stand-ins): breakdown, seconds ===")
        print(format_table6(rows))
