"""The :class:`PreparedGraph` artifact: one CSR snapshot for a whole solve.

The sparse framework (``hbvMBB``) derives everything it needs — the
``N_{<=2}`` structure, the total search order, the vertex-centred
subgraphs — from one immutable input graph, yet each of those artifacts
historically re-indexed the label-keyed :class:`~repro.graph.bipartite.
BipartiteGraph` from scratch.  A :class:`PreparedGraph` is the bundle
that breaks the cycle: the graph is indexed **once** into a
:class:`~repro.graph.csr.CSRBipartite` snapshot, and every derived
artifact is computed lazily from the flat arrays and memoised on the
bundle:

* the flat ``N_{<=2}`` adjacency (:attr:`PreparedGraph.n_le2`) the
  bidegeneracy peel consumes;
* the three total search orders (:meth:`PreparedGraph.search_order`),
  memoised per order name so a repeated solve of the same graph never
  re-peels;
* the position-space adjacency views (:meth:`PreparedGraph.order_view`)
  the CSR centred-subgraph generator walks;
* prepared snapshots of core-reduction residuals
  (:meth:`PreparedGraph.for_subgraph`), so S1's Lemma 4 reduction only
  triggers a re-index when it actually shrinks the graph.

All flat arrays live in the typed buffers of :mod:`repro.graph.buffers`,
which is what makes a bundle *shippable*: :meth:`PreparedGraph.to_shm`
publishes the CSR arrays, the ``N_{<=2}`` arrays and a pickled copy of
the source graph into one :mod:`multiprocessing.shared_memory` segment,
and :meth:`PreparedGraph.from_shm` attaches in another process and
rebuilds the bundle with **zero-copy** views over the segment (under the
typed backends; the pure-list fallback copies once and detaches).  The
fingerprint stored in the segment is re-verified against the attached
graph content, so a stale or mixed-up segment name can cost an error,
never a wrong answer.

The bundle is immutable in the same by-convention sense as
:class:`CSRBipartite` and :class:`~repro.graph.bitset.IndexedBitGraph`:
it does not track later mutations of the source graph.  Memoisation only
ever *adds* derived data, so sharing one bundle across repeated solves
(what :class:`repro.api.engine.PreparedGraphCache` does) is safe.

Identity for caching purposes is the **content fingerprint**
(:func:`graph_fingerprint`): a digest over the ``repr``-sorted vertex
sets and edge list, so two graphs built in different insertion orders
hash equal exactly when they are equal.  Fingerprints are a cache *key*,
not a proof — the engine cache re-verifies equality on every hit, so a
collision can cost a re-preparation but never leaks one graph's arrays
into another graph's solve.

Layering note: this module lives in :mod:`repro.graph` because the
bundle *is* graph substrate (every layer above consumes it), but the
order computations it memoises live in :mod:`repro.cores`; those are
imported lazily inside the memoising methods to keep the package import
graph acyclic.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.buffers import (
    IntBuffer,
    SegmentKeepalive,
    attach_shared_memory,
    buffer_to_bytes,
    buffer_view,
    create_shared_memory,
    freeze_buffer,
    ints_from_buffer,
    pickleable_buffer,
    unlink_shared_memory,
)
from repro.graph.csr import CSRBipartite, sorted_vertex_keys

VertexKey = Tuple[str, Vertex]


def ensure_prepared_for(
    prepared: "PreparedGraph", graph: BipartiteGraph
) -> None:
    """Raise unless ``prepared`` was built from (an equal of) ``graph``.

    Every API that accepts a ``prepared=`` snapshot alongside a graph
    calls this first: shape alone is not enough — a same-shape snapshot
    of a different graph would silently have *its* edges decomposed or
    searched instead of the argument graph's.  The identity fast path
    makes the check free on the internal flows, which always pass the
    snapshot's own graph object.
    """
    if prepared.graph is not graph and prepared.graph != graph:
        raise InvalidParameterError(
            "prepared snapshot was built from a different graph than the "
            "one passed alongside it"
        )

#: How many core-reduction residual snapshots one bundle memoises.  The
#: residual chain of a deterministic solve has very few distinct sizes
#: (the heuristic finds the same incumbent every time), so a handful of
#: slots amortises repeated solves without letting an adversarial caller
#: grow the bundle without bound.
_MAX_CHILDREN = 4

#: Segment format tag; bump on any layout change so a stale attacher
#: fails loudly instead of misparsing.
_SHM_MAGIC = b"RPGB0001"
#: ``(num_left, num_vertices, len(indices), len(le2), len(graph_blob))``.
_SHM_COUNTS = struct.Struct("<5q")
_SHM_FINGERPRINT_LEN = 32
_SHM_HEADER_LEN = len(_SHM_MAGIC) + _SHM_FINGERPRINT_LEN + _SHM_COUNTS.size


def graph_fingerprint(graph: BipartiteGraph) -> str:
    """Content fingerprint of a graph: equal content, equal digest.

    The digest covers both sorted vertex label sets and the full
    adjacency, every entry by ``repr``, so insertion order does not
    matter: two graphs that compare equal under ``==`` fingerprint
    equal.  Distinct graphs can only collide through ``repr`` collisions
    between distinct labels (or a pathological ``repr`` containing the
    joiner characters) — acceptable for a cache key because the engine
    cache re-checks ``==`` on every hit, so a collision costs a
    re-preparation, never a wrong answer.

    The whole payload is assembled as one string and hashed in a single
    ``blake2b`` update, so the cost is one ``repr`` per vertex plus
    C-level sorts, joins and hashing — cheap enough to run once per
    engine solve.
    """
    right_repr = {v: repr(v) for v in graph.right_vertices()}
    parts: List[str] = [f"L{graph.num_left}"]
    parts.extend(sorted(map(repr, graph.left_vertices())))
    parts.append(f"R{graph.num_right}")
    parts.extend(sorted(right_repr.values()))
    parts.append(f"E{graph.num_edges}")
    rows = [
        "{}>{}".format(
            repr(u),
            ",".join(sorted(right_repr[v] for v in graph.neighbors_left(u))),
        )
        for u in graph.left_vertices()
    ]
    rows.sort()
    parts.extend(rows)
    payload = "\n".join(parts)
    return hashlib.blake2b(
        payload.encode("utf-8", "backslashreplace"), digest_size=16
    ).hexdigest()


class PreparedGraphShm:
    """Owner-side handle of one published :class:`PreparedGraph` segment.

    Returned by :meth:`PreparedGraph.to_shm`.  The creator of a segment
    owns its lifecycle: :meth:`destroy` (or ``close`` + ``unlink``) must
    run exactly once when the graph leaves service — the engine calls it
    from its eviction/shutdown hooks inside ``finally`` blocks so worker
    crashes cannot leak segments.  All teardown methods are idempotent.
    """

    __slots__ = ("_segment", "_closed", "_unlinked", "name", "fingerprint", "nbytes")

    def __init__(self, segment, fingerprint: str, nbytes: int) -> None:
        self._segment = segment
        self._closed = False
        self._unlinked = False
        #: The attach token workers receive instead of a pickled graph.
        self.name: str = segment.name
        self.fingerprint: str = fingerprint
        #: Logical payload size (header + arrays + graph blob); the OS
        #: may round the actual mapping up to a page multiple.
        self.nbytes: int = nbytes

    def close(self) -> None:
        """Unmap the owner's view of the segment (idempotent)."""
        if not self._closed:
            self._closed = True
            self._segment.close()

    def unlink(self) -> None:
        """Remove the segment name from the system (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            unlink_shared_memory(self._segment)

    def destroy(self) -> None:
        """Close and unlink in one idempotent call."""
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreparedGraphShm(name={self.name!r}, nbytes={self.nbytes})"


class PreparedGraph:
    """Immutable once-indexed bundle of a graph's flat solve artifacts."""

    __slots__ = (
        "graph",
        "csr",
        "labels",
        "_fingerprint",
        "_le2",
        "_orders",
        "_views",
        "_bicore",
        "_children",
        "_shm",
    )

    def __init__(self, graph: BipartiteGraph, csr: CSRBipartite) -> None:
        self.graph = graph
        self.csr = csr
        #: Label of every dense id (the ``(side, label)`` key minus the
        #: side marker): the id→label boundary map of the CSR subgraph
        #: generator, precomputed so the hot loop never indexes tuples.
        self.labels: List[Vertex] = [key[1] for key in csr.keys]
        self._fingerprint: Optional[str] = None
        self._le2: Optional[Tuple[IntBuffer, IntBuffer]] = None
        self._orders: Dict[str, List[VertexKey]] = {}
        self._views: Dict[str, "OrderView"] = {}
        self._bicore: Optional[
            Tuple[Dict[VertexKey, int], List[VertexKey]]
        ] = None
        self._children: Dict[Tuple[int, int, int], "PreparedGraph"] = {}
        #: The attached shared-memory segment keeping this bundle's
        #: zero-copy buffers alive, when it came from :meth:`from_shm`.
        #: Declared *after* every buffer-holding slot so refcount
        #: teardown releases the views before the segment unmaps.
        self._shm = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def prepare(cls, graph: BipartiteGraph) -> "PreparedGraph":
        """Index ``graph`` once and return the prepared bundle."""
        return cls(graph, CSRBipartite.from_bipartite(graph))

    # ------------------------------------------------------------------
    # memoised derived artifacts
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the source graph (lazy, cached)."""
        if self._fingerprint is None:
            self._fingerprint = graph_fingerprint(self.graph)
        return self._fingerprint

    @property
    def n_le2(self) -> Tuple[IntBuffer, IntBuffer]:
        """The flat ``N_{<=2}`` adjacency ``(indptr, indices)`` (cached)."""
        if self._le2 is None:
            from repro.cores.two_hop import n_le2_flat

            self._le2 = n_le2_flat(self.csr)
        return self._le2

    def bicore_decomposition(
        self,
    ) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
        """Bucket-peel bicore numbers and peel order (cached).

        Runs the default flat engine of :mod:`repro.cores.bicore` on this
        bundle's CSR and ``N_{<=2}`` arrays — no re-indexing — and
        memoises the result, so every later consumer (the bidegeneracy
        order, repeated solves) gets it for free.  The returned
        containers are the memoised objects: treat them as immutable
        (the public :func:`repro.cores.bicore.bicore_decomposition`
        wrapper hands out copies).
        """
        if self._bicore is None:
            from repro.cores.bicore import flat_bicore_decomposition

            self._bicore = flat_bicore_decomposition(self)
        return self._bicore

    def search_order(self, order: str) -> List[VertexKey]:
        """The requested total search order (memoised per order name).

        Accepts the same names as :func:`repro.cores.orders.search_order`
        and produces identical orders: the degree order falls out of the
        CSR id order directly (ids *are* the ``(side, repr(label))``
        tie-break), the degeneracy order delegates to the label-keyed
        peel, and the bidegeneracy order reuses
        :meth:`bicore_decomposition`.

        The returned list is the memoised object — treat it as immutable
        (mutating it would corrupt every later solve of this graph); its
        identity is also what keys the :meth:`order_view` memoisation.
        The public :func:`repro.cores.orders.search_order` wrapper hands
        out copies instead.
        """
        cached = self._orders.get(order)
        if cached is None:
            cached = self._compute_order(order)
            self._orders[order] = cached
        return cached

    def _compute_order(self, order: str) -> List[VertexKey]:
        from repro.cores.orders import (
            ORDER_BIDEGENERACY,
            ORDER_DEGENERACY,
            ORDER_DEGREE,
            search_order,
        )

        if order == ORDER_DEGREE:
            # Dense ids are assigned left side first, ``repr``-sorted per
            # side, so sorting ids by ``(-degree, id)`` is exactly the
            # label-keyed ``(-degree, side, repr(label))`` key.
            csr = self.csr
            ids = sorted(range(csr.num_vertices), key=lambda i: (-csr.degree(i), i))
            keys = csr.keys
            return [keys[i] for i in ids]
        if order == ORDER_BIDEGENERACY:
            return list(self.bicore_decomposition()[1])
        if order == ORDER_DEGENERACY:
            return search_order(self.graph, order)
        # Unknown names fall through to the canonical validator so the
        # error message stays in one place.
        return search_order(self.graph, order)

    def order_view(self, order: List[VertexKey]) -> "OrderView":
        """The position-space adjacency view for a total order.

        When ``order`` is (the exact list object of) one of this bundle's
        memoised :meth:`search_order` results, the view is memoised too —
        which is how a repeated solve of one graph generates its centred
        subgraphs without rebuilding anything.  Arbitrary order lists get
        a fresh view.
        """
        for name, cached in self._orders.items():
            if cached is order:
                view = self._views.get(name)
                if view is None:
                    view = OrderView(self, order)
                    self._views[name] = view
                return view
        return OrderView(self, order)

    # ------------------------------------------------------------------
    # residual snapshots
    # ------------------------------------------------------------------
    def for_subgraph(self, residual: BipartiteGraph) -> "PreparedGraph":
        """A prepared snapshot for a reduction residual of this graph.

        Returns ``self`` when ``residual`` has this graph's exact shape
        (the Lemma 4 reduction removed nothing — induced subgraphs of one
        graph are determined by their vertex sets, so equal counts mean
        equal content).  Otherwise the residual's own snapshot is
        prepared and memoised, keyed by its shape: the ``k``-cores of one
        graph are nested, so within one reduction chain the shape
        identifies the residual — and a full equality check guards the
        lookup anyway, because this bundle may outlive a single solve in
        the engine cache.
        """
        shape = (residual.num_left, residual.num_right, residual.num_edges)
        if shape == (
            self.graph.num_left,
            self.graph.num_right,
            self.graph.num_edges,
        ):
            return self
        child = self._children.get(shape)
        if child is not None and child.graph == residual:
            return child
        child = PreparedGraph.prepare(residual)
        if len(self._children) >= _MAX_CHILDREN:
            self._children.pop(next(iter(self._children)))
        self._children[shape] = child
        return child

    # ------------------------------------------------------------------
    # shared-memory handoff
    # ------------------------------------------------------------------
    def to_shm(self) -> PreparedGraphShm:
        """Publish this bundle into one shared-memory segment.

        Segment layout: magic, the content fingerprint, the five counts,
        then the raw int64 bytes of ``csr.indptr``, ``csr.indices``,
        ``n_le2`` pointer and index arrays (forced now — materialising
        them once on the owner is the point of sharing), and finally a
        pickle of the label-keyed source graph.  The graph blob rides
        along because workers need the label-keyed form for the solvers;
        it is unpickled **once per attach**, not once per request, which
        is the pickling the handoff eliminates.

        The caller owns the returned handle's lifecycle (see
        :class:`PreparedGraphShm`); on a partially written segment the
        segment is destroyed before the error propagates.
        """
        csr = self.csr
        le2_ptr, le2 = self.n_le2
        blob = pickle.dumps(self.graph, protocol=pickle.HIGHEST_PROTOCOL)
        fingerprint = self.fingerprint.encode("ascii")
        if len(fingerprint) != _SHM_FINGERPRINT_LEN:  # pragma: no cover
            raise InvalidParameterError(
                "unexpected fingerprint width; segment format needs updating"
            )
        chunks = [
            _SHM_MAGIC,
            fingerprint,
            _SHM_COUNTS.pack(
                csr.num_left,
                csr.num_vertices,
                len(csr.indices),
                len(le2),
                len(blob),
            ),
            buffer_to_bytes(csr.indptr),
            buffer_to_bytes(csr.indices),
            buffer_to_bytes(le2_ptr),
            buffer_to_bytes(le2),
            blob,
        ]
        nbytes = sum(len(chunk) for chunk in chunks)
        segment = create_shared_memory(nbytes)
        try:
            buf = segment.buf
            offset = 0
            for chunk in chunks:
                buf[offset : offset + len(chunk)] = chunk
                offset += len(chunk)
        except BaseException:
            segment.close()
            segment.unlink()
            raise
        return PreparedGraphShm(segment, self.fingerprint, nbytes)

    @classmethod
    def from_shm(
        cls,
        name: str,
        expected_fingerprint: Optional[str] = None,
        *,
        backend: Optional[str] = None,
        verify_content: bool = False,
    ) -> "PreparedGraph":
        """Attach to a published segment and rebuild the bundle.

        Under the typed backends the CSR and ``N_{<=2}`` buffers are
        **views over the segment** — no per-element copy, and the
        attached segment stays referenced by the bundle for as long as
        the bundle lives.  The pure-list backend copies the arrays once
        and detaches immediately.

        ``expected_fingerprint`` (the value the engine ships alongside
        the segment name) must match the fingerprint stored in the
        header, so attaching a stale, recycled or mixed-up segment
        raises instead of silently solving the wrong graph.  Passing
        ``verify_content=True`` additionally recomputes the fingerprint
        from the attached graph itself — a full content re-hash that
        costs as much as preparing the order arrays, so it is opt-in
        (tests use it; the per-worker attach path, whose whole point is
        being cheaper than a pickle round-trip, does not).  Dense ids
        are rebuilt with the same canonical key sort the owner used, so
        both sides agree on every id.
        """
        segment = attach_shared_memory(name)
        try:
            buf = segment.buf
            offset = len(_SHM_MAGIC)
            if bytes(buf[:offset]) != _SHM_MAGIC:
                raise InvalidParameterError(
                    f"shared-memory segment {name!r} is not a PreparedGraph "
                    "segment (bad magic)"
                )
            try:
                fingerprint = bytes(
                    buf[offset : offset + _SHM_FINGERPRINT_LEN]
                ).decode("ascii")
            except UnicodeDecodeError as exc:
                raise InvalidParameterError(
                    f"shared-memory segment {name!r} header is garbled "
                    "(undecodable fingerprint)"
                ) from exc
            offset += _SHM_FINGERPRINT_LEN
            if (
                expected_fingerprint is not None
                and fingerprint != expected_fingerprint
            ):
                raise InvalidParameterError(
                    f"shared-memory segment {name!r} holds fingerprint "
                    f"{fingerprint}, expected {expected_fingerprint}"
                )
            # A truncated or corrupted body must surface as the canonical
            # validation error — the attach-side degradation path keys on
            # it — never as a raw struct/pickle/buffer failure.
            try:
                num_left, n, len_indices, len_le2, blob_len = _SHM_COUNTS.unpack_from(
                    buf, offset
                )
                offset = _SHM_HEADER_LEN

                def int_region(count: int) -> IntBuffer:
                    nonlocal offset
                    region = buf[offset : offset + count * 8]
                    offset += count * 8
                    return ints_from_buffer(region, backend)

                indptr = int_region(n + 1)
                indices = int_region(len_indices)
                le2_ptr = int_region(n + 1)
                le2 = int_region(len_le2)
                graph = pickle.loads(bytes(buf[offset : offset + blob_len]))
            except InvalidParameterError:
                raise
            except (
                struct.error,
                pickle.UnpicklingError,
                ValueError,
                TypeError,
                EOFError,
                IndexError,
                KeyError,
                AttributeError,
                MemoryError,
            ) as exc:
                raise InvalidParameterError(
                    f"shared-memory segment {name!r} body is corrupted or "
                    f"truncated: {type(exc).__name__}: {exc}"
                ) from exc
            if verify_content and graph_fingerprint(graph) != fingerprint:
                raise InvalidParameterError(
                    f"shared-memory segment {name!r} content does not match "
                    "its stored fingerprint"
                )
            keys, keys_num_left = sorted_vertex_keys(
                graph.left_vertices(), graph.right_vertices()
            )
            if keys_num_left != num_left or len(keys) != n:
                raise InvalidParameterError(
                    f"shared-memory segment {name!r} shape disagrees with "
                    "its graph payload"
                )
            csr = CSRBipartite(keys, indptr, indices, num_left, backend=backend)
            prepared = cls(graph, csr)
            prepared._le2 = (
                freeze_buffer(le2_ptr, backend),
                freeze_buffer(le2, backend),
            )
            prepared._fingerprint = fingerprint
            if isinstance(indptr, list):
                # List backend: everything was copied out; detach now.
                segment.close()
            else:
                prepared._shm = SegmentKeepalive(segment)
            return prepared
        except BaseException:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views still exported
                pass
            raise

    # ------------------------------------------------------------------
    # pickling — the handoff *baseline*.  Ships the graph plus the CSR
    # and N_<=2 arrays (converting any segment views to owned arrays);
    # memoised orders/views/residuals are derived data and rebuild lazily.
    # ------------------------------------------------------------------
    def __getstate__(self):
        le2 = self._le2
        if le2 is not None:
            le2 = (pickleable_buffer(le2[0]), pickleable_buffer(le2[1]))
        return (self.graph, self.csr, self._fingerprint, le2)

    def __setstate__(self, state) -> None:
        graph, csr, fingerprint, le2 = state
        self.__init__(graph, csr)
        self._fingerprint = fingerprint
        if le2 is not None:
            self._le2 = le2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PreparedGraph({self.csr!r})"


class OrderView:
    """A prepared snapshot re-indexed along one total search order.

    Everything is in *position space*: vertex ``p`` is the order's
    ``p``-th vertex, and row ``p`` of the flat adjacency holds the
    positions of its neighbours **sorted ascending**.  That sort is the
    whole trick: the neighbours appearing *after* position ``p`` — the
    only ones vertex-centred subgraph generation ever looks at — are a
    contiguous tail located by one binary search, so the generator
    touches later vertices only instead of filtering every neighbour
    with a comparison (on average half the neighbourhood volume, with no
    per-element test).

    The rows are packed CSR-style into one flat positions buffer
    (:attr:`flat_positions`, row ``p`` at
    ``row_ptr[p]:row_ptr[p + 1]``), with :attr:`flat_labels` the
    element-aligned label translation: a later-tail of labels is one
    slice that feeds ``set.update`` directly, and under the typed
    backends a later-tail of *positions* is a zero-copy view slice.

    Building a view costs one pass over the adjacency plus per-row sorts
    (``O(|E| log dmax)``); :meth:`PreparedGraph.order_view` memoises it
    per order name, so one build serves every solve of the graph.
    """

    __slots__ = (
        "prepared",
        "order_ids",
        "positions",
        "row_ptr",
        "flat_positions",
        "position_rows",
        "flat_labels",
        "is_left",
        "labels",
    )

    def __init__(self, prepared: "PreparedGraph", order: List[VertexKey]) -> None:
        csr = prepared.csr
        indptr = buffer_view(csr.indptr)
        indices = buffer_view(csr.indices)
        self.prepared = prepared
        order_ids, positions = positions_of(csr, order)
        self.order_ids: List[int] = order_ids
        self.positions: List[int] = positions
        row_ptr = [0] * (len(order_ids) + 1)
        flat_positions: List[int] = []
        for p, vertex in enumerate(order_ids):
            flat_positions.extend(
                sorted(
                    positions[neighbour]
                    for neighbour in indices[indptr[vertex] : indptr[vertex + 1]]
                )
            )
            row_ptr[p + 1] = len(flat_positions)
        self.row_ptr: IntBuffer = freeze_buffer(row_ptr)
        self.flat_positions: IntBuffer = freeze_buffer(flat_positions)
        #: Slice-cheap view of :attr:`flat_positions` for the generator.
        self.position_rows = buffer_view(self.flat_positions)
        num_left = csr.num_left
        self.is_left: List[bool] = [
            vertex < num_left for vertex in self.order_ids
        ]
        #: Label of the vertex at each position — the id→label boundary
        #: map in position space, so member-set construction is one list
        #: index per member.
        self.labels: List[Vertex] = [
            prepared.labels[vertex] for vertex in self.order_ids
        ]
        labels = self.labels
        #: :attr:`flat_positions` translated to labels, element-aligned:
        #: member sets build in C with no per-element mapping at all.
        self.flat_labels: List[Vertex] = [labels[p] for p in flat_positions]

    def __len__(self) -> int:
        return len(self.order_ids)


def positions_of(
    csr: CSRBipartite, order: Sequence[VertexKey]
) -> Tuple[List[int], List[int]]:
    """Map a key-space total order onto ``(order_ids, positions)`` arrays.

    ``order`` must be a permutation of the snapshot's vertex keys (the
    bridging stage validates this before generating subgraphs); a foreign
    key raises ``KeyError`` exactly like the label-keyed position maps.
    """
    index = csr.index_of
    order_ids = [index(key) for key in order]
    positions = [0] * len(order_ids)
    for position, vertex in enumerate(order_ids):
        positions[vertex] = position
    return order_ids, positions
