"""Tests for the unified public solver API (solve_mbb)."""

from __future__ import annotations

import pytest

from repro import (
    Biclique,
    BipartiteGraph,
    maximum_balanced_biclique,
    solve_mbb,
)
from repro.exceptions import InvalidParameterError
from repro.graph.generators import (
    complete_bipartite,
    random_bipartite,
    random_power_law_bipartite,
)
from repro.mbb.solver import (
    METHOD_BASIC,
    METHOD_DENSE,
    METHOD_SPARSE,
    choose_method,
)
from repro.baselines.brute_force import brute_force_side_size


class TestSolveMBB:
    @pytest.mark.parametrize("method", ["auto", METHOD_DENSE, METHOD_SPARSE, METHOD_BASIC])
    def test_all_methods_agree_with_oracle(self, method, random_graph_factory):
        for seed in range(6):
            graph = random_graph_factory(seed, max_side=8)
            result = solve_mbb(graph, method=method)
            assert result.side_size == brute_force_side_size(graph)

    def test_unknown_method_raises(self):
        with pytest.raises(InvalidParameterError):
            solve_mbb(BipartiteGraph(), method="quantum")

    def test_docstring_example(self):
        graph = BipartiteGraph(
            edges=[(0, "x"), (0, "y"), (1, "x"), (1, "y"), (2, "y")]
        )
        result = solve_mbb(graph)
        assert result.side_size == 2
        assert sorted(result.biclique.left) == [0, 1]
        assert sorted(result.biclique.right) == ["x", "y"]

    def test_maximum_balanced_biclique_returns_biclique(self):
        graph = complete_bipartite(3, 4)
        biclique = maximum_balanced_biclique(graph)
        assert isinstance(biclique, Biclique)
        assert biclique.side_size == 3

    def test_budgets_are_forwarded(self):
        graph = random_bipartite(20, 20, 0.5, seed=1)
        result = solve_mbb(graph, method=METHOD_BASIC, node_budget=2)
        assert not result.optimal

    def test_sparse_config_is_forwarded(self):
        from repro import SparseConfig

        graph = random_power_law_bipartite(50, 50, 2.0, seed=2)
        result = solve_mbb(
            graph, method=METHOD_SPARSE, sparse_config=SparseConfig(order="degree")
        )
        # Cross-check against the dense solver (the oracle cannot enumerate
        # a 50-vertex side).
        assert result.side_size == solve_mbb(graph, method=METHOD_DENSE).side_size


class TestChooseMethod:
    def test_small_graphs_go_dense(self):
        assert choose_method(random_bipartite(4, 4, 0.1, seed=1)) == METHOD_DENSE

    def test_large_sparse_graphs_go_sparse(self):
        graph = random_power_law_bipartite(200, 200, 2.0, seed=1)
        assert choose_method(graph) == METHOD_SPARSE

    def test_large_dense_graphs_go_dense(self):
        graph = random_bipartite(40, 40, 0.8, seed=1)
        assert choose_method(graph) == METHOD_DENSE
