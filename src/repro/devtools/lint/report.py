"""Rendering of :class:`~repro.devtools.lint.runner.LintResult`.

Two formats, both with deterministic ordering:

* **text** — one ``path:line:col: CODE message`` line per new finding
  (the clickable convention every editor understands) plus a summary
  counting baselined/suppressed findings, so a green run still shows
  what the baseline is absorbing;
* **json** — a machine-readable document for CI and tooling, mirroring
  the text content (``schema_version`` guards future evolution).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.devtools.lint.runner import LintResult

#: Version of the ``--json`` document schema.
REPORT_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report; one line per new finding plus a summary."""
    lines: List[str] = []
    for finding in result.new_findings:
        lines.append(f"{finding.location}: {finding.code} {finding.message}")
    noun = "finding" if len(result.new_findings) == 1 else "findings"
    summary = (
        f"reprolint: {len(result.new_findings)} new {noun} "
        f"({len(result.baselined_findings)} baselined, "
        f"{result.suppressed} suppressed) "
        f"across {result.checked_files} files "
        f"({result.modules} modules indexed) "
        f"[rules: {', '.join(result.rules)}]"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """JSON report used by CI (``repro-mbb lint --json``)."""
    document: Dict[str, object] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "tool": "reprolint",
        "rules": list(result.rules),
        "checked_files": result.checked_files,
        "modules": result.modules,
        "suppressed": result.suppressed,
        "new_findings": [finding.to_dict() for finding in result.new_findings],
        "baselined_findings": [
            finding.to_dict() for finding in result.baselined_findings
        ],
        "exit_code": result.exit_code,
    }
    return json.dumps(document, indent=2)
