"""The size-constrained ``(a, b)`` biclique problem (paper §4.2).

The paper's polynomial case is built on the *size-constrained biclique
problem*: given integers ``(a, b)``, decide whether the graph contains a
biclique ``(A, B)`` with ``|A| >= a`` and ``|B| >= b``, and the *maximal
instances* of that problem — the Pareto frontier of achievable ``(a, b)``
pairs.  This module exposes both as a small public API:

* :func:`find_biclique_of_size` / :func:`has_biclique_of_size` solve one
  ``(a, b)`` instance exactly with a dedicated branch and bound;
* :func:`maximal_biclique_profile` computes the full Pareto frontier of
  maximal ``(a, b)`` pairs (the object Observation 2 enumerates in closed
  form for complement paths and cycles), which is useful in its own right
  for co-clustering applications that trade rows for columns.

Both are exponential in the worst case (the problems are NP-hard for
general ``a = b``) and intended for moderate graphs or pruned subgraphs;
they accept the same node/time budgets as every other solver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.result import Biclique


def _search(
    graph: BipartiteGraph,
    context: SearchContext,
    a_target: int,
    b_target: int,
    a: Set[Vertex],
    b: Set[Vertex],
    ca: Set[Vertex],
    cb: Set[Vertex],
    depth: int,
) -> Optional[Biclique]:
    """Depth-first search for a biclique with ``|A| >= a_target, |B| >= b_target``.

    The invariant is the usual one: every candidate in ``ca`` is adjacent to
    all of ``b`` and every candidate in ``cb`` to all of ``a``.  The search
    succeeds as soon as both targets are reachable by one-sided completion.
    """
    context.enter_node(depth)
    if len(a) + len(ca) < a_target or len(b) + len(cb) < b_target:
        context.record_leaf(depth)
        return None
    if len(a) >= a_target and len(b) >= b_target:
        context.record_leaf(depth)
        return Biclique.of(a, b)

    # One-sided completions: candidates are adjacent to the whole opposite
    # partial side, so either side can be topped up for free.
    if len(a) >= a_target and len(b) + len(cb) >= b_target:
        needed = b_target - len(b)
        extra = sorted(cb, key=repr)[:needed]
        context.record_leaf(depth)
        return Biclique.of(a, set(b) | set(extra))
    if len(b) >= b_target and len(a) + len(ca) >= a_target:
        needed = a_target - len(a)
        extra = sorted(ca, key=repr)[:needed]
        context.record_leaf(depth)
        return Biclique.of(set(a) | set(extra), b)

    # Branch on the side that is still short, preferring the candidate with
    # the largest surviving neighbourhood.
    extend_left = (a_target - len(a)) >= (b_target - len(b))
    if extend_left and ca:
        vertex = max(ca, key=lambda u: (len(graph.neighbors_left(u) & cb), repr(u)))
        include = _search(
            graph,
            context,
            a_target,
            b_target,
            a | {vertex},
            b,
            ca - {vertex},
            cb & graph.neighbors_left(vertex),
            depth + 1,
        )
        if include is not None:
            return include
        return _search(
            graph, context, a_target, b_target, a, b, ca - {vertex}, cb, depth + 1
        )
    if cb:
        vertex = max(cb, key=lambda v: (len(graph.neighbors_right(v) & ca), repr(v)))
        include = _search(
            graph,
            context,
            a_target,
            b_target,
            a,
            b | {vertex},
            ca & graph.neighbors_right(vertex),
            cb - {vertex},
            depth + 1,
        )
        if include is not None:
            return include
        return _search(
            graph, context, a_target, b_target, a, b, ca, cb - {vertex}, depth + 1
        )
    context.record_leaf(depth)
    return None


def find_biclique_of_size(
    graph: BipartiteGraph,
    a: int,
    b: int,
    *,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> Optional[Biclique]:
    """Return a biclique with ``|A| >= a`` and ``|B| >= b``, or ``None``.

    Raises :class:`InvalidParameterError` for negative targets.  A ``(0, 0)``
    instance is satisfied by the empty biclique.  When a budget is exhausted
    before a witness is found the function returns ``None`` (the caller can
    inspect the budget through its own :class:`SearchContext` if needed).
    """
    if a < 0 or b < 0:
        raise InvalidParameterError(f"size targets must be non-negative, got ({a}, {b})")
    if a == 0 and b == 0:
        return Biclique.empty()
    if a > graph.num_left or b > graph.num_right:
        return None
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    try:
        return _search(
            graph, context, a, b, set(), set(), graph.left, graph.right, 0
        )
    except SearchAborted:
        return None


def has_biclique_of_size(graph: BipartiteGraph, a: int, b: int, **kwargs) -> bool:
    """Decision version of :func:`find_biclique_of_size`."""
    return find_biclique_of_size(graph, a, b, **kwargs) is not None


def maximal_biclique_profile(
    graph: BipartiteGraph,
    *,
    max_side: Optional[int] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> List[Tuple[int, int]]:
    """Pareto frontier of achievable ``(|A|, |B|)`` biclique sizes.

    The returned list contains every *maximal instance* in the paper's sense:
    pairs ``(a, b)`` such that an ``(a, b)`` biclique exists but neither
    ``(a + 1, b)`` nor ``(a, b + 1)`` does.  Pairs are sorted by decreasing
    ``a``.  Trivial instances with an empty side are included (``(a_max, 0)``
    and ``(0, b_max)``) because the combination DP of Algorithm 2 consumes
    them.

    ``max_side`` caps the explored ``a`` range (useful on larger graphs when
    only small profiles are of interest).
    """
    a_cap = graph.num_left if max_side is None else min(max_side, graph.num_left)
    b_cap = graph.num_right if max_side is None else min(max_side, graph.num_right)

    # For each a in 0..a_cap find the largest b such that an (a, b) biclique
    # exists; b is monotonically non-increasing in a, which the loop exploits
    # by starting each scan from the previous best.
    frontier: Dict[int, int] = {}
    previous_best = b_cap
    for a in range(0, a_cap + 1):
        best_b = -1
        for b in range(previous_best, -1, -1):
            witness = find_biclique_of_size(
                graph, a, b, node_budget=node_budget, time_budget=time_budget
            )
            if witness is not None:
                best_b = b
                break
        if best_b < 0:
            break
        frontier[a] = best_b
        previous_best = best_b

    # Keep only Pareto-maximal pairs.
    result: List[Tuple[int, int]] = []
    best_seen_b = -1
    for a in sorted(frontier, reverse=True):
        b = frontier[a]
        if b > best_seen_b:
            result.append((a, b))
            best_seen_b = b
    result.sort(key=lambda pair: -pair[0])
    return result


def balanced_side_from_profile(profile: List[Tuple[int, int]]) -> int:
    """Largest balanced side implied by a profile (``max min(a, b)``)."""
    return max((min(a, b) for a, b in profile), default=0)
