"""Bicore decomposition, bidegeneracy and the bidegeneracy order.

These implement the paper's novel sparsity machinery (Definitions 3-5,
Algorithm 7, Lemma 10):

* the **bicore number** ``bc(u)`` is the core number computed with respect
  to ``N_{<=2}`` neighbourhoods instead of plain neighbourhoods;
* the **bidegeneracy** ``δ̈(G)`` is the maximum bicore number;
* the **bidegeneracy order** peels vertices by smallest remaining
  ``|N_{<=2}|``, breaking ties by smallest remaining 1-hop degree — the
  tie-break of Lemma 10, which guarantees that a peel step decreases each
  remaining ``|N_{<=2}|`` by at most one and keeps the decomposition
  linear in ``sum_u |N_{<=2}(u)|``.

Two implementations are provided: the fast peeling of Algorithm 7
(:func:`bicore_numbers` with ``exact=False``, the default) and a reference
implementation that recomputes 2-hop neighbourhoods exactly after every
removal (``exact=True``), used by tests on small graphs to validate the
peeling.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.cores.two_hop import n_le2_adjacency

VertexKey = Tuple[str, Vertex]


def _one_hop_degrees(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    degrees: Dict[VertexKey, int] = {}
    for u in graph.left_vertices():
        degrees[(LEFT, u)] = graph.degree_left(u)
    for v in graph.right_vertices():
        degrees[(RIGHT, v)] = graph.degree_right(v)
    return degrees


def _peel(
    graph: BipartiteGraph,
) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
    """Shared peeling loop returning ``(bicore numbers, peel order)``.

    A lazy-deletion heap keyed by ``(|N_<=2|, |N|)`` implements the two
    peeling conditions of Lemma 10.  Entries become stale when a
    neighbour's removal lowers a key; stale entries are skipped on pop,
    which keeps the loop ``O(M log M)`` with ``M = sum_u |N_{<=2}(u)|`` —
    the log factor is the price of using a binary heap instead of the
    paper's two-level bucket structure, and is irrelevant at the scales a
    Python reproduction can run.
    """
    adjacency = n_le2_adjacency(graph)
    one_hop = _one_hop_degrees(graph)
    sizes = {key: len(neigh) for key, neigh in adjacency.items()}
    heap: List[Tuple[int, int, VertexKey]] = [
        (sizes[key], one_hop[key], key) for key in adjacency
    ]
    heapq.heapify(heap)

    bicore: Dict[VertexKey, int] = {}
    order: List[VertexKey] = []
    removed: Set[VertexKey] = set()
    current = 0
    while heap:
        size, degree, key = heapq.heappop(heap)
        if key in removed:
            continue
        if size != sizes[key] or degree != one_hop[key]:
            continue  # stale entry
        current = max(current, size)
        bicore[key] = current
        order.append(key)
        removed.add(key)
        for neighbour in adjacency[key]:
            if neighbour in removed:
                continue
            adjacency[neighbour].discard(key)
            sizes[neighbour] -= 1
            if key[0] != neighbour[0]:
                # A removed 1-hop neighbour also lowers the plain degree used
                # as the Lemma 10 tie-break.
                one_hop[neighbour] -= 1
            heapq.heappush(
                heap, (sizes[neighbour], one_hop[neighbour], neighbour)
            )
    return bicore, order


def bicore_numbers(
    graph: BipartiteGraph, *, exact: bool = False
) -> Dict[VertexKey, int]:
    """Bicore number of every vertex, keyed by ``(side, label)``.

    Parameters
    ----------
    exact:
        When ``True``, recompute every ``|N_{<=2}|`` from scratch after each
        removal instead of decrementing counters.  This is ``O(n * M)`` and
        only intended as a test oracle on small graphs.
    """
    if exact:
        return _exact_bicore_numbers(graph)
    bicore, _ = _peel(graph)
    return bicore


def bidegeneracy(graph: BipartiteGraph) -> int:
    """Bidegeneracy ``δ̈(G)``: the maximum bicore number (0 if empty)."""
    numbers = bicore_numbers(graph)
    return max(numbers.values(), default=0)


def bidegeneracy_order(graph: BipartiteGraph) -> List[VertexKey]:
    """A bidegeneracy order (Definition 5) of all vertices.

    Every vertex has the smallest remaining ``|N_{<=2}|`` in the subgraph
    induced by itself and the vertices after it in the returned list.
    """
    _, order = _peel(graph)
    return order


def _exact_bicore_numbers(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    """Reference bicore decomposition that re-derives ``N_{<=2}`` per step."""
    working = graph.copy()
    bicore: Dict[VertexKey, int] = {}
    current = 0
    while working.num_vertices:
        adjacency = n_le2_adjacency(working)
        one_hop = _one_hop_degrees(working)
        key = min(
            adjacency,
            key=lambda k: (len(adjacency[k]), one_hop[k], repr(k)),
        )
        current = max(current, len(adjacency[key]))
        bicore[key] = current
        side, label = key
        if side == LEFT:
            working.remove_left_vertex(label)
        else:
            working.remove_right_vertex(label)
    return bicore
