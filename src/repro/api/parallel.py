"""Parallel S3: fan surviving subgraphs over a process pool.

One big solve should saturate all cores.  The verification stage (S3)
searches each surviving vertex-centred subgraph independently — the
embarrassing parallelism the paper's framework implies but the serial
loop in :mod:`repro.mbb.verify` never exploits.  This module is the
service-layer half of that stage: it installs itself into
:func:`repro.mbb.verify.register_parallel_verifier` (the RPL007
dependency inversion — kernel modules never import pools or shared
memory) and, when :func:`repro.mbb.verify.verify_mbb` offers it a
scheduled family, dispatches *positions* instead of subgraphs:

* the prepared snapshot of the residual graph is published once through
  the engine's shared-memory registry (the PR 8 handoff), and each task
  carries only the segment name, the fingerprint, the order name and a
  tuple of integer order positions — workers attach by name (memoised
  per process) and regenerate exactly their slice of the family with
  :func:`repro.mbb.vertex_centred.vertex_centred_subgraphs_at`;
* the schedule is hardest-first (descending min-side bound), chunked so
  stragglers start early and the pool round trip amortises;
* incumbent improvements broadcast both ways through an
  :class:`IncumbentChannel` — three ``multiprocessing.Value`` primitives
  inherited by workers through the pool *initializer* (synchronized
  objects must never ride a ``submit`` payload; reprolint RPL004 flags
  the attempt) — so in-flight searches tighten their Lemma-5/size
  bounds mid-search, and chunks whose bound can no longer beat the
  incumbent are pruned parent-side without ever being submitted;
* a parent-side abort (deadline, cancel hook) flips the channel's
  cancel flag — every worker's ``cancel_hook`` polls it through
  ``SearchContext.checkpoint()`` — and the pool is discarded so a
  wedged worker cannot poison later solves;
* worker failures degrade, never lose: a task that errors inside its
  fault boundary (or cannot attach the segment) is re-run serially in
  the parent, and worker deaths (``BrokenProcessPool``) trigger bounded
  pool rebuilds before the unfinished remainder degrades to the serial
  loop — the incumbent lives in the parent and survives all of it.

**Determinism.**  The final incumbent *size* always equals the serial
stage's: every subgraph is either searched exhaustively (with a floor
that only ever names the size of a real biclique, hence never exceeds
the optimum) or pruned by a bound the serial loop would apply too.  The
witness can vary with scheduling in the default mode; ``strict`` mode
(:class:`~repro.mbb.verify.ParallelVerifyOptions`) pins it by searching
every subgraph from the stage's starting floor in its own context and
applying results in subgraph order — bitwise-reproducible across runs
and worker counts, at the cost of the mid-flight broadcasts.

The pool is module-level and persists across solves (a generation
counter makes stale tasks inert), which is what lets repeated solves
amortise worker start-up and per-worker segment attaches.  It is keyed
by worker count *and* the :envvar:`REPRO_FAULTS` spec, so chaos tests
arming env faults never inherit a pool from before the arming.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.devtools import faults
from repro.graph.prepared import PreparedGraph
from repro.mbb import verify as _verify
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.result import SearchStats
from repro.mbb.vertex_centred import (
    VertexCentredSubgraph,
    vertex_centred_subgraphs_at,
)

#: Parent re-poll cadence while tasks are in flight: short enough that a
#: deadline or cancel hook fires promptly, long enough to stay off the
#: hot path (mirrors the engine's watchdog poll).
_POLL_SECONDS = 0.05

#: Chunks submitted per worker over a stage's lifetime: enough slack for
#: dynamic balancing, few enough that late chunks exist to be pruned by
#: broadcast incumbents.
_CHUNKS_PER_WORKER = 4

#: Task outcome markers (first element of every ``_run_s3_task`` return).
_TASK_OK = "ok"
_TASK_STALE = "stale"
_TASK_DEGRADED = "degraded"
_TASK_ERROR = "error"


class IncumbentChannel:
    """The cross-process incumbent: three shared values, parent-owned.

    ``best`` carries the best known side size (advisory — the witness
    always travels with a task result), ``cancel`` the abort flag, and
    ``generation`` a monotone counter that makes tasks from a previous
    stage inert after the parent has moved on.  Workers receive the
    values through pool-initializer inheritance, the only transport
    synchronized primitives support.
    """

    def __init__(self) -> None:
        self.best = multiprocessing.Value("q", 0)
        self.cancel = multiprocessing.Value("b", 0)
        self.generation = multiprocessing.Value("q", 0)

    def begin(self, floor: int) -> int:
        """Start a new stage: reset cancel/best, return the new generation."""
        with self.cancel.get_lock():
            self.cancel.value = 0
        with self.best.get_lock():
            self.best.value = int(floor)
        with self.generation.get_lock():
            self.generation.value += 1
            return int(self.generation.value)

    def cancel_generation(self) -> None:
        """Tell every in-flight worker to abort at its next checkpoint."""
        with self.cancel.get_lock():
            self.cancel.value = 1


@dataclass
class _WorkerChannel:
    """Worker-side view of the channel (set by the pool initializer)."""

    best: object
    cancel: object
    generation: object


#: Installed in each worker by :func:`_init_worker_channel`.
_WORKER_CHANNEL: Optional[_WorkerChannel] = None


def _init_worker_channel(best: object, cancel: object, generation: object) -> None:
    """Pool initializer: adopt the parent's shared incumbent values."""
    global _WORKER_CHANNEL
    _WORKER_CHANNEL = _WorkerChannel(best=best, cancel=cancel, generation=generation)


class _GenerationCancelled:
    """Picklable ``cancel_hook``: fires on cancel flag or stale generation.

    A module-level callable *object* (not a lambda/closure — the RPL004
    discipline) holding only the task's generation number; the shared
    values themselves are read through the worker-global channel, so the
    hook never captures an unpicklable synchronized primitive.
    """

    __slots__ = ("generation",)

    def __init__(self, generation: int) -> None:
        self.generation = generation

    def __call__(self) -> bool:
        channel = _WORKER_CHANNEL
        if channel is None:
            return False
        return bool(
            channel.cancel.value  # type: ignore[attr-defined]
            or int(channel.generation.value) != self.generation  # type: ignore[attr-defined]
        )


def _run_s3_task(task: Tuple[object, ...]) -> Tuple[object, ...]:
    """Worker entry point: search one chunk of centred subgraphs.

    The task tuple carries only picklable primitives (the positions and
    their min-side bounds, the segment name, the submit-time floor,
    kernel switches, the remaining wall allowance).  Everything here runs behind the ``except
    Exception`` fault boundary (RPL009): any failure — including an
    injected ``worker.solve`` fault — becomes a structured marker the
    parent degrades to its serial path, never a poisoned pool.

    Returns ``(status, improvements, stats_dict, aborted)`` where
    ``improvements`` is a list of ``(position, left, right)`` witness
    tuples that beat the submit-time floor.
    """
    positions: Tuple[int, ...] = ()
    try:
        (
            generation,
            segment,
            fingerprint,
            order_name,
            positions,
            bounds,
            floor,
            branching,
            use_core_pruning,
            kernel,
            strict,
            time_budget,
            tag,
        ) = task
        faults.hit("worker.hang", key=tag)
        faults.hit("worker.solve", key=tag)
        channel = _WORKER_CHANNEL
        if channel is not None and int(channel.generation.value) != generation:  # type: ignore[attr-defined]
            return (_TASK_STALE, positions, None, False)
        from repro.api.engine import _attach_prepared_shm

        prepared = _attach_prepared_shm(segment, fingerprint)
        if prepared is None:
            return (_TASK_DEGRADED, positions, None, False)
        order = prepared.search_order(order_name)
        stats = SearchStats()
        # Pre-sift before materialising: a position whose min-side bound
        # cannot beat the floor would be skipped by the search anyway, so
        # don't pay to regenerate its subgraph.  Strict mode sifts against
        # the submit-time floor only (deterministic); the default mode also
        # reads the live broadcast, which is exactly the parent-side prune
        # applied one level deeper.
        sift = int(floor)
        if not strict and channel is not None:
            sift = max(sift, int(channel.best.value))  # type: ignore[attr-defined]
        kept = [
            position
            for position, bound in zip(positions, bounds)
            if bound > sift
        ]
        if not strict:
            stats.s3_pruned_by_broadcast += len(positions) - len(kept)
        subs = vertex_centred_subgraphs_at(prepared, order, kept)
        cancel_hook = _GenerationCancelled(generation) if channel is not None else None
        improvements: List[Tuple[int, Tuple[object, ...], Tuple[object, ...]]] = []
        aborted = False
        if strict:
            # Reproducible witnesses: every subgraph searches from the
            # stage's starting floor in a fresh context (no carry-over
            # within the chunk, no broadcasts), so its result depends on
            # nothing but the subgraph and the floor.  The outer clock
            # shrinks each successive subgraph's wall allowance.
            clock = SearchContext(time_budget=time_budget)
            for sub in subs:
                context = SearchContext(
                    incumbent_floor=floor,
                    time_budget=clock.remaining_time_budget(),
                    cancel_hook=cancel_hook,
                )
                try:
                    context.checkpoint()
                    _verify.search_subgraph(
                        sub,
                        context,
                        branching=branching,
                        use_core_pruning=use_core_pruning,
                        kernel=kernel,
                    )
                except SearchAborted:
                    pass
                stats.merge(context.stats)
                if context.best.side_size > floor:
                    improvements.append(
                        (
                            sub.position,
                            tuple(context.best.left),
                            tuple(context.best.right),
                        )
                    )
                if context.aborted:
                    aborted = True
                    break
        else:
            context = SearchContext(
                incumbent_floor=floor,
                shared_best_side=channel.best if channel is not None else None,
                time_budget=time_budget,
                cancel_hook=cancel_hook,
            )
            _verify.verify_serial(
                subs,
                context,
                branching=branching,
                use_core_pruning=use_core_pruning,
                kernel=kernel,
            )
            stats.merge(context.stats)
            aborted = context.aborted
            if context.best.side_size > floor:
                improvements.append(
                    (
                        int(positions[0]) if positions else 0,
                        tuple(context.best.left),
                        tuple(context.best.right),
                    )
                )
        return (_TASK_OK, improvements, asdict(stats), aborted)
    except Exception as exc:
        return (_TASK_ERROR, positions, repr(exc), False)


# ----------------------------------------------------------------------
# parent-side pool lifecycle
# ----------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS: int = 0
_POOL_FAULT_ENV: Optional[str] = None
_CHANNEL: Optional[IncumbentChannel] = None


def _ensure_pool(
    workers: int,
) -> Optional[Tuple[ProcessPoolExecutor, IncumbentChannel]]:
    """The persistent S3 pool (built on demand), or ``None`` if refused.

    Rebuilt when the requested worker count changes or the armed
    :envvar:`REPRO_FAULTS` spec differs from the one the current workers
    inherited.  The channel outlives pools: its generation counter is
    what keeps tasks from a terminated stage inert.
    """
    global _POOL, _POOL_WORKERS, _POOL_FAULT_ENV, _CHANNEL
    fault_env = os.environ.get(faults.ENV_VAR)
    if _POOL is not None and (
        _POOL_WORKERS != workers or _POOL_FAULT_ENV != fault_env
    ):
        shutdown()
    if _POOL is None:
        if _CHANNEL is None:
            _CHANNEL = IncumbentChannel()
        try:
            _POOL = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker_channel,
                initargs=(_CHANNEL.best, _CHANNEL.cancel, _CHANNEL.generation),
            )
        except (OSError, PermissionError):
            _POOL = None
            return None
        _POOL_WORKERS = workers
        _POOL_FAULT_ENV = fault_env
    return _POOL, _CHANNEL


def _discard_pool() -> None:
    """Hard-stop the current pool (workers terminated, futures dropped)."""
    global _POOL, _POOL_WORKERS
    pool = _POOL
    _POOL = None
    _POOL_WORKERS = 0
    if pool is not None:
        from repro.api.engine import MBBEngine

        MBBEngine._terminate_pool(pool)


def shutdown() -> None:
    """Terminate the S3 pool (if any); the next dispatch rebuilds it.

    Called by :meth:`repro.api.engine.MBBEngine.shutdown` and at
    interpreter exit, and by tests that arm pool-wide fault plans.
    """
    _discard_pool()


atexit.register(shutdown)


# ----------------------------------------------------------------------
# parent-side dispatch
# ----------------------------------------------------------------------


@dataclass
class _Chunk:
    """One pool task: a contiguous hardest-first slice of the schedule."""

    index: int
    subs: List[VertexCentredSubgraph]

    @property
    def bound(self) -> int:
        """Best possible side size any member can produce (Lemma 6 test)."""
        return self.subs[0].min_side if self.subs else 0

    @property
    def positions(self) -> Tuple[int, ...]:
        return tuple(sub.position for sub in self.subs)

    @property
    def bounds(self) -> Tuple[int, ...]:
        """Per-position min-side bounds, shipped so workers can sift
        dead positions before paying to rematerialise their subgraphs."""
        return tuple(sub.min_side for sub in self.subs)


def _chunk_schedule(
    schedule: Sequence[VertexCentredSubgraph], workers: int
) -> List[_Chunk]:
    """Slice the hardest-first schedule into pool-task chunks."""
    size = max(1, len(schedule) // (workers * _CHUNKS_PER_WORKER))
    return [
        _Chunk(index=index, subs=list(schedule[start : start + size]))
        for index, start in enumerate(range(0, len(schedule), size))
    ]


def parallel_verify(
    ordered: Sequence[VertexCentredSubgraph],
    context: SearchContext,
    *,
    branching: str,
    use_core_pruning: bool,
    kernel: str,
    prepared: Optional[PreparedGraph],
    order_name: Optional[str],
    options: "_verify.ParallelVerifyOptions",
) -> bool:
    """The parallel S3 dispatcher (see module docstring).

    Returns ``True`` when the stage was handled end to end — including
    any internal degradation to the serial loop — and ``False`` to
    decline, in which case :func:`repro.mbb.verify.verify_mbb` runs its
    serial loop as if no verifier were registered.  Declines when the
    family is below the threshold, no snapshot/order travelled with the
    call, a node budget is set (slicing a deterministic node budget
    across racing processes is undefined), this process is itself a pool
    worker (daemonic workers may not spawn children), or the platform
    refuses a pool.
    """
    if prepared is None or order_name is None:
        return False
    if len(ordered) < max(options.threshold, 1):
        return False
    if context.node_budget is not None:
        return False
    if multiprocessing.parent_process() is not None:
        return False
    workers = options.workers if options.workers is not None else os.cpu_count() or 1
    workers = min(workers, len(ordered))
    if workers < 2:
        return False
    try:
        from repro.api.engine import _PREPARED_EXPORTS

        handle = _PREPARED_EXPORTS.export(prepared)
    except Exception:
        # Shared-memory pressure: the stage is an optimisation, run serial.
        return False
    pool_state = _ensure_pool(workers)
    if pool_state is None:
        return False
    pool, channel = pool_state

    stats = context.stats
    stats.s3_parallel_workers = max(stats.s3_parallel_workers, workers)
    strict = bool(options.strict)
    generation = channel.begin(context.best_side)
    queue: Deque[_Chunk] = deque(_chunk_schedule(ordered, workers))
    window = workers * 2
    pending: Dict[object, _Chunk] = {}
    degraded: List[_Chunk] = []
    pruned_chunks: List[_Chunk] = []
    strict_improvements: List[Tuple[int, Tuple[object, ...], Tuple[object, ...]]] = []
    tag_prefix = f"s3:{handle.fingerprint[:12]}"
    rebuilds = 0
    aborted = False

    previous_channel = context.shared_best_side
    previous_floor = context.incumbent_floor
    if not strict:
        # The parent context joins the broadcast loop: its checkpoint
        # polls worker-published bounds (pruning queued chunks earlier)
        # and witnesses applied from task results publish back.
        context.shared_best_side = channel.best

    def submit_ready() -> None:
        while queue and len(pending) < window:
            chunk = queue[0]
            if chunk.bound <= context.best_side:
                # Hardest-first: every later chunk is bounded by this
                # one, so the whole remainder is pruned by the incumbent.
                # The chunks are kept: should the pruning bound turn out
                # to be an unconfirmed broadcast (its witness lost to a
                # worker failure), the recheck pass below re-runs them.
                while queue:
                    pruned = queue.popleft()
                    stats.s3_pruned_by_broadcast += len(pruned.subs)
                    pruned_chunks.append(pruned)
                return
            queue.popleft()
            task = (
                generation,
                handle.name,
                handle.fingerprint,
                order_name,
                chunk.positions,
                chunk.bounds,
                context.best_side,
                branching,
                use_core_pruning,
                kernel,
                strict,
                context.remaining_wall_seconds(),
                f"{tag_prefix}:{chunk.index}",
            )
            pending[pool.submit(_run_s3_task, task)] = chunk
            stats.s3_tasks += 1

    def consume(future: object, chunk: _Chunk) -> Optional[_Chunk]:
        """Apply one finished task; returns the chunk if the pool died."""
        nonlocal aborted
        try:
            outcome = future.result()  # type: ignore[attr-defined]
        except BrokenProcessPool:
            return chunk
        except Exception:
            degraded.append(chunk)
            return None
        status = outcome[0]
        if status != _TASK_OK:
            # Stale generation, failed attach or a fault-boundary error:
            # the parent re-runs these subgraphs through the serial loop.
            degraded.append(chunk)
            return None
        _status, improvements, stats_dict, worker_aborted = outcome
        if stats_dict:
            stats.merge(SearchStats(**stats_dict))
        if strict:
            strict_improvements.extend(improvements)
        else:
            for _position, left, right in improvements:
                # adopt_witness, not offer: the parent's floor very
                # likely echoes this same witness's broadcast, and offer
                # would reject the vertices behind its own bound.
                context.adopt_witness(left, right)
        if worker_aborted:
            # The worker ran out of wall clock; the parent shares the
            # same deadline, so finish the stage as aborted rather than
            # racing the clock with more submissions.
            aborted = True
        return None

    try:
        submit_ready()
        while pending:
            done, _not_done = wait(
                set(pending), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            try:
                context.checkpoint()
            except SearchAborted:
                aborted = True
            crashed: List[_Chunk] = []
            for future in done:
                chunk = pending.pop(future)
                dead = consume(future, chunk)
                if dead is not None:
                    crashed.append(dead)
            if crashed:
                # A worker died (BrokenProcessPool): every other pending
                # future is poisoned with the same exception — drain any
                # real results that beat the crash, then rebuild or
                # degrade the rest.
                for future in list(pending):
                    chunk = pending.pop(future)
                    dead = consume(future, chunk)
                    if dead is not None:
                        crashed.append(dead)
                _discard_pool()
                rebuilds += 1
                stats.pool_rebuilds += 1
                if aborted or rebuilds > options.max_pool_rebuilds:
                    degraded.extend(crashed)
                    degraded.extend(queue)
                    queue.clear()
                    break
                pool_state = _ensure_pool(workers)
                if pool_state is None:
                    degraded.extend(crashed)
                    degraded.extend(queue)
                    queue.clear()
                    break
                pool, channel_again = pool_state
                assert channel_again is channel
                queue.extendleft(reversed(sorted(crashed, key=_chunk_order)))
            if aborted:
                break
            submit_ready()
    finally:
        context.shared_best_side = previous_channel

    if aborted:
        # Abort path: stop the world.  The cancel flag reaches running
        # workers through their checkpoint hooks, and discarding the
        # pool reclaims any that never poll again (the watchdog
        # posture); queued chunks are simply dropped — the solve is
        # best-effort from here.
        channel.cancel_generation()
        for future in list(pending):
            chunk = pending.pop(future)
            if future.done():  # type: ignore[attr-defined]
                consume(future, chunk)
            else:
                future.cancel()  # type: ignore[attr-defined]
        _discard_pool()
        context.aborted = True

    # Strict mode: results are applied in subgraph order, making the
    # witness independent of scheduling and worker count.  Applied even
    # on an aborted stage — an incumbent a worker already delivered is
    # never lost.
    for _position, left, right in sorted(strict_improvements, key=_improvement_order):
        context.adopt_witness(left, right)

    # The floor is a pruning device, not a result: if a worker published
    # a bound and then died before delivering its witness, the floor now
    # names a size the parent cannot back with vertices.  Clamp to what
    # the incumbent actually shows *before* any serial re-runs below, so
    # they never prune against an unconfirmed bound.
    if context.incumbent_floor > context.best.side_size:
        context.incumbent_floor = max(previous_floor, context.best.side_size)

    if degraded and not aborted:
        # Degrade-to-serial: re-run every chunk the pool failed to
        # finish through the exact serial loop, in schedule order, with
        # whatever incumbent the parallel part established.  This is the
        # "no lost requests" half of the PR 9 posture applied to S3.
        remainder = [
            sub
            for chunk in sorted(degraded, key=_chunk_order)
            for sub in chunk.subs
        ]
        _verify.verify_serial(
            remainder,
            context,
            branching=branching,
            use_core_pruning=use_core_pruning,
            kernel=kernel,
        )

    if not aborted and not context.aborted:
        # Recheck net: a chunk pruned against a broadcast bound whose
        # witness was later lost could still hold the true optimum.  The
        # floor is clamped to confirmed sizes by now, so on the normal
        # path (every published bound's witness delivered or re-found by
        # the degrade pass above) this filter is empty and free.
        recheck = [
            chunk
            for chunk in sorted(pruned_chunks, key=_chunk_order)
            if chunk.bound > context.best_side
        ]
        if recheck:
            for chunk in recheck:
                stats.s3_pruned_by_broadcast -= len(chunk.subs)
            _verify.verify_serial(
                [sub for chunk in recheck for sub in chunk.subs],
                context,
                branching=branching,
                use_core_pruning=use_core_pruning,
                kernel=kernel,
            )
    return True


def _chunk_order(chunk: _Chunk) -> int:
    """Sort key restoring schedule order over a set of chunks."""
    return chunk.index


def _improvement_order(
    improvement: Tuple[int, Tuple[object, ...], Tuple[object, ...]]
) -> int:
    """Sort key applying strict-mode results in subgraph order."""
    return improvement[0]


# Dependency inversion (RPL007): the kernel-layer verification stage
# dispatches to this module through a registration hook, mirroring
# repro.mbb.solver / repro.api.engine.
_verify.register_parallel_verifier(parallel_verify)
