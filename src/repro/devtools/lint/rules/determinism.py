"""RPL002 — determinism discipline in library code.

History: PR 4's bicore peel and its exact oracle diverged on tie-breaks
because an ordering was derived from hash-ordered iteration; solver
results must be a pure function of the input graph (plus an explicit
seed), never of hash randomisation or the wall clock.  The upcoming
parallel-S3 work raises the stakes: non-deterministic feeding orders
across pool workers are close to undebuggable.

Three sub-checks, each scoped to where the hazard is real:

* **wall clock** — calls into :mod:`time` (``time``, ``perf_counter``,
  ``monotonic``, ``process_time`` and their ``_ns`` variants) and
  :class:`datetime.datetime` ``now``/``utcnow``/``today`` anywhere under
  ``src/`` except the allowlist that *owns* timing:
  ``src/repro/mbb/context.py`` (the budget clock),
  ``src/repro/api/engine.py`` (deadline computation) and
  ``src/repro/bench/`` (measurement is the point there);
* **unseeded random** — calls through the module-level :mod:`random`
  API (``random.random()``, ``random.shuffle()`` …, including
  ``random.seed()`` which mutates global state) anywhere under ``src/``;
  seeded ``random.Random(seed)`` instances are the sanctioned idiom;
* **unordered accumulation** — in the kernel modules
  (``src/repro/mbb/``, ``src/repro/cores/``, ``src/repro/graph/``),
  iterating directly over a provably set-typed expression (a set
  literal/comprehension, ``set(...)``/``frozenset(...)``, set-algebra
  calls, or ``&``/``|``/``-``/``^`` over those) into an
  ordering-sensitive sink: a ``for`` body that ``append``/``extend``-s
  or yields, a list comprehension, or a direct ``list(...)`` /
  ``tuple(...)`` materialisation.  Wrapping the set in ``sorted(...)``
  (with a total-order key) is the fix and naturally passes the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.devtools.lint.base import FileContext, Rule, register_rule
from repro.devtools.lint.findings import Finding

WALL_CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

#: Module-level ``random`` functions that consume the global PRNG.
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: Files allowed to read the wall clock (they implement budget/timing).
WALL_CLOCK_ALLOWLIST_FILES = frozenset(
    {"src/repro/mbb/context.py", "src/repro/api/engine.py"}
)
WALL_CLOCK_ALLOWLIST_PREFIXES = ("src/repro/bench",)

#: Modules where iteration order feeds orders, peels and incumbents.
KERNEL_MODULE_PREFIXES = ("src/repro/mbb", "src/repro/cores", "src/repro/graph")

SET_ALGEBRA_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

_ORDER_SENSITIVE_APPENDERS = frozenset({"append", "extend", "insert", "appendleft"})


def _is_set_expression(node: ast.AST) -> bool:
    """True when ``node`` provably evaluates to a set (conservative)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_ALGEBRA_METHODS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _has_order_sensitive_sink(body: list) -> bool:
    """True when a loop body accumulates into an ordered container."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _ORDER_SENSITIVE_APPENDERS
            ):
                return True
    return False


@register_rule
class DeterminismRule(Rule):
    code = "RPL002"
    name = "determinism"
    description = (
        "no wall clocks or unseeded random in library code; no set-order-"
        "dependent accumulation in kernel modules"
    )
    rationale = (
        "PR 4's bicore peel and its exact oracle diverged on tie-breaks "
        "because an ordering was derived from hash-ordered set iteration; "
        "solver results must be a pure function of the input graph plus an "
        "explicit seed. Wall clocks are confined to the modules that own "
        "timing (mbb/context.py, api/engine.py, bench/), the global random "
        "module is banned in favour of seeded random.Random(seed) instances, "
        "and kernel modules must not accumulate set iteration order into "
        "lists, tuples or yields."
    )
    example = (
        "# bad: hash-ordered iteration feeds an ordered accumulator\n"
        "order = [v for v in candidate_set]        # RPL002\n"
        "\n"
        "# good: total order made explicit\n"
        "order = sorted(candidate_set, key=vertex_key)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_library_code():
            yield from self._check_wall_clock(ctx)
            yield from self._check_global_random(ctx)
        if ctx.is_under(*KERNEL_MODULE_PREFIXES):
            yield from self._check_unordered_iteration(ctx)

    # ------------------------------------------------------------------
    # wall clock
    # ------------------------------------------------------------------
    def _check_wall_clock(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath in WALL_CLOCK_ALLOWLIST_FILES:
            return
        if ctx.is_under(*WALL_CLOCK_ALLOWLIST_PREFIXES):
            return
        time_aliases, clock_names = _clock_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            clocked: Optional[str] = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
                and func.attr in WALL_CLOCK_FUNCTIONS
            ):
                clocked = f"{func.value.id}.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in clock_names:
                clocked = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in DATETIME_FUNCTIONS
                and _mentions_datetime(func.value)
            ):
                clocked = f"datetime.{func.attr}"
            if clocked is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {clocked}() outside the timing allowlist; "
                    "route timing through SearchContext "
                    "(checkpoint()/timed_stat()) or the bench harness",
                )

    # ------------------------------------------------------------------
    # unseeded random
    # ------------------------------------------------------------------
    def _check_global_random(self, ctx: FileContext) -> Iterator[Finding]:
        random_aliases, random_names = _random_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: Optional[str] = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in random_aliases
                and func.attr in GLOBAL_RANDOM_FUNCTIONS
            ):
                flagged = f"{func.value.id}.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in random_names:
                flagged = func.id
            if flagged is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"global-PRNG call {flagged}(); use a seeded "
                    "random.Random(seed) instance so results are reproducible",
                )

    # ------------------------------------------------------------------
    # unordered accumulation
    # ------------------------------------------------------------------
    def _check_unordered_iteration(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expression(node.iter):
                if _has_order_sensitive_sink(node.body + node.orelse):
                    yield self.finding(
                        ctx,
                        node,
                        "iteration over a set feeds an ordering-sensitive "
                        "accumulation; iterate sorted(...) with a total-order "
                        "key instead",
                    )
            elif isinstance(node, ast.ListComp) and any(
                _is_set_expression(gen.iter) for gen in node.generators
            ):
                yield self.finding(
                    ctx,
                    node,
                    "list comprehension over a set captures arbitrary "
                    "iteration order; iterate sorted(...) with a total-order "
                    "key instead",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple"}
                and len(node.args) == 1
                and not node.keywords
                and _is_set_expression(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.func.id}(...) materialises a set's arbitrary "
                    "iteration order; use sorted(...) with a total-order key "
                    "instead",
                )


def _clock_bindings(tree: ast.Module) -> tuple:
    """Names bound to the time module / its clock functions by imports."""
    module_aliases: Set[str] = set()
    function_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_FUNCTIONS:
                    function_names.add(alias.asname or alias.name)
    return module_aliases, function_names


def _random_bindings(tree: ast.Module) -> tuple:
    """Names bound to the random module / its global functions by imports."""
    module_aliases: Set[str] = set()
    function_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in GLOBAL_RANDOM_FUNCTIONS:
                    function_names.add(alias.asname or alias.name)
    return module_aliases, function_names


def _mentions_datetime(node: ast.AST) -> bool:
    """True when the attribute chain is rooted at a name ``datetime``/``date``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id in {"datetime", "date"}
