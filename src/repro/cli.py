"""Command-line interface for the library.

The CLI covers the everyday workflows of a downstream user without writing
any Python:

* ``repro-mbb solve`` — load an edge list (or generate a random graph) and
  print its maximum balanced biclique;
* ``repro-mbb generate`` — write a synthetic bipartite graph to an edge list;
* ``repro-mbb datasets`` — list the built-in KONECT stand-ins;
* ``repro-mbb bench`` — regenerate one of the paper's tables or figures.

Every command prints plain text to stdout and returns a conventional exit
code, so the CLI composes with shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.exceptions import ReproError
from repro.graph.generators import random_bipartite, random_power_law_bipartite
from repro.graph.io import read_edge_list, write_edge_list
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.solver import METHOD_AUTO, solve_mbb
from repro.workloads.datasets import DATASETS, load_dataset


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mbb",
        description="Exact maximum balanced biclique search in bipartite graphs "
        "(reproduction of Chen et al., SIGMOD 2021).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve the MBB problem on a graph")
    source = solve.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="edge-list file (KONECT-style, 'left right' per line)")
    source.add_argument("--dataset", help="name of a built-in dataset stand-in")
    solve.add_argument(
        "--method",
        default=METHOD_AUTO,
        choices=["auto", "dense", "sparse", "basic"],
        help="solver to use (default: auto)",
    )
    solve.add_argument(
        "--kernel",
        default=KERNEL_BITS,
        choices=[KERNEL_BITS, KERNEL_SETS],
        help="branch-and-bound inner loop: indexed bitsets (default) or adjacency sets",
    )
    solve.add_argument("--time-budget", type=float, default=None, help="seconds before giving up")
    solve.add_argument("--show-vertices", action="store_true", help="print the biclique's vertices")

    generate = subparsers.add_parser("generate", help="generate a synthetic bipartite graph")
    generate.add_argument("output", help="edge-list file to write")
    generate.add_argument("--left", type=int, required=True, help="number of left vertices")
    generate.add_argument("--right", type=int, required=True, help="number of right vertices")
    generate.add_argument("--density", type=float, default=None, help="uniform edge density")
    generate.add_argument(
        "--avg-degree", type=float, default=None, help="power-law average degree (sparse model)"
    )
    generate.add_argument("--seed", type=int, default=0, help="random seed")

    subparsers.add_parser("datasets", help="list the built-in KONECT stand-ins")

    bench = subparsers.add_parser("bench", help="regenerate a paper table or figure")
    bench.add_argument(
        "artefact",
        choices=["table4", "table5", "table6", "figure4", "figure5", "figure6", "kernels"],
        help="which table/figure to regenerate ('kernels' compares the bitset "
        "and set branch-and-bound kernels)",
    )
    bench.add_argument("--time-budget", type=float, default=5.0, help="per-run budget in seconds")
    return parser


def _command_solve(args: argparse.Namespace) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset)
        label = f"dataset stand-in {args.dataset!r}"
    else:
        graph = read_edge_list(args.input)
        label = args.input
    print(f"loaded {label}: |L|={graph.num_left} |R|={graph.num_right} |E|={graph.num_edges}")
    result = solve_mbb(
        graph, method=args.method, kernel=args.kernel, time_budget=args.time_budget
    )
    status = "optimal" if result.optimal else "best effort (budget exhausted)"
    print(f"maximum balanced biclique side size: {result.side_size} ({status})")
    if result.terminated_at:
        print(f"terminated at step {result.terminated_at}")
    print(f"search nodes: {result.stats.nodes}, elapsed: {result.elapsed_seconds:.3f}s")
    if args.show_vertices:
        print(f"left : {sorted(result.biclique.left, key=repr)}")
        print(f"right: {sorted(result.biclique.right, key=repr)}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if (args.density is None) == (args.avg_degree is None):
        print("error: provide exactly one of --density or --avg-degree", file=sys.stderr)
        return 2
    if args.density is not None:
        graph = random_bipartite(args.left, args.right, args.density, seed=args.seed)
    else:
        graph = random_power_law_bipartite(
            args.left, args.right, args.avg_degree, seed=args.seed
        )
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.output}: |L|={graph.num_left} |R|={graph.num_right} "
        f"|E|={graph.num_edges} (density {graph.density:.5f})"
    )
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    header = f"{'name':<28}{'|L|':>7}{'|R|':>7}{'planted':>9}  {'paper |L|':>10}{'paper |R|':>10}{'paper opt':>10}"
    print(header)
    print("-" * len(header))
    for name, spec in DATASETS.items():
        tough = " *" if spec.tough else ""
        print(
            f"{name + tough:<28}{spec.n_left:>7}{spec.n_right:>7}{spec.planted_size:>9}  "
            f"{spec.paper_left:>10}{spec.paper_right:>10}{spec.paper_optimum:>10}"
        )
    print("\n(* = tough dataset used by Table 6 and Figures 4-6)")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.bench import figure4, figure5, figure6, kernels, table4, table5, table6

    budget = args.time_budget
    if args.artefact == "kernels":
        print(kernels.format_kernel_comparison(kernels.run_kernel_comparison(time_budget=budget)))
    elif args.artefact == "table4":
        print(table4.format_table4(table4.run_table4(time_budget=budget, instances=1)))
    elif args.artefact == "table5":
        print(table5.format_table5(table5.run_table5(time_budget=budget)))
    elif args.artefact == "table6":
        print(table6.format_table6(table6.run_table6(time_budget=budget)))
    elif args.artefact == "figure4":
        print(figure4.format_figure4(figure4.run_figure4(time_budget=budget)))
    elif args.artefact == "figure5":
        print(figure5.format_figure5(figure5.run_figure5(time_budget=budget)))
    else:
        print(figure6.format_figure6(figure6.run_figure6()))
    return 0


_COMMANDS = {
    "solve": _command_solve,
    "generate": _command_generate,
    "datasets": _command_datasets,
    "bench": _command_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-mbb`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
