"""Tests for the dense-graph solver (Algorithm 3, denseMBB)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    grid_union_of_bicliques,
    planted_balanced_biclique,
    random_bipartite,
    random_near_complete_bipartite,
)
from repro.mbb.dense import BRANCH_NAIVE, BRANCH_TRIVIALITY_LAST, dense_mbb, dense_mbb_on_sets
from repro.mbb.context import SearchContext
from repro.mbb.result import Biclique
from repro.baselines.brute_force import brute_force_side_size


class TestDenseMBBStructuredGraphs:
    def test_empty_graph(self):
        assert dense_mbb(BipartiteGraph()).side_size == 0

    def test_complete_bipartite(self):
        assert dense_mbb(complete_bipartite(5, 8)).side_size == 5

    @pytest.mark.parametrize("n", range(0, 9))
    def test_crown_graph_closed_form(self, n):
        assert dense_mbb(crown_graph(n)).side_size == n // 2

    def test_union_of_blocks(self):
        graph = grid_union_of_bicliques([4, 2, 1])
        result = dense_mbb(graph)
        assert result.side_size == 4
        assert result.biclique.is_valid_in(graph)

    def test_planted_biclique_is_found(self):
        graph = planted_balanced_biclique(20, 20, 6, background_density=0.1, seed=7)
        assert dense_mbb(graph).side_size >= 6


class TestDenseMBBAgainstOracle:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_brute_force_random_graphs(self, seed, random_graph_factory):
        graph = random_graph_factory(seed, max_side=9)
        result = dense_mbb(graph)
        assert result.side_size == brute_force_side_size(graph)
        assert result.biclique.is_valid_in(graph)
        assert result.biclique.is_balanced

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_dense_graphs(self, seed):
        graph = random_bipartite(9, 9, 0.85, seed=seed)
        assert dense_mbb(graph).side_size == brute_force_side_size(graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_naive_branching_agrees_with_default(self, seed):
        graph = random_bipartite(8, 8, 0.6, seed=seed)
        default = dense_mbb(graph, branching=BRANCH_TRIVIALITY_LAST)
        naive = dense_mbb(graph, branching=BRANCH_NAIVE)
        assert default.side_size == naive.side_size


class TestDenseMBBOptions:
    def test_unknown_branching_mode_raises(self):
        with pytest.raises(InvalidParameterError):
            dense_mbb(complete_bipartite(2, 2), branching="bogus")

    def test_initial_best_seeds_incumbent(self):
        graph = complete_bipartite(3, 3)
        fake = Biclique.of([90, 91, 92, 93], [80, 81, 82, 83])
        result = dense_mbb(graph, initial_best=fake)
        assert result.side_size == 4  # the (fictional) seed survives

    def test_node_budget_best_effort(self):
        graph = random_bipartite(12, 12, 0.6, seed=5)
        result = dense_mbb(graph, node_budget=3)
        assert not result.optimal
        assert result.biclique.is_valid_in(graph)

    def test_polynomial_case_counter_increases_on_dense_input(self):
        graph = random_near_complete_bipartite(10, 10, max_missing=2, seed=1)
        result = dense_mbb(graph)
        assert result.stats.polynomial_cases >= 1

    def test_on_sets_entry_point_forces_vertex(self):
        graph = complete_bipartite(4, 4)
        context = SearchContext()
        dense_mbb_on_sets(
            graph,
            context,
            a={0},
            b=set(),
            ca={1, 2, 3},
            cb=set(graph.neighbors_left(0)),
        )
        assert context.best_side == 4
        assert 0 in context.best.left

    def test_on_sets_rejects_bad_branching(self):
        graph = complete_bipartite(2, 2)
        with pytest.raises(InvalidParameterError):
            dense_mbb_on_sets(
                graph, SearchContext(), set(), set(), graph.left, graph.right,
                branching="bogus",
            )
