"""Table 4 — denseMBB vs ExtBBClq on dense synthetic bipartite graphs.

The paper sweeps side sizes 128..2048 and densities 0.70..0.95 with a
4-hour timeout.  The reproduction keeps the density sweep and the doubling
side sizes but at a scale a pure-Python solver can run (see
``repro.workloads.synthetic``), and replaces the timeout with a
configurable per-run time budget; runs that exceed it are reported with a
``-`` exactly like the paper's table.

Expected shape: ``denseMBB`` finishes every cell and its running time is
almost flat in density, while ``extBBCl`` degrades quickly as density and
size grow and starts hitting the budget.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table, run_backend
from repro.mbb.heuristics import degree_heuristic
from repro.workloads.synthetic import (
    DEFAULT_DENSE_SIDES,
    TABLE4_DENSITIES,
    DenseCase,
    dense_case_graph,
)

#: Columns of the produced table, mirroring the paper's layout (one row per
#: density, one column pair per size).
ALGORITHMS = ("extBBCl", "denseMBB")

#: Column label -> registry backend name.
BACKENDS = {"extBBCl": "extbbclq", "denseMBB": "dense"}


def run_cell(
    case: DenseCase,
    algorithm: str,
    *,
    time_budget: Optional[float] = 10.0,
    instances: int = 2,
) -> Dict[str, object]:
    """Run one (size, density, algorithm) cell and average over instances."""
    if algorithm not in BACKENDS:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    times: List[float] = []
    sides: List[int] = []
    timed_out = False
    for instance in range(instances):
        graph = dense_case_graph(case, instance)
        options = {}
        if algorithm == "denseMBB":
            options["initial_best"] = degree_heuristic(graph)
        result, elapsed = run_backend(
            graph, BACKENDS[algorithm], time_budget=time_budget, **options
        )
        times.append(elapsed)
        sides.append(result.side_size)
        if not result.optimal:
            timed_out = True
    return {
        "size": f"{case.side}x{case.side}",
        "density": case.density,
        "algorithm": algorithm,
        "seconds": mean(times),
        "mbb_side": max(sides),
        "timed_out": timed_out,
    }


def run_table4(
    sides: Sequence[int] = DEFAULT_DENSE_SIDES,
    densities: Sequence[float] = TABLE4_DENSITIES,
    *,
    time_budget: Optional[float] = 10.0,
    instances: int = 2,
) -> List[Dict[str, object]]:
    """Produce all rows of the scaled Table 4."""
    rows: List[Dict[str, object]] = []
    for density in densities:
        for side in sides:
            case = DenseCase(side=side, density=density)
            for algorithm in ALGORITHMS:
                rows.append(
                    run_cell(
                        case,
                        algorithm,
                        time_budget=time_budget,
                        instances=instances,
                    )
                )
    return rows


def format_table4(rows: Sequence[Dict[str, object]]) -> str:
    """Pivot the raw rows into the paper's layout (densities x sizes)."""
    sizes = sorted({row["size"] for row in rows}, key=lambda s: int(s.split("x")[0]))
    densities = sorted({row["density"] for row in rows})
    pivoted: List[Dict[str, object]] = []
    for density in densities:
        line: Dict[str, object] = {"density": f"{int(density * 100)}%"}
        for size in sizes:
            for algorithm in ALGORITHMS:
                matches = [
                    row
                    for row in rows
                    if row["density"] == density
                    and row["size"] == size
                    and row["algorithm"] == algorithm
                ]
                if not matches:
                    continue
                row = matches[0]
                cell = "-" if row["timed_out"] else f"{row['seconds']:.3f}"
                line[f"{size} {algorithm}"] = cell
        pivoted.append(line)
    return format_table(pivoted)
