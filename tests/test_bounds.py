"""Tests for bounding conditions and candidate-set completions."""

from __future__ import annotations

from repro.graph.generators import complete_bipartite
from repro.mbb.bounds import (
    common_neighbour_upper_bound,
    degree_upper_bound,
    is_bounded,
    offer_completions,
    trivial_upper_bound,
    upper_bound_side,
)
from repro.mbb.context import SearchContext
from repro.mbb.result import Biclique


class TestUpperBoundSide:
    def test_basic(self):
        assert upper_bound_side(1, 2, 3, 4) == min(1 + 3, 2 + 4)
        assert upper_bound_side(0, 0, 0, 0) == 0

    def test_trivial_upper_bound(self):
        assert trivial_upper_bound(3, 7) == 3


class TestIsBounded:
    def test_prunes_when_cannot_beat_incumbent(self):
        context = SearchContext()
        context.offer([1, 2], ["a", "b"])  # incumbent side 2
        assert is_bounded(context, 0, 0, 2, 2)  # upper bound 2 <= 2 -> prune
        assert not is_bounded(context, 0, 0, 3, 3)  # could reach 3

    def test_empty_incumbent_never_prunes_nonempty_node(self):
        context = SearchContext()
        assert not is_bounded(context, 0, 0, 1, 1)
        assert is_bounded(context, 0, 0, 0, 5)  # left side can never grow


class TestOfferCompletions:
    def test_offers_one_sided_extensions(self):
        graph = complete_bipartite(3, 3)
        context = SearchContext()
        # A = {0,1}, B = {0}, CB = {1,2}: completing B with CB gives side 2.
        offer_completions(context, {0, 1}, {0}, set(), {1, 2})
        assert context.best_side == 2
        assert context.best.is_valid_in(graph)

    def test_does_not_offer_when_not_improving(self):
        context = SearchContext()
        context.offer([1, 2, 3], [4, 5, 6])
        before = context.best
        offer_completions(context, {1}, {4}, {2}, {5})
        assert context.best is before


class TestDegreeUpperBound:
    def test_h_index_style_bound(self):
        assert degree_upper_bound([]) == 0
        assert degree_upper_bound([0, 0, 0]) == 0
        assert degree_upper_bound([5, 5, 5, 5, 5]) == 5
        assert degree_upper_bound([3, 3, 3, 1]) == 3
        assert degree_upper_bound([1, 2, 3, 4, 5]) == 3

    def test_common_neighbour_upper_bound_alias(self):
        assert common_neighbour_upper_bound([2, 2, 2]) == 2


class TestSearchContext:
    def test_offer_balances_and_tracks_best(self):
        context = SearchContext()
        improved = context.offer([1, 2, 3], ["a", "b"])
        assert improved
        assert context.best_side == 2
        assert context.best.is_balanced
        assert not context.offer([1], ["a"])

    def test_offer_biclique(self):
        context = SearchContext()
        assert context.offer_biclique(Biclique.of([1, 2], [3, 4]))
        assert not context.offer_biclique(Biclique.of([9], [9]))
        assert context.best_total == 4

    def test_node_budget_aborts(self):
        from repro.mbb.context import SearchAborted

        context = SearchContext(node_budget=2)
        context.enter_node(0)
        context.enter_node(1)
        try:
            context.enter_node(2)
        except SearchAborted:
            aborted = True
        else:
            aborted = False
        assert aborted and context.aborted
