"""Command-line interface for the library.

The CLI covers the everyday workflows of a downstream user without writing
any Python:

* ``repro-mbb solve`` — load an edge list (or a built-in dataset stand-in)
  and print its maximum balanced biclique, as text or as a JSON
  :class:`~repro.api.SolveReport`;
* ``repro-mbb batch`` — run a JSON file of solve requests through the
  engine's fault-tolerant process-pool executor and emit the reports as
  JSON; failed requests are summarised per cell on stderr and make the
  command exit nonzero, and ``--max-retries``/``--no-retry``/
  ``--in-process-fallback`` tune the engine's worker-crash
  :class:`~repro.api.RetryPolicy`;
* ``repro-mbb sweep`` — expand "these dataset stand-ins x these backends"
  into a batch request file, so a fleet-style sweep is
  ``repro-mbb sweep ... | repro-mbb batch -``;
* ``repro-mbb backends`` — list the registered solver backends and their
  capabilities;
* ``repro-mbb generate`` — write a synthetic bipartite graph to an edge list;
* ``repro-mbb datasets`` — list the built-in KONECT stand-ins;
* ``repro-mbb bench`` — regenerate one of the paper's tables or figures;
* ``repro-mbb lint`` — run *reprolint*, the repository's AST-based
  invariant analyzer (budget checkpoints, determinism, kernel parity,
  pool safety), against the source tree — what the CI ``invariants``
  job executes.

Solver choices are derived from the :mod:`repro.api` backend registry, so
a backend registered at runtime (or added in a later version) shows up in
``--backend`` without touching this module.  Every command prints plain
text (or JSON where requested) to stdout and returns a conventional exit
code, so the CLI composes with shell pipelines.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import textwrap
from typing import Optional, Sequence

from repro import __version__
from repro.api import (
    STATUS_OK,
    GraphSpec,
    MBBEngine,
    RetryPolicy,
    SolveRequest,
    available_backends,
    backend_infos,
    sweep_requests,
)
from repro.exceptions import ReproError
from repro.graph.generators import random_bipartite, random_power_law_bipartite
from repro.graph.io import write_edge_list
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.workloads.datasets import DATASETS, TOUGH_DATASETS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mbb",
        description="Exact maximum balanced biclique search in bipartite graphs "
        "(reproduction of Chen et al., SIGMOD 2021).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve the MBB problem on a graph")
    source = solve.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="edge-list file (KONECT-style, 'left right' per line)")
    source.add_argument("--dataset", help="name of a built-in dataset stand-in")
    solve.add_argument(
        "--backend",
        "--method",
        dest="backend",
        default="auto",
        choices=available_backends(),
        help="registered solver backend (default: auto; see 'repro-mbb backends')",
    )
    solve.add_argument(
        "--kernel",
        default=KERNEL_BITS,
        choices=[KERNEL_BITS, KERNEL_SETS],
        help="branch-and-bound inner loop: indexed bitsets (default) or adjacency sets",
    )
    solve.add_argument(
        "--node-budget", type=int, default=None, help="search nodes before giving up"
    )
    solve.add_argument("--time-budget", type=float, default=None, help="seconds before giving up")
    solve.add_argument(
        "--seed", type=int, default=0, help="seed for randomised backends (default: 0)"
    )
    solve.add_argument(
        "--parallel-s3",
        action="store_true",
        help="fan the sparse verification stage over a process pool "
        "(sparse/auto backends; same result, wall time scales with cores)",
    )
    solve.add_argument(
        "--json",
        action="store_true",
        help="emit the SolveReport as JSON instead of human-readable text",
    )
    solve.add_argument("--show-vertices", action="store_true", help="print the biclique's vertices")

    batch = subparsers.add_parser(
        "batch", help="run a JSON file of solve requests through the engine"
    )
    batch.add_argument(
        "requests",
        help="JSON file holding an array of solve requests ('-' reads stdin)",
    )
    batch.add_argument(
        "--workers", type=int, default=None, help="process-pool size (default: CPU count)"
    )
    batch.add_argument(
        "--serial",
        action="store_true",
        help="run the batch serially in-process instead of a process pool",
    )
    batch.add_argument(
        "--output", default=None, help="write the JSON reports to a file instead of stdout"
    )
    retry = batch.add_mutually_exclusive_group()
    retry.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-submit a request at most N times after a worker crash "
        "(default: engine retry policy, 2 retries)",
    )
    retry.add_argument(
        "--no-retry",
        action="store_true",
        help="fail a request on the first worker crash instead of retrying",
    )
    batch.add_argument(
        "--in-process-fallback",
        action="store_true",
        help="re-run a request that exhausted its crash retries in-process "
        "(recovers reproducible crashers, but a genuine segfault/OOM then "
        "takes the whole batch down)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="expand datasets x backends into a batch request file",
    )
    sweep.add_argument(
        "--datasets",
        default="all",
        help="'all', 'tough', or a comma-separated list of stand-in names "
        "(default: all)",
    )
    sweep.add_argument(
        "--backends",
        default="sparse",
        help="comma-separated registered backend names (default: sparse)",
    )
    sweep.add_argument(
        "--kernel",
        default=KERNEL_BITS,
        choices=[KERNEL_BITS, KERNEL_SETS],
        help="kernel recorded in every generated request",
    )
    sweep.add_argument(
        "--node-budget", type=int, default=None, help="per-request node budget"
    )
    sweep.add_argument(
        "--time-budget", type=float, default=None, help="per-request seconds budget"
    )
    sweep.add_argument(
        "--seed", type=int, default=0, help="seed recorded in every request"
    )
    sweep.add_argument(
        "--output",
        default=None,
        help="write the request file here instead of stdout (feed either to "
        "'repro-mbb batch')",
    )

    backends = subparsers.add_parser(
        "backends", help="list the registered solver backends"
    )
    backends.add_argument(
        "--json", action="store_true", help="emit the backend list as JSON"
    )

    generate = subparsers.add_parser("generate", help="generate a synthetic bipartite graph")
    generate.add_argument("output", help="edge-list file to write")
    generate.add_argument("--left", type=int, required=True, help="number of left vertices")
    generate.add_argument("--right", type=int, required=True, help="number of right vertices")
    generate.add_argument("--density", type=float, default=None, help="uniform edge density")
    generate.add_argument(
        "--avg-degree", type=float, default=None, help="power-law average degree (sparse model)"
    )
    generate.add_argument("--seed", type=int, default=0, help="random seed")

    subparsers.add_parser("datasets", help="list the built-in KONECT stand-ins")

    lint = subparsers.add_parser(
        "lint",
        help="run the reprolint invariant analyzer over the source tree",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: src tests benchmarks "
        "examples, resolved under --root)",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="project root used to resolve paths and scope rules (default: .)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated subset of rule codes to run (default: all)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of accepted findings (default: "
        "reprolint-baseline.json under --root when present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding as new",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: (re)write the baseline file and "
        "exit 0",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of human-readable text",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    lint.add_argument(
        "--explain",
        default=None,
        metavar="CODES",
        help="print rationale, example and suppression guidance for the "
        "given comma-separated rule codes (or 'all') and exit",
    )
    lint.add_argument(
        "--graph-dot",
        default=None,
        metavar="PATH",
        help="emit the project-internal import graph in Graphviz DOT form "
        "to PATH ('-' for stdout) and exit",
    )

    bench = subparsers.add_parser("bench", help="regenerate a paper table or figure")
    bench.add_argument(
        "artefact",
        choices=["table4", "table5", "table6", "figure4", "figure5", "figure6", "kernels"],
        help="which table/figure to regenerate ('kernels' compares the bitset "
        "and set branch-and-bound kernels)",
    )
    bench.add_argument("--time-budget", type=float, default=5.0, help="per-run budget in seconds")
    bench.add_argument(
        "--write-json",
        default=None,
        metavar="PATH",
        help="also archive the raw rows as JSON (kernels artefact only, "
        "e.g. BENCH_kernels.json)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="kernels artefact only: run a reduced sweep (two dense cases, "
        "one dataset per bridge/peel/subgraph/engine-cache comparison) "
        "suitable for CI smoke checks",
    )
    return parser


def _command_solve(args: argparse.Namespace) -> int:
    if args.dataset:
        spec = GraphSpec.dataset(args.dataset)
        label = f"dataset stand-in {args.dataset!r}"
    else:
        spec = GraphSpec.from_path(args.input)
        label = args.input
    request = SolveRequest(
        graph=spec,
        backend=args.backend,
        kernel=args.kernel,
        node_budget=args.node_budget,
        time_budget=args.time_budget,
        seed=args.seed,
        parallel_s3=True if args.parallel_s3 else None,
    )
    engine = MBBEngine()
    if args.json:
        print(engine.solve(request).to_json())
        return 0
    # Materialise once: print the load confirmation before the (possibly
    # long) solve starts, then hand the same graph to the engine.
    graph = spec.materialise()
    print(f"loaded {label}: |L|={graph.num_left} |R|={graph.num_right} |E|={graph.num_edges}")
    report = engine.solve(request, graph=graph)
    print(f"backend: {report.backend} (kernel: {report.kernel})")
    status = "optimal" if report.optimal else "best effort (budget exhausted)"
    print(f"maximum balanced biclique side size: {report.side_size} ({status})")
    if report.terminated_at:
        print(f"terminated at step {report.terminated_at}")
    print(
        f"search nodes: {report.stats.get('nodes', 0)}, "
        f"elapsed: {report.elapsed_seconds:.3f}s"
    )
    if args.show_vertices:
        print(f"left : {list(report.left)}")
        print(f"right: {list(report.right)}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    try:
        if args.requests == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.requests, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
    except OSError as error:
        print(f"error: cannot read requests file: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: requests file is not valid JSON: {error}", file=sys.stderr)
        return 2
    if isinstance(payload, dict) and "requests" in payload:
        payload = payload["requests"]
    if not isinstance(payload, list):
        print("error: requests file must hold a JSON array of solve requests", file=sys.stderr)
        return 2
    requests = [SolveRequest.from_dict(entry) for entry in payload]
    if args.no_retry:
        policy: Optional[RetryPolicy] = RetryPolicy.none()
    elif args.max_retries is not None:
        if args.max_retries < 0:
            print("error: --max-retries must be >= 0", file=sys.stderr)
            return 2
        policy = RetryPolicy(max_attempts=args.max_retries + 1)
    else:
        policy = None
    if args.in_process_fallback:
        policy = dataclasses.replace(
            policy if policy is not None else RetryPolicy(),
            in_process_fallback=True,
        )
    engine = MBBEngine(max_workers=args.workers)
    reports = engine.solve_many(
        requests, parallel=not args.serial, retry_policy=policy
    )
    document = json.dumps([report.to_dict() for report in reports], indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote {len(reports)} reports to {args.output}")
    else:
        print(document)
    # Per-request failure summary on stderr: stdout stays pure JSON for
    # pipelines, but a failed cell is still visible (and CI-fatal) even
    # when nobody inspects the report document.
    failed = [
        (index, report)
        for index, report in enumerate(reports)
        if report.status != STATUS_OK
    ]
    if failed:
        counts = {}
        for report in reports:
            counts[report.status] = counts.get(report.status, 0) + 1
        summary = ", ".join(
            f"{counts[status]} {status}" for status in sorted(counts)
        )
        print(f"batch finished with failures: {summary}", file=sys.stderr)
        for index, report in failed:
            tag = report.request.tag or f"#{index}"
            error = report.error
            detail = (
                f"{error.kind}: {error.message} (attempts={error.attempts})"
                if error is not None
                else "no error detail"
            )
            print(f"  [{index}] {tag} {report.status} — {detail}", file=sys.stderr)
        return 1
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.datasets == "all":
        datasets = list(DATASETS)
    elif args.datasets == "tough":
        datasets = list(TOUGH_DATASETS)
    else:
        datasets = [name.strip() for name in args.datasets.split(",") if name.strip()]
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    requests = sweep_requests(
        datasets,
        backends,
        kernel=args.kernel,
        node_budget=args.node_budget,
        time_budget=args.time_budget,
        seed=args.seed,
    )
    document = json.dumps(
        {"requests": [request.to_dict() for request in requests]}, indent=2
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(
            f"wrote {len(requests)} requests ({len(datasets)} datasets x "
            f"{len(backends)} backends) to {args.output}"
        )
    else:
        print(document)
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    infos = backend_infos()
    if args.json:
        print(json.dumps([info.to_dict() for info in infos], indent=2))
        return 0
    header = f"{'name':<18}{'exact':<7}{'kernels':<12}{'budgets':<9}{'seed':<6}description"
    print(header)
    print("-" * len(header))
    for info in infos:
        kernels = ",".join(info.kernels) if info.kernels else "-"
        print(
            f"{info.name:<18}{'yes' if info.exact else 'no':<7}{kernels:<12}"
            f"{'yes' if info.supports_budgets else 'no':<9}"
            f"{'yes' if info.supports_seed else 'no':<6}{info.description}"
        )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if (args.density is None) == (args.avg_degree is None):
        print("error: provide exactly one of --density or --avg-degree", file=sys.stderr)
        return 2
    if args.density is not None:
        graph = random_bipartite(args.left, args.right, args.density, seed=args.seed)
    else:
        graph = random_power_law_bipartite(
            args.left, args.right, args.avg_degree, seed=args.seed
        )
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.output}: |L|={graph.num_left} |R|={graph.num_right} "
        f"|E|={graph.num_edges} (density {graph.density:.5f})"
    )
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    header = f"{'name':<28}{'|L|':>7}{'|R|':>7}{'planted':>9}  {'paper |L|':>10}{'paper |R|':>10}{'paper opt':>10}"
    print(header)
    print("-" * len(header))
    for name, spec in DATASETS.items():
        tough = " *" if spec.tough else ""
        print(
            f"{name + tough:<28}{spec.n_left:>7}{spec.n_right:>7}{spec.planted_size:>9}  "
            f"{spec.paper_left:>10}{spec.paper_right:>10}{spec.paper_optimum:>10}"
        )
    print("\n(* = tough dataset used by Table 6 and Figures 4-6)")
    return 0


def _explain_rules(codes_argument: str) -> int:
    """Print rationale/example/suppression guidance for rule codes."""
    from repro.devtools.lint import RULE_REGISTRY, all_rules

    rules = all_rules()  # populates the registry, deterministic order
    if codes_argument.strip().lower() != "all":
        wanted = {
            token.strip().upper()
            for token in codes_argument.split(",")
            if token.strip()
        }
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            print(
                f"error: unknown rule codes {sorted(unknown)}; "
                f"registered: {sorted(RULE_REGISTRY)}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.code in wanted]
    blocks = []
    for rule in rules:
        lines = [
            f"{rule.code} — {rule.name}",
            f"  {rule.description}",
            "",
            "  Why:",
        ]
        lines.extend(f"    {line}" for line in textwrap.wrap(rule.rationale, 72))
        lines.append("")
        lines.append("  Example:")
        lines.extend(f"    {line}" for line in rule.example.splitlines())
        lines.append("")
        lines.append("  Suppressing:")
        lines.extend(
            f"    {line}"
            for line in textwrap.wrap(
                f"Prefer fixing the violation. A deliberate exception is "
                f"silenced per line with '# reprolint: disable={rule.code}'; "
                f"a pre-existing finding can be accepted in "
                f"reprolint-baseline.json (add a 'justification' string to "
                f"the entry explaining why it is not fixed).",
                72,
            )
        )
        blocks.append("\n".join(lines))
    print("\n\n".join(blocks))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analyzer is devtooling and the solve/batch
    # paths should not pay for it.
    from repro.devtools.lint import (
        DEFAULT_BASELINE_NAME,
        DEFAULT_LINT_PATHS,
        Baseline,
        BaselineError,
        build_project,
        render_json,
        render_text,
        rule_table,
        run_lint,
    )

    if args.list_rules:
        for code, name, description in rule_table():
            print(f"{code}  {name:<20}{description}")
        return 0
    if args.explain is not None:
        return _explain_rules(args.explain)
    root = os.path.abspath(args.root)
    paths = list(args.paths)
    if not paths:
        paths = [
            path
            for path in DEFAULT_LINT_PATHS
            if os.path.exists(os.path.join(root, path))
        ]
        if not paths:
            print(
                f"error: none of {DEFAULT_LINT_PATHS} exist under {root}; "
                "pass explicit paths",
                file=sys.stderr,
            )
            return 2
    if args.graph_dot is not None:
        try:
            dot = build_project(paths, root=root).to_dot()
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.graph_dot == "-":
            print(dot, end="")
        else:
            with open(args.graph_dot, "w", encoding="utf-8") as handle:
                handle.write(dot)
            print(f"wrote import graph to {args.graph_dot}")
        return 0
    rules = [] if args.rules is None else args.rules.split(",")
    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE_NAME)
    try:
        baseline = None if args.no_baseline else Baseline.load(baseline_path)
        result = run_lint(paths, root=root, rules=rules, baseline=baseline)
    except (BaselineError, FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        previous = baseline if baseline is not None else Baseline.load(baseline_path)
        Baseline.from_findings(result.all_findings, previous=previous).save(
            baseline_path
        )
        print(
            f"wrote baseline with {len(result.all_findings)} findings to "
            f"{baseline_path}"
        )
        return 0
    print(render_json(result) if args.json else render_text(result))
    return result.exit_code


def _command_bench(args: argparse.Namespace) -> int:
    from repro.bench import figure4, figure5, figure6, kernels, table4, table5, table6

    budget = args.time_budget
    if args.write_json and args.artefact != "kernels":
        print("error: --write-json is only supported for the kernels artefact", file=sys.stderr)
        return 2
    if args.smoke and args.artefact != "kernels":
        print("error: --smoke is only supported for the kernels artefact", file=sys.stderr)
        return 2
    if args.artefact == "kernels":
        if args.smoke:
            cases = kernels.SMOKE_KERNEL_CASES
            datasets = kernels.SMOKE_BRIDGE_DATASETS
            peel_datasets = kernels.SMOKE_PEEL_DATASETS
            subgraph_datasets = kernels.SMOKE_SUBGRAPH_DATASETS
            cache_datasets = kernels.SMOKE_ENGINE_CACHE_DATASETS
            handoff_datasets = kernels.SMOKE_HANDOFF_DATASETS
            parallel_s3_datasets = kernels.SMOKE_PARALLEL_S3_DATASETS
            parallel_s3_workers = kernels.SMOKE_PARALLEL_S3_WORKERS
            instances = 1
            peel_repeats = 1
        else:
            cases = kernels.DEFAULT_KERNEL_CASES
            datasets = kernels.DEFAULT_BRIDGE_DATASETS
            peel_datasets = kernels.DEFAULT_PEEL_DATASETS
            subgraph_datasets = kernels.DEFAULT_SUBGRAPH_DATASETS
            cache_datasets = kernels.DEFAULT_ENGINE_CACHE_DATASETS
            handoff_datasets = kernels.DEFAULT_HANDOFF_DATASETS
            parallel_s3_datasets = kernels.DEFAULT_PARALLEL_S3_DATASETS
            parallel_s3_workers = kernels.DEFAULT_PARALLEL_S3_WORKERS
            instances = 2
            peel_repeats = 3
        rows = kernels.run_kernel_comparison(
            cases, instances=instances, time_budget=budget
        )
        bridge_rows = kernels.run_bridge_comparison(datasets, time_budget=budget)
        peel_rows = kernels.run_peel_comparison(
            peel_datasets, repeats=peel_repeats, time_budget=budget
        )
        subgraph_rows = kernels.run_subgraph_comparison(
            subgraph_datasets, repeats=peel_repeats, time_budget=budget
        )
        engine_cache_rows = kernels.run_engine_cache_comparison(
            cache_datasets, repeats=peel_repeats, time_budget=budget
        )
        handoff_rows = kernels.run_handoff_comparison(
            handoff_datasets, repeats=peel_repeats, time_budget=budget
        )
        parallel_s3_rows = kernels.run_parallel_s3_comparison(
            parallel_s3_datasets,
            workers=parallel_s3_workers,
            repeats=peel_repeats,
            time_budget=budget,
        )
        print(
            kernels.format_kernel_comparison(
                rows,
                bridge_rows,
                peel_rows,
                subgraph_rows,
                engine_cache_rows,
                handoff_rows,
                parallel_s3_rows,
            )
        )
        if args.write_json:
            kernels.write_benchmark_json(
                rows,
                args.write_json,
                bridge_rows,
                peel_rows,
                subgraph_rows,
                engine_cache_rows,
                handoff_rows,
                parallel_s3_rows,
            )
            print(f"\narchived rows to {args.write_json}")
    elif args.artefact == "table4":
        print(table4.format_table4(table4.run_table4(time_budget=budget, instances=1)))
    elif args.artefact == "table5":
        print(table5.format_table5(table5.run_table5(time_budget=budget)))
    elif args.artefact == "table6":
        print(table6.format_table6(table6.run_table6(time_budget=budget)))
    elif args.artefact == "figure4":
        print(figure4.format_figure4(figure4.run_figure4(time_budget=budget)))
    elif args.artefact == "figure5":
        print(figure5.format_figure5(figure5.run_figure5(time_budget=budget)))
    else:
        print(figure6.format_figure6(figure6.run_figure6()))
    return 0


_COMMANDS = {
    "solve": _command_solve,
    "batch": _command_batch,
    "sweep": _command_sweep,
    "backends": _command_backends,
    "generate": _command_generate,
    "datasets": _command_datasets,
    "bench": _command_bench,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-mbb`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
