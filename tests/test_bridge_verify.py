"""Tests for the bridging (Algorithm 6) and verification (Algorithm 8) stages."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    grid_union_of_bicliques,
    planted_balanced_biclique,
    random_bipartite,
)
from repro.cores.orders import ORDER_BIDEGENERACY, ORDER_DEGREE
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.verify import verify_mbb
from repro.baselines.brute_force import brute_force_side_size


class TestBridgeMBB:
    def test_empty_graph(self):
        context = SearchContext()
        outcome = bridge_mbb(BipartiteGraph(), context)
        assert outcome.exhausted
        assert outcome.best.side_size == 0

    def test_pruning_with_strong_incumbent_removes_everything(self):
        graph = random_bipartite(12, 12, 0.2, seed=1)
        context = SearchContext()
        # Give the context an incumbent that is certainly at least as large
        # as anything in this sparse graph.
        context.offer(range(100, 108), range(200, 208))
        outcome = bridge_mbb(graph, context)
        assert outcome.exhausted

    def test_local_heuristic_improves_incumbent_on_planted_graph(self):
        graph = planted_balanced_biclique(40, 40, 6, background_density=0.02, seed=3)
        context = SearchContext()
        outcome = bridge_mbb(graph, context)
        assert outcome.best.side_size >= 5

    def test_surviving_subgraphs_have_enough_vertices(self):
        graph = random_bipartite(20, 20, 0.25, seed=4)
        context = SearchContext()
        context.offer([0, 1], [0, 1])
        outcome = bridge_mbb(graph, context)
        for sub in outcome.surviving:
            assert min(sub.graph.num_left, sub.graph.num_right) >= context.best_side + 1

    def test_statistics_are_populated(self):
        graph = random_bipartite(15, 15, 0.3, seed=5)
        context = SearchContext()
        bridge_mbb(graph, context)
        assert context.stats.subgraphs_generated == graph.num_vertices

    @pytest.mark.parametrize("order_name", [ORDER_DEGREE, ORDER_BIDEGENERACY])
    def test_bridge_plus_verify_reaches_optimum(self, order_name):
        for seed in range(6):
            graph = random_bipartite(9, 9, 0.5, seed=seed)
            optimum = brute_force_side_size(graph)
            context = SearchContext()
            outcome = bridge_mbb(graph, context, order=order_name)
            verify_mbb(outcome.surviving, context)
            assert context.best_side == optimum


class TestVerifyMBB:
    def test_verify_on_no_subgraphs_keeps_incumbent(self):
        context = SearchContext()
        context.offer([1], [2])
        best = verify_mbb([], context)
        assert best.side_size == 1

    def test_verify_improves_on_union_of_blocks(self):
        graph = grid_union_of_bicliques([4, 2])
        context = SearchContext()
        outcome = bridge_mbb(graph, context, use_local_heuristic=False)
        verify_mbb(outcome.surviving, context)
        assert context.best_side == 4

    def test_verify_without_core_pruning_still_correct(self):
        graph = random_bipartite(8, 8, 0.6, seed=7)
        optimum = brute_force_side_size(graph)
        context = SearchContext()
        outcome = bridge_mbb(graph, context, use_core_pruning=False)
        verify_mbb(outcome.surviving, context, use_core_pruning=False)
        assert context.best_side == optimum

    def test_verify_respects_time_budget(self):
        graph = complete_bipartite(12, 12)
        context = SearchContext(node_budget=1)
        outcome = bridge_mbb(graph, context, use_local_heuristic=False)
        # With a one-node budget the verification aborts but must still
        # return a valid (possibly sub-optimal) incumbent.
        best = verify_mbb(outcome.surviving, context)
        assert best.is_valid_in(graph)
