"""ExtBBClq — the state-of-the-art exact baseline (Zhou, Rossi, Hao 2018).

The paper (Section 3) describes the baseline as a branch-and-bound over the
biclique enumeration of McCreesh and Prosser, driven by a *total order* of
the vertices by non-increasing global degree and pruned with precomputed
per-vertex upper bounds:

* for ``v`` on the left side, ``i_v`` is the largest integer such that
  ``i_v`` left vertices each share at least ``i_v`` common neighbours with
  ``v`` (an h-index over the common-neighbour counts);
* the *tight* upper bound ``t_v`` is the largest integer such that ``t_v``
  of ``v``'s neighbours have upper bound at least ``t_v``;
* a branch rooted at ``v`` is pruned when ``2 * t_v`` cannot beat the best
  balanced biclique found so far.

The reconstruction below follows that description; it deliberately does
*not* use any of the paper's new techniques (reductions, polynomial cases,
bidegeneracy) so the comparison in the benchmark tables is meaningful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.mbb.bounds import degree_upper_bound, is_bounded, offer_completions
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.result import MBBResult

VertexKey = Tuple[str, Vertex]


def _common_neighbour_counts(
    graph: BipartiteGraph, side: str, label: Vertex
) -> List[int]:
    """Common-neighbour counts between ``(side, label)`` and same-side vertices.

    The vertex itself is included (its count is its own degree): a balanced
    biclique of side ``k`` containing the vertex provides ``k`` same-side
    vertices — the vertex included — sharing at least ``k`` neighbours, so
    the h-index over this list is a valid upper bound on ``k``.
    """
    counts: Dict[Vertex, int] = {}
    if side == LEFT:
        counts[label] = graph.degree_left(label)
        for v in graph.neighbors_left(label):
            for u in graph.neighbors_right(v):
                if u != label:
                    counts[u] = counts.get(u, 0) + 1
    else:
        counts[label] = graph.degree_right(label)
        for u in graph.neighbors_right(label):
            for v in graph.neighbors_left(u):
                if v != label:
                    counts[v] = counts.get(v, 0) + 1
    return list(counts.values())


def vertex_upper_bounds(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    """The precomputed ``i_v`` upper bound for every vertex."""
    bounds: Dict[VertexKey, int] = {}
    for u in graph.left_vertices():
        bounds[(LEFT, u)] = degree_upper_bound(
            _common_neighbour_counts(graph, LEFT, u)
        )
    for v in graph.right_vertices():
        bounds[(RIGHT, v)] = degree_upper_bound(
            _common_neighbour_counts(graph, RIGHT, v)
        )
    return bounds


def tight_upper_bounds(
    graph: BipartiteGraph, bounds: Optional[Dict[VertexKey, int]] = None
) -> Dict[VertexKey, int]:
    """The ``t_v`` bound: an h-index over the neighbours' ``i_v`` values."""
    if bounds is None:
        bounds = vertex_upper_bounds(graph)
    tight: Dict[VertexKey, int] = {}
    for u in graph.left_vertices():
        neighbour_bounds = [bounds[(RIGHT, v)] for v in graph.neighbors_left(u)]
        tight[(LEFT, u)] = degree_upper_bound(neighbour_bounds)
    for v in graph.right_vertices():
        neighbour_bounds = [bounds[(LEFT, u)] for u in graph.neighbors_right(v)]
        tight[(RIGHT, v)] = degree_upper_bound(neighbour_bounds)
    return tight


def _global_degree_order(graph: BipartiteGraph) -> List[VertexKey]:
    """All vertices by non-increasing global degree (the baseline's order)."""
    keys: List[VertexKey] = [(LEFT, u) for u in graph.left_vertices()]
    keys.extend((RIGHT, v) for v in graph.right_vertices())

    def degree(key: VertexKey) -> int:
        side, label = key
        return graph.degree_left(label) if side == LEFT else graph.degree_right(label)

    return sorted(keys, key=lambda key: (-degree(key), key[0], repr(key[1])))


def _ext_bbclq_node(
    graph: BipartiteGraph,
    context: SearchContext,
    order: List[VertexKey],
    tight: Dict[VertexKey, int],
    index: int,
    a: Set[Vertex],
    b: Set[Vertex],
    ca: Set[Vertex],
    cb: Set[Vertex],
    depth: int,
) -> None:
    context.enter_node(depth)
    if is_bounded(context, len(a), len(b), len(ca), len(cb)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return
    offer_completions(context, a, b, ca, cb)
    if not ca and not cb:
        context.record_leaf(depth)
        return

    # Advance along the global order to the next vertex that is still a
    # candidate at this node.
    position = index
    while position < len(order):
        side, label = order[position]
        if side == LEFT and label in ca:
            break
        if side == RIGHT and label in cb:
            break
        position += 1
    if position == len(order):
        context.record_leaf(depth)
        return

    side, label = order[position]
    # Upper-bound pruning of the include branch: a balanced biclique that
    # contains this vertex cannot have total size above 2 * t_v.
    include_allowed = 2 * tight[(side, label)] > context.best_total
    if side == LEFT:
        if include_allowed:
            _ext_bbclq_node(
                graph,
                context,
                order,
                tight,
                position + 1,
                a | {label},
                b,
                ca - {label},
                cb & graph.neighbors_left(label),
                depth + 1,
            )
        _ext_bbclq_node(
            graph, context, order, tight, position + 1, a, b, ca - {label}, cb, depth + 1
        )
    else:
        if include_allowed:
            _ext_bbclq_node(
                graph,
                context,
                order,
                tight,
                position + 1,
                a,
                b | {label},
                ca & graph.neighbors_right(label),
                cb - {label},
                depth + 1,
            )
        _ext_bbclq_node(
            graph, context, order, tight, position + 1, a, b, ca, cb - {label}, depth + 1
        )


def ext_bbclq(
    graph: BipartiteGraph,
    *,
    context: Optional[SearchContext] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Run the ExtBBClq baseline on ``graph``.

    Budgets behave like everywhere else in the library: when exhausted the
    incumbent is returned with ``optimal=False`` (the analogue of the
    paper's "-" timeout entries).
    """
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    bounds = vertex_upper_bounds(graph)
    tight = tight_upper_bounds(graph, bounds)
    order = _global_degree_order(graph)
    optimal = True
    try:
        _ext_bbclq_node(
            graph,
            context,
            order,
            tight,
            0,
            set(),
            set(),
            graph.left,
            graph.right,
            0,
        )
    except SearchAborted:
        optimal = False
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )
