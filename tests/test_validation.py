"""Tests for the structural validators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_bipartite, random_bipartite
from repro.graph.validation import (
    assert_valid_biclique,
    check_consistent,
    degree_histogram,
    is_balanced_biclique,
    is_biclique,
)


class TestCheckConsistent:
    def test_random_graphs_are_consistent(self):
        for seed in range(5):
            check_consistent(random_bipartite(6, 7, 0.4, seed=seed))

    def test_tampered_graph_is_detected(self):
        graph = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        # Reach into the internals to break the invariant on purpose.
        graph.neighbors_left(1).add("b")
        with pytest.raises(GraphError):
            check_consistent(graph)


class TestIsBiclique:
    def test_complete_graph_subsets(self):
        graph = complete_bipartite(3, 4)
        assert is_biclique(graph, [0, 1], [0, 1, 2])
        assert is_balanced_biclique(graph, [0, 1], [2, 3])
        assert not is_balanced_biclique(graph, [0, 1], [0])

    def test_missing_edge_fails(self):
        graph = BipartiteGraph(edges=[(1, "a"), (2, "a")])
        assert is_biclique(graph, [1, 2], ["a"])
        assert not is_biclique(graph, [1, 2], ["a", "b"])

    def test_missing_vertex_fails_quietly(self):
        graph = BipartiteGraph(edges=[(1, "a")])
        assert not is_biclique(graph, [99], ["a"])
        assert not is_biclique(graph, [1], ["zz"])

    def test_empty_sets_form_a_biclique(self):
        graph = BipartiteGraph(edges=[(1, "a")])
        assert is_biclique(graph, [], [])
        assert is_balanced_biclique(graph, [], [])


class TestAssertValidBiclique:
    def test_accepts_valid_balanced_biclique(self):
        graph = complete_bipartite(2, 2)
        assert_valid_biclique(graph, [0, 1], [0, 1])

    def test_rejects_unbalanced_when_required(self):
        graph = complete_bipartite(2, 2)
        with pytest.raises(GraphError):
            assert_valid_biclique(graph, [0, 1], [0])
        assert_valid_biclique(graph, [0, 1], [0], balanced=False)

    def test_rejects_non_biclique(self):
        graph = BipartiteGraph(edges=[(0, 0), (1, 1)])
        with pytest.raises(GraphError):
            assert_valid_biclique(graph, [0, 1], [0, 1])


class TestDegreeHistogram:
    def test_complete_graph_histogram(self):
        left_hist, right_hist = degree_histogram(complete_bipartite(3, 5))
        assert left_hist == {5: 3}
        assert right_hist == {3: 5}

    def test_histogram_counts_sum_to_vertex_counts(self):
        graph = random_bipartite(7, 9, 0.3, seed=1)
        left_hist, right_hist = degree_histogram(graph)
        assert sum(left_hist.values()) == 7
        assert sum(right_hist.values()) == 9
