"""Tests for the synthetic workloads and the KONECT dataset stand-ins."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graph.validation import check_consistent, is_biclique
from repro.workloads.datasets import DATASETS, TOUGH_DATASETS, load_dataset
from repro.workloads.synthetic import (
    DEFAULT_DENSE_SIDES,
    TABLE4_DENSITIES,
    DenseCase,
    dense_case_graph,
    dense_suite,
    sparse_synthetic_graph,
)


class TestDenseSuite:
    def test_suite_covers_all_cells(self):
        cases = list(dense_suite())
        assert len(cases) == len(DEFAULT_DENSE_SIDES) * len(TABLE4_DENSITIES)

    def test_paper_densities_are_present(self):
        assert TABLE4_DENSITIES == (0.70, 0.75, 0.80, 0.85, 0.90, 0.95)

    def test_case_graph_matches_parameters(self):
        case = DenseCase(side=20, density=0.8)
        graph = dense_case_graph(case)
        assert graph.num_left == 20 and graph.num_right == 20
        assert 0.7 < graph.density < 0.9
        check_consistent(graph)

    def test_case_graph_is_deterministic_per_instance(self):
        case = DenseCase(side=12, density=0.75)
        assert dense_case_graph(case, 0) == dense_case_graph(case, 0)
        assert dense_case_graph(case, 0) != dense_case_graph(case, 1)

    def test_case_label(self):
        assert DenseCase(side=16, density=0.7).label == "16x16@70%"


class TestSparseSynthetic:
    def test_planted_block_is_present(self):
        graph = sparse_synthetic_graph(100, 100, 2.0, planted_size=5, seed=1)
        assert is_biclique(graph, range(5), range(5))

    def test_without_planting(self):
        graph = sparse_synthetic_graph(50, 50, 2.0, seed=2)
        check_consistent(graph)


class TestDatasetRegistry:
    def test_thirty_datasets_registered(self):
        assert len(DATASETS) == 30

    def test_twelve_tough_datasets(self):
        assert len(TOUGH_DATASETS) == 12
        assert all(DATASETS[name].tough for name in TOUGH_DATASETS)

    def test_paper_metadata_is_recorded(self):
        spec = DATASETS["jester"]
        assert spec.paper_left == 173421
        assert spec.paper_optimum == 100

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    @pytest.mark.parametrize("name", ["unicodelang", "jester", "dblp-author"])
    def test_generation_is_deterministic(self, name):
        assert load_dataset(name) == load_dataset(name)

    @pytest.mark.parametrize("name", sorted(DATASETS)[:6])
    def test_generated_graphs_match_spec_shape(self, name):
        spec = DATASETS[name]
        graph = spec.generate()
        assert graph.num_left == spec.n_left
        assert graph.num_right == spec.n_right
        assert graph.num_edges > 0
        assert is_biclique(graph, range(spec.planted_size), range(spec.planted_size))
        check_consistent(graph)

    def test_stand_ins_are_sparse(self):
        for name in list(DATASETS)[:10]:
            graph = DATASETS[name].generate()
            assert graph.density < 0.2
