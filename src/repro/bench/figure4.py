"""Figure 4 — gap between the heuristics and the optimum on tough datasets.

For every tough dataset (D1..D12) the figure reports the difference, in
side size, between the maximum balanced biclique and the result of:

* ``heuGlobal`` — the heuristic stage ``hMBB`` alone (Algorithm 5);
* ``heuLocal`` — ``hMBB`` plus the per-subgraph heuristic of the bridging
  stage (Algorithm 6).

Expected shape: ``heuLocal`` closes most of the gap (the paper reports it
reaches the optimum on 9 of the 12 datasets), which is what makes the
verification stage cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import heuristic_gaps
from repro.bench.harness import format_table
from repro.workloads.datasets import DATASETS, TOUGH_DATASETS


def run_figure4(
    dataset_names: Sequence[str] = TOUGH_DATASETS,
    *,
    time_budget: Optional[float] = 15.0,
) -> List[Dict[str, object]]:
    """Compute the heuristic gaps for every requested dataset."""
    rows: List[Dict[str, object]] = []
    for index, name in enumerate(dataset_names, start=1):
        graph = DATASETS[name].generate()
        gap = heuristic_gaps(graph, time_budget=time_budget)
        rows.append(
            {
                "label": f"D{index}",
                "dataset": name,
                "optimum": gap.optimum,
                "heuGlobal": gap.global_heuristic,
                "heuLocal": gap.local_heuristic,
                "gap_global": gap.gap_global,
                "gap_local": gap.gap_local,
            }
        )
    return rows


def format_figure4(rows: Sequence[Dict[str, object]]) -> str:
    """Render the Figure 4 series as a table (one row per dataset)."""
    return format_table(
        rows,
        ["label", "dataset", "optimum", "heuGlobal", "heuLocal", "gap_global", "gap_local"],
    )
