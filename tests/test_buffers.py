"""Flat-buffer backends: selection, round-trips, equivalence, shm lifecycle."""

from __future__ import annotations

import pickle
from array import array

import pytest

from repro.api import (
    GraphSpec,
    MBBEngine,
    PreparedGraphCache,
    SharedPreparedExports,
    SolveRequest,
)
from repro.exceptions import InvalidParameterError
from repro.graph import buffers
from repro.graph.bipartite import BipartiteGraph
from repro.graph.buffers import (
    BACKEND_ARRAY,
    BACKEND_LIST,
    BACKEND_NUMPY,
    attach_shared_memory,
    available_backends,
    as_int_list,
    buffer_backend,
    buffer_nbytes,
    buffer_to_bytes,
    buffer_view,
    default_backend,
    freeze_buffer,
    ints_from_buffer,
    mutable_int_buffer,
    pickleable_buffer,
    set_default_backend,
)
from repro.graph.generators import random_bipartite, random_power_law_bipartite
from repro.graph.prepared import PreparedGraph
from repro.cores.bicore import bicore_decomposition
from repro.cores.orders import ORDER_BIDEGENERACY
from repro.cores.two_hop import n_le2_flat
from repro.mbb.vertex_centred import iter_vertex_centred_subgraphs_csr


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide default backend untouched."""
    yield
    set_default_backend(None)


def mixed_label_graph(seed: int) -> BipartiteGraph:
    """A graph mixing int and str labels (and sharing labels across sides)."""
    base = random_bipartite(7, 7, 0.4, seed=seed)
    graph = BipartiteGraph()
    for u, v in base.edges():
        left = u if u % 2 == 0 else f"u{u}"
        right = v if v % 2 == 1 else f"v{v}"
        graph.add_edge(left, right)
    graph.add_left_vertex("lonely", exist_ok=True)
    graph.add_right_vertex(3, exist_ok=True)
    return graph


PROPERTY_GRAPHS = [
    random_bipartite(12, 10, 0.3, seed=11),
    random_bipartite(9, 9, 0.6, seed=5),
    random_power_law_bipartite(14, 12, 40, exponent=2.2, seed=3),
    mixed_label_graph(seed=8),
]


class TestBackendSelection:
    def test_available_backends_default_first(self):
        backends = available_backends()
        assert backends[0] == BACKEND_ARRAY
        assert BACKEND_LIST in backends

    def test_default_backend_resolution_order(self, monkeypatch):
        monkeypatch.delenv(buffers.BACKEND_ENV_VAR, raising=False)
        assert default_backend() == BACKEND_ARRAY
        monkeypatch.setenv(buffers.BACKEND_ENV_VAR, BACKEND_LIST)
        assert default_backend() == BACKEND_LIST
        # An explicit override outranks the environment.
        set_default_backend(BACKEND_ARRAY)
        assert default_backend() == BACKEND_ARRAY
        set_default_backend(None)
        assert default_backend() == BACKEND_LIST

    def test_invalid_backend_rejected(self, monkeypatch):
        with pytest.raises(InvalidParameterError):
            set_default_backend("rope")
        monkeypatch.setenv(buffers.BACKEND_ENV_VAR, "rope")
        with pytest.raises(InvalidParameterError):
            default_backend()

    def test_numpy_backend_requires_numpy(self):
        if BACKEND_NUMPY in available_backends():
            set_default_backend(BACKEND_NUMPY)
            assert default_backend() == BACKEND_NUMPY
        else:
            with pytest.raises(InvalidParameterError):
                set_default_backend(BACKEND_NUMPY)


class TestBufferRoundTrips:
    VALUES = [0, 1, 7, -3, 2**40, -(2**40)]

    def test_freeze_and_read_back_per_backend(self):
        for backend in available_backends():
            frozen = freeze_buffer(list(self.VALUES), backend=backend)
            assert as_int_list(frozen) == self.VALUES
            assert len(frozen) == len(self.VALUES)
            assert buffer_nbytes(frozen) == 8 * len(self.VALUES)
            assert buffer_to_bytes(frozen) == array("q", self.VALUES).tobytes()

    def test_typed_containers_pass_through_freeze(self):
        typed = array("q", self.VALUES)
        assert freeze_buffer(typed) is typed
        view = memoryview(typed)
        assert freeze_buffer(view) is view

    def test_mutable_buffer_is_owned_and_writable(self):
        for backend in available_backends():
            source = freeze_buffer(list(self.VALUES), backend=backend)
            working = mutable_int_buffer(source, backend=backend)
            assert not isinstance(working, memoryview)
            working[0] = 99
            assert int(working[0]) == 99
            assert as_int_list(source) == self.VALUES

    def test_buffer_view_is_zero_copy_for_arrays(self):
        typed = array("q", self.VALUES)
        view = buffer_view(typed)
        assert isinstance(view, memoryview)
        assert view.tolist() == self.VALUES
        plain = list(self.VALUES)
        assert buffer_view(plain) is plain

    def test_ints_from_buffer_round_trips_raw_bytes(self):
        raw = memoryview(bytearray(array("q", self.VALUES).tobytes()))
        for backend in available_backends():
            rebuilt = ints_from_buffer(raw, backend)
            assert as_int_list(rebuilt) == self.VALUES
            assert buffer_backend(rebuilt) == backend
        # The array backend is a window over the same memory, not a copy.
        window = ints_from_buffer(raw, BACKEND_ARRAY)
        raw[:8] = array("q", [123]).tobytes()
        assert int(window[0]) == 123

    def test_pickleable_buffer_materialises_views(self):
        view = memoryview(array("q", self.VALUES))
        safe = pickleable_buffer(view)
        assert as_int_list(pickle.loads(pickle.dumps(safe))) == self.VALUES
        plain = list(self.VALUES)
        assert pickleable_buffer(plain) is plain

    def test_buffer_backend_rejects_non_buffers(self):
        with pytest.raises(InvalidParameterError):
            buffer_backend("not a buffer")


def _flat_signature(graph: BipartiteGraph) -> dict:
    """Everything the flat pipeline computes, in backend-neutral form."""
    prepared = PreparedGraph.prepare(graph)
    le2_ptr, le2 = prepared.n_le2
    numbers, order = bicore_decomposition(graph, prepared=prepared)
    raw_ptr, raw_le2 = n_le2_flat(prepared.csr)
    subgraphs = [
        (sub.center, sub.position, sub.left_members, sub.right_members)
        for sub in iter_vertex_centred_subgraphs_csr(
            prepared, prepared.search_order(ORDER_BIDEGENERACY)
        )
    ]
    result = MBBEngine(prepared_cache=PreparedGraphCache()).solve_graph(
        graph, backend="sparse"
    )
    return {
        "indptr": buffer_to_bytes(prepared.csr.indptr),
        "indices": buffer_to_bytes(prepared.csr.indices),
        "le2_ptr": buffer_to_bytes(le2_ptr),
        "le2": buffer_to_bytes(le2),
        "raw_le2": (buffer_to_bytes(raw_ptr), buffer_to_bytes(raw_le2)),
        "numbers": numbers,
        "order": order,
        "subgraphs": subgraphs,
        "solve": (
            result.side_size,
            sorted(map(repr, result.biclique.left)),
            sorted(map(repr, result.biclique.right)),
        ),
    }


class TestBackendEquivalence:
    def test_all_backends_byte_identical_pipeline(self):
        """Peel orders, N<=2, subgraph streams and solve results agree."""
        for graph in PROPERTY_GRAPHS:
            set_default_backend(BACKEND_LIST)
            reference = _flat_signature(graph)
            for backend in available_backends():
                set_default_backend(backend)
                assert _flat_signature(graph) == reference, backend

    def test_shm_attached_backends_byte_identical_pipeline(self):
        """Bundles attached from shared memory match the in-process ones."""
        for graph in PROPERTY_GRAPHS:
            set_default_backend(BACKEND_LIST)
            reference = _flat_signature(graph)
            producer = PreparedGraph.prepare(graph)
            producer.n_le2
            handle = producer.to_shm()
            try:
                for backend in available_backends():
                    set_default_backend(backend)
                    attached = PreparedGraph.from_shm(
                        handle.name, handle.fingerprint, backend=backend
                    )
                    le2_ptr, le2 = attached.n_le2
                    numbers, order = bicore_decomposition(
                        attached.graph, prepared=attached
                    )
                    subgraphs = [
                        (s.center, s.position, s.left_members, s.right_members)
                        for s in iter_vertex_centred_subgraphs_csr(
                            attached,
                            attached.search_order(ORDER_BIDEGENERACY),
                        )
                    ]
                    assert buffer_to_bytes(attached.csr.indptr) == reference["indptr"]
                    assert buffer_to_bytes(attached.csr.indices) == reference["indices"]
                    assert buffer_to_bytes(le2_ptr) == reference["le2_ptr"]
                    assert buffer_to_bytes(le2) == reference["le2"]
                    assert (numbers, order) == (
                        reference["numbers"],
                        reference["order"],
                    )
                    assert subgraphs == reference["subgraphs"]
            finally:
                handle.destroy()


class TestShmRoundTrip:
    def test_round_trip_identity_and_verification(self):
        graph = mixed_label_graph(seed=2)
        prepared = PreparedGraph.prepare(graph)
        prepared.n_le2
        handle = prepared.to_shm()
        try:
            attached = PreparedGraph.from_shm(
                handle.name, handle.fingerprint, verify_content=True
            )
            assert attached.fingerprint == prepared.fingerprint
            assert attached.csr.keys == prepared.csr.keys
            assert attached.graph == graph
            with pytest.raises(InvalidParameterError):
                PreparedGraph.from_shm(handle.name, "0" * 32)
        finally:
            handle.destroy()

    def test_list_backend_copies_and_detaches(self):
        prepared = PreparedGraph.prepare(random_bipartite(8, 8, 0.4, seed=1))
        prepared.n_le2
        handle = prepared.to_shm()
        try:
            attached = PreparedGraph.from_shm(
                handle.name, handle.fingerprint, backend=BACKEND_LIST
            )
            assert isinstance(attached.csr.indptr, list)
        finally:
            handle.destroy()
        # The copy owns its data: usable after the segment is gone.
        assert bicore_decomposition(attached.graph, prepared=attached)

    def test_destroy_is_idempotent_and_final(self):
        prepared = PreparedGraph.prepare(random_bipartite(6, 6, 0.5, seed=4))
        handle = prepared.to_shm()
        name = handle.name
        handle.destroy()
        handle.destroy()
        with pytest.raises(FileNotFoundError):
            attach_shared_memory(name)


class TestShmLifecycle:
    def test_lru_eviction_destroys_published_segment(self):
        exports = SharedPreparedExports()

        def release(fingerprint: str, prepared: PreparedGraph) -> None:
            exports.release(fingerprint)

        cache = PreparedGraphCache(capacity=1, on_evict=release)
        first, _ = cache.get(random_bipartite(8, 8, 0.4, seed=1))
        handle = exports.export(first)
        attach_shared_memory(handle.name).close()
        # A second graph evicts the first; its segment must die with it.
        cache.get(random_bipartite(8, 8, 0.4, seed=2))
        assert len(exports) == 0
        with pytest.raises(FileNotFoundError):
            attach_shared_memory(handle.name)

    def test_solve_many_attaches_and_shutdown_unlinks(self):
        from repro.api.engine import _PREPARED_EXPORTS

        spec = GraphSpec.random(24, 24, 0.2, seed=9)
        requests = [
            SolveRequest(graph=spec, backend="sparse", seed=i) for i in range(3)
        ]
        engine = MBBEngine(prepared_cache=PreparedGraphCache(), max_workers=2)
        try:
            reports = engine.solve_many(requests)
            assert len(reports) == 3
            sides = {report.side_size for report in reports}
            assert len(sides) == 1
            # One export serves the whole batch; every worker report shows
            # the attach seeding its cache (hit, not a re-prepare).
            assert len(_PREPARED_EXPORTS) >= 1
            names = [
                handle.name
                for handle in _PREPARED_EXPORTS._handles.values()  # noqa: SLF001
            ]
            for report in reports:
                assert int(report.stats.get("prepared_cache_hits", 0)) >= 1
                assert int(report.stats.get("prepared_cache_misses", 1)) == 0
        finally:
            engine.shutdown()
        assert len(_PREPARED_EXPORTS) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                attach_shared_memory(name)
