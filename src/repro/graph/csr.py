"""Flat CSR adjacency snapshot of a :class:`BipartiteGraph`.

The label-keyed adjacency sets of :class:`~repro.graph.bipartite.
BipartiteGraph` are the right shape for the solvers (set intersections,
membership tests), but they throttle the *decomposition* algorithms whose
inner loops only ever walk neighbourhoods: every visited neighbour costs a
hash lookup on a ``(side, label)`` tuple.  :class:`CSRBipartite` is the
flat counterpart — the whole graph mapped once onto dense integer vertex
ids with the adjacency lists packed into two flat int arrays in the
classic compressed-sparse-row layout:

* vertex ids are ``0 .. n-1`` with the left side first: left labels get
  ``0 .. num_left-1`` and right labels get ``num_left .. n-1``, each side
  sorted by ``repr(label)`` so the id assignment is deterministic for any
  mix of label types (the same convention as
  :meth:`~repro.graph.bipartite.BipartiteGraph.to_biadjacency`);
* ``indices[indptr[i]:indptr[i + 1]]`` holds the neighbour ids of vertex
  ``i`` in ascending order, so walking a neighbourhood is a flat slice of
  small ints — no tuples, no hashing.

The id order doubles as the canonical deterministic tie-break of the
bicore engine (:mod:`repro.cores.bicore`): comparing two vertices by id is
exactly comparing them by ``(side, repr(label))``, which is what lets the
bucket, heap and oracle peels agree on one total order.

The arrays are plain Python lists of ints.  CPython stores a list as a
contiguous array of pointers into the small-int cache, which for
pure-Python index loops beats ``array('q')`` (whose ``__getitem__`` boxes
a fresh ``int`` per access) — the layout is CSR, the container is the
fastest one the interpreter offers.

A snapshot is immutable by convention: it does not track later mutations
of the source graph, exactly like :class:`~repro.graph.bitset.
IndexedBitGraph`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex

VertexKey = Tuple[str, Vertex]


class CSRBipartite:
    """Immutable CSR view of a bipartite graph over dense vertex ids."""

    __slots__ = ("keys", "indptr", "indices", "num_left", "num_right", "_index")

    def __init__(
        self,
        keys: List[VertexKey],
        indptr: List[int],
        indices: List[int],
        num_left: int,
    ) -> None:
        self.keys = keys
        self.indptr = indptr
        self.indices = indices
        self.num_left = num_left
        self.num_right = len(keys) - num_left
        self._index: Dict[VertexKey, int] = {key: i for i, key in enumerate(keys)}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bipartite(cls, graph: BipartiteGraph) -> "CSRBipartite":
        """Index ``graph`` once into the flat CSR form."""
        left = sorted(graph.left_vertices(), key=repr)
        right = sorted(graph.right_vertices(), key=repr)
        num_left = len(left)
        keys: List[VertexKey] = [(LEFT, u) for u in left]
        keys.extend((RIGHT, v) for v in right)
        left_id = {u: i for i, u in enumerate(left)}
        right_id = {v: num_left + j for j, v in enumerate(right)}
        indptr = [0] * (len(keys) + 1)
        indices: List[int] = []
        for i, u in enumerate(left):
            indices.extend(sorted(right_id[v] for v in graph.neighbors_left(u)))
            indptr[i + 1] = len(indices)
        for j, v in enumerate(right):
            indices.extend(sorted(left_id[u] for u in graph.neighbors_right(v)))
            indptr[num_left + j + 1] = len(indices)
        return cls(keys, indptr, indices, num_left)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Total number of vertices ``|L| + |R|``."""
        return len(self.keys)

    @property
    def num_edges(self) -> int:
        """Number of edges (each contributes one entry per direction)."""
        return len(self.indices) // 2

    def index_of(self, key: VertexKey) -> int:
        """Dense id of a ``(side, label)`` key."""
        return self._index[key]

    def key_of(self, vertex: int) -> VertexKey:
        """``(side, label)`` key of a dense id."""
        return self.keys[vertex]

    def is_left(self, vertex: int) -> bool:
        """``True`` when the id belongs to the left side."""
        return vertex < self.num_left

    def degree(self, vertex: int) -> int:
        """Degree of the vertex with the given dense id."""
        return self.indptr[vertex + 1] - self.indptr[vertex]

    def neighbors(self, vertex: int) -> List[int]:
        """Neighbour ids of ``vertex``, ascending (a fresh list slice)."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRBipartite(|L|={self.num_left}, |R|={self.num_right}, "
            f"|E|={self.num_edges})"
        )
