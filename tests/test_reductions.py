"""Tests for the Lemma 1 / Lemma 2 / Lemma 4 reduction rules."""

from __future__ import annotations

from repro.graph.bipartite import BipartiteGraph
from repro.graph.bitset import IndexedBitGraph
from repro.graph.generators import complete_bipartite, crown_graph, random_bipartite
from repro.cores.core import degeneracy
from repro.mbb.context import SearchContext
from repro.mbb.reductions import (
    BitNodeState,
    NodeState,
    core_reduce,
    reduce_node,
    reduce_node_bits,
)
from repro.baselines.brute_force import brute_force_side_size


def _fresh_state(graph: BipartiteGraph) -> NodeState:
    return NodeState(set(), set(), graph.left, graph.right)


class TestNodeState:
    def test_copy_is_deep(self):
        state = NodeState({1}, {2}, {3}, {4})
        clone = state.copy()
        clone.a.add(99)
        assert 99 not in state.a

    def test_upper_bound_side(self):
        state = NodeState({1}, set(), {2, 3}, {4})
        assert state.upper_bound_side == min(3, 1)


class TestAllConnectionRule:
    def test_forces_universal_candidates(self):
        graph = complete_bipartite(3, 3)
        context = SearchContext()
        state = _fresh_state(graph)
        reduce_node(graph, state, context)
        # In a complete bipartite graph every candidate is universal, so the
        # reduction should move everything into the partial result.
        assert state.a == {0, 1, 2}
        assert state.b == {0, 1, 2}
        assert not state.ca and not state.cb
        assert context.stats.reductions_forced == 6

    def test_keeps_non_universal_candidates(self):
        graph = BipartiteGraph(edges=[(0, 0), (0, 1), (1, 0)])
        context = SearchContext()
        state = _fresh_state(graph)
        reduce_node(graph, state, context)
        # Vertex 0 (left) is adjacent to both right candidates so it is
        # forced; vertex 1 (left) misses right vertex 1 and must stay a
        # candidate (or be removed by Lemma 2 only when an incumbent exists).
        assert 0 in state.a
        assert 1 not in state.a


class TestLowDegreeRule:
    def test_removes_hopeless_candidates(self):
        # Two disjoint bicliques: a 3x3 block and a single extra edge.
        graph = BipartiteGraph()
        for u in range(3):
            for v in range(3):
                graph.add_edge(u, v)
        graph.add_edge(10, 10)
        context = SearchContext()
        context.offer([0, 1], [0, 1])  # incumbent side 2
        state = _fresh_state(graph)
        reduce_node(graph, state, context)
        # The pendant edge endpoints cannot reach side size 3: removed.
        assert 10 not in state.ca and 10 not in state.a
        assert 10 not in state.cb and 10 not in state.b

    def test_reduction_preserves_optimum(self):
        for seed in range(10):
            graph = random_bipartite(7, 7, 0.5, seed=seed)
            optimum = brute_force_side_size(graph)
            context = SearchContext()
            state = _fresh_state(graph)
            reduce_node(graph, state, context)
            # Solving the reduced instance (candidates plus forced vertices)
            # still yields the optimum.
            remaining = graph.induced_subgraph(
                state.a | state.ca, state.b | state.cb
            )
            assert brute_force_side_size(remaining) == optimum


class TestCoreReduce:
    def test_core_reduce_keeps_improving_bicliques(self):
        for seed in range(8):
            graph = random_bipartite(8, 8, 0.4, seed=seed)
            optimum = brute_force_side_size(graph)
            if optimum == 0:
                continue
            reduced = core_reduce(graph, optimum - 1)
            assert brute_force_side_size(reduced) == optimum

    def test_core_reduce_against_degeneracy(self):
        graph = random_bipartite(10, 10, 0.3, seed=3)
        best_side = degeneracy(graph)
        reduced = core_reduce(graph, best_side)
        # Nothing can have degree >= degeneracy + 1 everywhere.
        assert reduced.num_vertices == 0 or degeneracy(reduced) >= best_side + 1


class TestBitsetReductions:
    def test_bitset_state_upper_bound(self):
        state = BitNodeState(0b1, 0b0, 0b110, 0b10)
        assert state.upper_bound_side == min(3, 1)

    def test_forces_universal_candidates_like_set_kernel(self):
        graph = complete_bipartite(3, 3)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        context = SearchContext()
        state = BitNodeState(0, 0, bitgraph.all_left_mask, bitgraph.all_right_mask)
        reduce_node_bits(bitgraph, state, context)
        assert state.a == bitgraph.all_left_mask
        assert state.b == bitgraph.all_right_mask
        assert state.ca == 0 and state.cb == 0
        assert context.stats.reductions_forced == 6

    def test_agrees_with_set_reduction_on_random_instances(self):
        for seed in range(12):
            graph = random_bipartite(8, 8, 0.5, seed=seed)
            optimum = brute_force_side_size(graph)

            context = SearchContext()
            bitgraph = IndexedBitGraph.from_bipartite(graph)
            state = BitNodeState(
                0, 0, bitgraph.all_left_mask, bitgraph.all_right_mask
            )
            reduce_node_bits(bitgraph, state, context)
            remaining = graph.induced_subgraph(
                bitgraph.left_labels_of(state.a | state.ca),
                bitgraph.right_labels_of(state.b | state.cb),
            )
            # The reduced instance still contains an optimum solution.
            assert brute_force_side_size(remaining) == optimum

    def test_branch_candidate_byproduct(self):
        # Crown graph (no universal candidates, so nothing is forced or
        # removed at incumbent 0) with two extra edges deleted: left 0 then
        # misses three right vertices and is the unique triviality-last
        # branch choice; every right vertex misses at most two.
        graph = crown_graph(6)
        graph.remove_edge(0, 1)
        graph.remove_edge(0, 2)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        context = SearchContext()
        state = BitNodeState(0, 0, bitgraph.all_left_mask, bitgraph.all_right_mask)
        best_left, best_right = reduce_node_bits(bitgraph, state, context)
        assert best_right is None
        assert best_left is not None
        missing, bit, neighbours = best_left
        assert missing == 3
        assert bitgraph.left_labels_of(bit) == [0]
        assert set(bitgraph.right_labels_of(neighbours)) == {3, 4, 5}

    def test_no_branch_candidate_when_polynomially_solvable(self):
        # Crown graph: every vertex misses exactly one opposite neighbour.
        graph = crown_graph(5)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        context = SearchContext()
        state = BitNodeState(0, 0, bitgraph.all_left_mask, bitgraph.all_right_mask)
        best_left, best_right = reduce_node_bits(bitgraph, state, context)
        assert best_left is None and best_right is None
