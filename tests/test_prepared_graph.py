"""PreparedGraph bundle, CSR subgraph generator and engine cache tests."""

from __future__ import annotations

import pytest

from repro.api import (
    GraphSpec,
    MBBEngine,
    PreparedGraphCache,
    SolveRequest,
    get_backend,
)
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_bipartite, random_power_law_bipartite
from repro.graph.prepared import PreparedGraph, graph_fingerprint
from repro.cores.bicore import (
    ALL_IMPLS,
    bicore_decomposition,
    bidegeneracy_order,
)
from repro.cores.orders import ALL_ORDERS, ORDER_BIDEGENERACY, search_order
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.sparse import hbv_mbb
from repro.mbb.vertex_centred import (
    iter_vertex_centred_subgraphs,
    iter_vertex_centred_subgraphs_csr,
    subgraph_density_profile,
    total_subgraph_size,
)


def mixed_label_graph(seed: int) -> BipartiteGraph:
    """A graph mixing int and str labels (and sharing labels across sides)."""
    base = random_bipartite(7, 7, 0.4, seed=seed)
    graph = BipartiteGraph()
    for u, v in base.edges():
        left = u if u % 2 == 0 else f"u{u}"
        right = v if v % 2 == 1 else f"v{v}"
        graph.add_edge(left, right)
    graph.add_left_vertex("lonely", exist_ok=True)
    graph.add_right_vertex(3, exist_ok=True)
    return graph


class TestPreparedGraph:
    def test_orders_match_unprepared_computation(self):
        for seed in range(4):
            graph = random_bipartite(9, 8, 0.35, seed=seed)
            prepared = PreparedGraph.prepare(graph)
            for order_name in ALL_ORDERS:
                assert prepared.search_order(order_name) == search_order(
                    graph, order_name
                )

    def test_orders_are_memoised(self):
        prepared = PreparedGraph.prepare(random_bipartite(6, 6, 0.5, seed=1))
        for order_name in ALL_ORDERS:
            assert prepared.search_order(order_name) is prepared.search_order(
                order_name
            )

    def test_search_order_prepared_delegation_returns_safe_copies(self):
        graph = random_bipartite(8, 8, 0.4, seed=2)
        prepared = PreparedGraph.prepare(graph)
        for order_name in ALL_ORDERS:
            public = search_order(graph, order_name, prepared=prepared)
            memoised = prepared.search_order(order_name)
            assert public == memoised
            # The public wrapper hands out a copy: mutating it must not
            # corrupt the snapshot (which outlives the call in the
            # engine cache).
            assert public is not memoised
            public.reverse()
            assert prepared.search_order(order_name) == memoised

    def test_cores_apis_reject_foreign_snapshot(self):
        graph = random_bipartite(8, 8, 0.4, seed=1)
        foreign = PreparedGraph.prepare(random_bipartite(6, 6, 0.4, seed=2))
        with pytest.raises(InvalidParameterError):
            bicore_decomposition(graph, prepared=foreign)
        with pytest.raises(InvalidParameterError):
            search_order(graph, ORDER_BIDEGENERACY, prepared=foreign)
        order = search_order(graph, ORDER_BIDEGENERACY)
        with pytest.raises(InvalidParameterError):
            total_subgraph_size(graph, order, prepared=foreign)
        with pytest.raises(InvalidParameterError):
            subgraph_density_profile(graph, order, prepared=foreign)

    def test_unknown_order_rejected(self):
        prepared = PreparedGraph.prepare(random_bipartite(4, 4, 0.5, seed=3))
        with pytest.raises(InvalidParameterError):
            prepared.search_order("zigzag")
        with pytest.raises(InvalidParameterError):
            search_order(prepared.graph, "zigzag", prepared=prepared)

    def test_bicore_decomposition_reuses_snapshot(self):
        graph = mixed_label_graph(seed=4)
        prepared = PreparedGraph.prepare(graph)
        plain = bicore_decomposition(graph)
        via_prepared = bicore_decomposition(graph, prepared=prepared)
        assert via_prepared == plain
        # The bundle memoises the decomposition; the public wrapper
        # hands out copies of it, so caller mutation cannot corrupt the
        # snapshot.
        assert (
            prepared.bicore_decomposition()
            is prepared.bicore_decomposition()
        )
        via_prepared[1].clear()
        assert bicore_decomposition(graph, prepared=prepared) == plain
        for impl in ALL_IMPLS:
            assert (
                bidegeneracy_order(graph, impl=impl, prepared=prepared)
                == plain[1]
            )

    def test_for_subgraph_returns_self_on_identical_shape(self):
        graph = random_bipartite(8, 8, 0.4, seed=5)
        prepared = PreparedGraph.prepare(graph)
        assert prepared.for_subgraph(graph.copy()) is prepared

    def test_for_subgraph_prepares_and_memoises_residuals(self):
        graph = random_bipartite(10, 10, 0.4, seed=6)
        prepared = PreparedGraph.prepare(graph)
        from repro.cores.core import k_core

        residual = k_core(graph, 2)
        assert residual.num_vertices < graph.num_vertices
        child = prepared.for_subgraph(residual)
        assert child is not prepared
        assert child.graph == residual
        # A content-equal residual from a later solve reuses the child.
        assert prepared.for_subgraph(k_core(graph, 2)) is child

    def test_for_subgraph_rejects_content_mismatch_same_shape(self):
        # A same-shape but different-content graph must not reuse the
        # memoised child (the equality check must fire).
        graph = BipartiteGraph(edges=[(1, "a"), (2, "b"), (3, "c")])
        prepared = PreparedGraph.prepare(graph)
        first = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        other = BipartiteGraph(edges=[(1, "a"), (3, "c")])
        child = prepared.for_subgraph(first)
        mismatched = prepared.for_subgraph(other)
        assert mismatched is not child
        assert mismatched.graph == other


class TestFingerprint:
    def test_insertion_order_invariance(self):
        edges = [(1, "a"), (2, "b"), (1, "b"), (3, "a")]
        forward = BipartiteGraph(edges=edges)
        backward = BipartiteGraph(edges=list(reversed(edges)))
        assert forward == backward
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_content_differences_change_the_digest(self):
        base = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        fewer = BipartiteGraph(edges=[(1, "a")])
        extra_vertex = BipartiteGraph(edges=[(1, "a"), (2, "b")])
        extra_vertex.add_left_vertex(9)
        swapped = BipartiteGraph(edges=[(1, "b"), (2, "a")])
        digests = {
            graph_fingerprint(g)
            for g in (base, fewer, extra_vertex, swapped)
        }
        assert len(digests) == 4

    def test_mixed_label_types_fingerprint(self):
        a = mixed_label_graph(seed=7)
        b = mixed_label_graph(seed=7)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(mixed_label_graph(seed=8))


class TestCrossGeneratorProperty:
    @pytest.mark.parametrize("order_name", ALL_ORDERS)
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, order_name, seed):
        graph = random_bipartite(11, 9, 0.35, seed=seed)
        self._assert_identical_families(graph, order_name)

    @pytest.mark.parametrize("order_name", ALL_ORDERS)
    @pytest.mark.parametrize("seed", range(3))
    def test_power_law_graphs(self, order_name, seed):
        graph = random_power_law_bipartite(30, 30, 3.0, seed=seed)
        self._assert_identical_families(graph, order_name)

    @pytest.mark.parametrize("order_name", ALL_ORDERS)
    @pytest.mark.parametrize("seed", range(3))
    def test_mixed_label_graphs(self, order_name, seed):
        self._assert_identical_families(mixed_label_graph(seed), order_name)

    @staticmethod
    def _assert_identical_families(graph, order_name):
        prepared = PreparedGraph.prepare(graph)
        order = search_order(graph, order_name)
        label_family = list(iter_vertex_centred_subgraphs(graph, order))
        csr_family = list(iter_vertex_centred_subgraphs_csr(prepared, order))
        assert len(label_family) == len(csr_family) == graph.num_vertices
        for expected, actual in zip(label_family, csr_family, strict=True):
            assert actual.center == expected.center
            assert actual.position == expected.position
            assert actual.left_members == expected.left_members
            assert actual.right_members == expected.right_members

    def test_profiles_share_one_snapshot(self):
        graph = random_bipartite(10, 10, 0.3, seed=9)
        prepared = PreparedGraph.prepare(graph)
        order = search_order(graph, ORDER_BIDEGENERACY)
        labelled = list(iter_vertex_centred_subgraphs(graph, order))
        assert total_subgraph_size(graph, order, prepared=prepared) == sum(
            sub.size for sub in labelled
        )
        expected_profile = [
            sub.density
            for sub in labelled
            if sub.num_left and sub.num_right and sub.density > 0.0
        ]
        assert (
            subgraph_density_profile(graph, order, prepared=prepared)
            == expected_profile
        )


class TestBridgePrepared:
    def test_bridge_kernels_agree_from_one_snapshot(self):
        for seed in range(4):
            graph = random_power_law_bipartite(25, 25, 3.0, seed=seed)
            prepared = PreparedGraph.prepare(graph)
            order = prepared.search_order(ORDER_BIDEGENERACY)
            outcomes = {}
            for kernel in ("bits", "sets"):
                context = SearchContext()
                outcomes[kernel] = bridge_mbb(
                    graph,
                    context,
                    kernel=kernel,
                    total_order=order,
                    prepared=prepared,
                )
            bits, sets_ = outcomes["bits"], outcomes["sets"]
            assert [s.center for s in bits.surviving] == [
                s.center for s in sets_.surviving
            ]
            assert bits.best.side_size == sets_.best.side_size

    def test_bridge_rejects_mismatched_snapshot(self):
        graph = random_bipartite(8, 8, 0.4, seed=1)
        other = random_bipartite(6, 6, 0.4, seed=2)
        with pytest.raises(InvalidParameterError):
            bridge_mbb(
                graph,
                SearchContext(),
                prepared=PreparedGraph.prepare(other),
            )

    def test_bridge_rejects_same_shape_different_content_snapshot(self):
        # Same labels, same |E|, different edges: shape comparison alone
        # would wave this through and solve the wrong graph.
        graph = BipartiteGraph(edges=[(1, "a"), (2, "b"), (3, "c")])
        imposter = BipartiteGraph(edges=[(1, "b"), (2, "c"), (3, "a")])
        with pytest.raises(InvalidParameterError):
            bridge_mbb(
                graph,
                SearchContext(),
                prepared=PreparedGraph.prepare(imposter),
            )

    def test_hbv_rejects_foreign_snapshot(self):
        graph = random_bipartite(8, 8, 0.4, seed=3)
        other = random_bipartite(8, 8, 0.4, seed=4)
        with pytest.raises(InvalidParameterError):
            hbv_mbb(graph, prepared=PreparedGraph.prepare(other))

    def test_hbv_accepts_content_equal_snapshot_object(self):
        graph = random_bipartite(8, 8, 0.4, seed=5)
        prepared = PreparedGraph.prepare(graph.copy())
        assert (
            hbv_mbb(graph, prepared=prepared).side_size
            == hbv_mbb(graph).side_size
        )

    def test_hbv_accepts_prepared(self):
        for seed in range(3):
            graph = random_power_law_bipartite(30, 30, 3.0, seed=seed)
            plain = hbv_mbb(graph)
            prepped = hbv_mbb(graph, prepared=PreparedGraph.prepare(graph))
            assert prepped.side_size == plain.side_size
            assert prepped.biclique == plain.biclique


class TestPreparedGraphCache:
    def test_hit_returns_same_bundle(self):
        cache = PreparedGraphCache()
        graph = random_bipartite(8, 8, 0.5, seed=1)
        first, hit_first = cache.get(graph)
        second, hit_second = cache.get(graph.copy())
        assert not hit_first and hit_second
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_graphs_get_distinct_bundles(self):
        cache = PreparedGraphCache()
        a, _ = cache.get(random_bipartite(8, 8, 0.5, seed=1))
        b, _ = cache.get(random_bipartite(8, 8, 0.5, seed=2))
        assert a is not b
        assert a.graph != b.graph
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PreparedGraphCache(capacity=2)
        graphs = [random_bipartite(6, 6, 0.5, seed=s) for s in range(3)]
        first, _ = cache.get(graphs[0])
        cache.get(graphs[1])
        cache.get(graphs[2])  # evicts graphs[0]
        assert len(cache) == 2
        again, hit = cache.get(graphs[0])
        assert not hit and again is not first

    def test_lru_recency_is_updated_on_hit(self):
        cache = PreparedGraphCache(capacity=2)
        graphs = [random_bipartite(6, 6, 0.5, seed=s) for s in range(3)]
        kept, _ = cache.get(graphs[0])
        cache.get(graphs[1])
        cache.get(graphs[0])  # refresh recency: graphs[1] is now oldest
        cache.get(graphs[2])  # evicts graphs[1], not graphs[0]
        again, hit = cache.get(graphs[0])
        assert hit and again is kept

    def test_fingerprint_collision_never_leaks_state(self, monkeypatch):
        # Force every graph onto one cache key: the equality re-check
        # must detect the mismatch, re-prepare, and keep results correct.
        import repro.api.engine as engine_module

        monkeypatch.setattr(
            engine_module, "graph_fingerprint", lambda graph: "collision"
        )
        cache = PreparedGraphCache()
        graph_a = random_bipartite(8, 8, 0.5, seed=1)
        graph_b = random_bipartite(9, 7, 0.4, seed=2)
        prepared_a, hit_a = cache.get(graph_a)
        prepared_b, hit_b = cache.get(graph_b)
        assert not hit_a and not hit_b
        assert prepared_a.graph == graph_a
        assert prepared_b.graph == graph_b
        assert len(cache) == 1  # b overwrote the colliding entry
        # A re-request of the overwritten graph re-prepares, again
        # without leaking b's arrays.
        prepared_a2, hit_a2 = cache.get(graph_a)
        assert not hit_a2
        assert prepared_a2.graph == graph_a

    def test_invalid_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            PreparedGraphCache(capacity=0)


class TestEngineCacheIntegration:
    def _request(self, seed=3):
        return SolveRequest(
            graph=GraphSpec.power_law(40, 40, 3.0, seed=seed), backend="sparse"
        )

    def test_second_solve_hits_cache_with_near_zero_prepare(self):
        engine = MBBEngine(prepared_cache=PreparedGraphCache())
        cold = engine.solve(self._request())
        warm = engine.solve(self._request())
        assert cold.stats["prepared_cache_misses"] == 1
        assert cold.stats["prepared_cache_hits"] == 0
        assert warm.stats["prepared_cache_hits"] == 1
        assert warm.stats["prepared_cache_misses"] == 0
        # The memoised snapshot makes the warm solve's order free (only
        # the timer probe remains) and its prepare cost a cache probe.
        assert warm.stats["order_seconds"] < 0.005
        assert warm.stats["prepare_seconds"] < 0.05
        assert warm.side_size == cold.side_size
        assert warm.left == cold.left and warm.right == cold.right

    def test_cache_does_not_leak_across_graphs(self):
        engine = MBBEngine(prepared_cache=PreparedGraphCache())
        reports = [
            engine.solve(self._request(seed)).side_size for seed in (1, 2, 1, 2)
        ]
        fresh = MBBEngine(prepared_cache=PreparedGraphCache())
        expected = [
            fresh.solve(self._request(seed)).side_size for seed in (1, 2)
        ]
        assert reports == [expected[0], expected[1], expected[0], expected[1]]

    def test_dense_backend_skips_the_cache(self):
        cache = PreparedGraphCache()
        engine = MBBEngine(prepared_cache=cache)
        report = engine.solve(
            SolveRequest(
                graph=GraphSpec.random(8, 8, 0.8, seed=1), backend="dense"
            )
        )
        assert report.stats["prepared_cache_hits"] == 0
        assert report.stats["prepared_cache_misses"] == 0
        assert len(cache) == 0

    def test_auto_resolving_dense_skips_the_cache(self):
        cache = PreparedGraphCache()
        engine = MBBEngine(prepared_cache=cache)
        report = engine.solve(
            SolveRequest(
                graph=GraphSpec.random(8, 8, 0.8, seed=1), backend="auto"
            )
        )
        assert report.backend == "dense"
        assert len(cache) == 0

    def test_supports_prepared_capability_is_declared(self):
        assert get_backend("sparse").info.supports_prepared
        assert get_backend("auto").info.supports_prepared
        assert not get_backend("dense").info.supports_prepared
