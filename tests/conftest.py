"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    grid_union_of_bicliques,
    random_bipartite,
)


@pytest.fixture
def empty_graph() -> BipartiteGraph:
    """A graph with no vertices at all."""
    return BipartiteGraph()


@pytest.fixture
def single_edge() -> BipartiteGraph:
    """The smallest non-trivial bipartite graph: one edge."""
    return BipartiteGraph(edges=[(0, 0)])


@pytest.fixture
def k33() -> BipartiteGraph:
    """The complete bipartite graph K_{3,3}."""
    return complete_bipartite(3, 3)


@pytest.fixture
def crown6() -> BipartiteGraph:
    """The crown graph on 6+6 vertices (K_{6,6} minus a perfect matching)."""
    return crown_graph(6)


@pytest.fixture
def two_blocks() -> BipartiteGraph:
    """Disjoint union of a 3x3 and a 2x2 complete biclique (optimum side 3)."""
    return grid_union_of_bicliques([3, 2])


@pytest.fixture
def paper_example_sparse() -> BipartiteGraph:
    """A small sparse graph in the spirit of the paper's Figure 1(b).

    Left vertices 1-6, right vertices 7-12; the maximum balanced biclique is
    ({3, 4}, {9, 10}) with side size 2 (plus a few pendant structures).
    """
    edges = [
        (1, 7),
        (2, 7),
        (2, 8),
        (3, 8),
        (3, 9),
        (3, 10),
        (4, 9),
        (4, 10),
        (5, 9),
        (5, 10),
        (6, 8),
        (6, 11),
        (1, 12),
    ]
    return BipartiteGraph(edges=edges)


def random_graph(seed: int, max_side: int = 10, densities=(0.15, 0.3, 0.5, 0.7, 0.9)) -> BipartiteGraph:
    """Deterministic small random graph used by comparison tests."""
    rng = random.Random(seed)
    n_left = rng.randint(1, max_side)
    n_right = rng.randint(1, max_side)
    density = rng.choice(densities)
    return random_bipartite(n_left, n_right, density, seed=seed)


@pytest.fixture
def random_graph_factory():
    """Factory fixture returning deterministic small random graphs."""
    return random_graph
