"""Backend registry tests: registration semantics and cross-backend parity."""

from __future__ import annotations

import pytest

from repro.api import (
    BackendInfo,
    FunctionBackend,
    available_backends,
    backend_infos,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.baselines.brute_force import MAX_ORACLE_SIDE
from repro.exceptions import InvalidParameterError
from repro.graph.generators import random_bipartite
from repro.mbb.basic_bb import basic_bb
from repro.mbb.context import SearchContext

#: Every built-in backend expected in the registry.
BUILTIN_BACKENDS = {
    "auto",
    "dense",
    "sparse",
    "basic",
    "size-constrained",
    "brute_force",
    "extbbclq",
    "mbe",
    "adp1",
    "adp2",
    "adp3",
    "adp4",
    "mvb",
    "local_search",
}


class TestRegistry:
    def test_builtins_are_registered(self):
        assert BUILTIN_BACKENDS <= set(available_backends())

    def test_names_are_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)

    def test_get_unknown_backend_raises(self):
        with pytest.raises(InvalidParameterError):
            get_backend("quantum-annealer")

    def test_infos_cover_every_backend(self):
        infos = backend_infos()
        assert {info.name for info in infos} == set(available_backends())
        for info in infos:
            assert isinstance(info.description, str)
            payload = info.to_dict()
            assert payload["name"] == info.name

    def test_register_and_unregister_custom_backend(self):
        def run(graph, context, *, kernel, seed):
            return basic_bb(graph, context=context)

        backend = FunctionBackend(
            BackendInfo(name="test-custom", description="test"), run
        )
        try:
            register_backend(backend)
            assert "test-custom" in available_backends()
            assert get_backend("test-custom") is backend
            with pytest.raises(InvalidParameterError):
                register_backend(backend)  # duplicate without replace
            register_backend(backend, replace=True)  # replace allowed
        finally:
            unregister_backend("test-custom")
        assert "test-custom" not in available_backends()

    def test_empty_name_rejected(self):
        backend = FunctionBackend(BackendInfo(name=""), lambda *a, **k: None)
        with pytest.raises(InvalidParameterError):
            register_backend(backend)


class TestExactBackendParity:
    """Every registered exact backend agrees with basic_bb on random graphs."""

    def _exact_backends(self):
        return [
            info.name
            for info in backend_infos()
            if info.exact and info.name != "basic"
        ]

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_backends_match_basic_bb(self, seed):
        graph = random_bipartite(6 + seed % 3, 6 + (seed + 1) % 3, 0.5, seed=seed)
        assert min(graph.num_left, graph.num_right) <= MAX_ORACLE_SIDE
        expected = basic_bb(graph).side_size
        for name in self._exact_backends():
            backend = get_backend(name)
            context = SearchContext()
            result = backend.run(graph, context, kernel="bits", seed=0)
            assert result.side_size == expected, (name, seed)
            assert result.optimal, (name, seed)
            assert result.biclique.is_valid_in(graph), (name, seed)
            assert result.biclique.is_balanced, (name, seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_heuristic_backends_return_valid_bicliques(self, seed):
        graph = random_bipartite(8, 8, 0.5, seed=100 + seed)
        upper = basic_bb(graph).side_size
        for name in ("mvb", "local_search"):
            result = get_backend(name).run(
                graph, SearchContext(), kernel="bits", seed=seed
            )
            assert not result.optimal
            assert result.biclique.is_valid_in(graph)
            assert result.side_size <= upper
