"""Algorithm 1: the basic branch-and-bound enumeration (``basicBB``).

This is the plain ``O*(2^n)`` enumeration scheme the paper starts from: a
binary search tree that, at every node, either commits a candidate vertex
to the growing biclique (filtering the opposite candidate set down to the
vertex's neighbours) or discards it.  The near-balanced growth and the
simple bounding condition are included; none of the dense-graph machinery
(reductions, polynomial cases, triviality-last branching) is.

``basicBB`` is retained both as a baseline for the ablation experiments and
as a simple, easily-auditable reference solver used in tests to validate
the optimised algorithms.
"""

from __future__ import annotations

from typing import Optional, Set

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.bounds import is_bounded, offer_completions
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.result import MBBResult


def _pick_candidate(graph: BipartiteGraph, ca: Set[Vertex], cb: Set[Vertex], a: Set[Vertex], b: Set[Vertex]):
    """Pick the next vertex to branch on, preferring the lagging side.

    Growing the smaller side first keeps the enumerated bicliques nearly
    balanced (the property Algorithm 1 obtains by swapping the set pairs in
    its recursive calls).
    """
    prefer_left = len(a) <= len(b)
    if prefer_left and ca:
        return "L", max(ca, key=lambda u: (len(graph.neighbors_left(u) & cb), repr(u)))
    if cb:
        return "R", max(cb, key=lambda v: (len(graph.neighbors_right(v) & ca), repr(v)))
    if ca:
        return "L", max(ca, key=lambda u: (len(graph.neighbors_left(u) & cb), repr(u)))
    return None, None


def _basic_bb(
    graph: BipartiteGraph,
    context: SearchContext,
    a: Set[Vertex],
    b: Set[Vertex],
    ca: Set[Vertex],
    cb: Set[Vertex],
    depth: int,
) -> None:
    context.enter_node(depth)
    if is_bounded(context, len(a), len(b), len(ca), len(cb)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return

    offer_completions(context, a, b, ca, cb)
    if not ca or not cb:
        # Whatever remains can only extend one side; the completions above
        # already captured the best achievable result of this subtree.
        context.record_leaf(depth)
        return

    side, vertex = _pick_candidate(graph, ca, cb, a, b)
    if vertex is None:
        context.record_leaf(depth)
        return

    if side == "L":
        include_cb = cb & graph.neighbors_left(vertex)
        _basic_bb(
            graph, context, a | {vertex}, b, ca - {vertex}, include_cb, depth + 1
        )
        _basic_bb(graph, context, a, b, ca - {vertex}, cb, depth + 1)
    else:
        include_ca = ca & graph.neighbors_right(vertex)
        _basic_bb(
            graph, context, a, b | {vertex}, include_ca, cb - {vertex}, depth + 1
        )
        _basic_bb(graph, context, a, b, ca, cb - {vertex}, depth + 1)


def basic_bb(
    graph: BipartiteGraph,
    *,
    context: Optional[SearchContext] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Find a maximum balanced biclique with the basic enumeration.

    Parameters
    ----------
    graph:
        The bipartite graph to search.
    context:
        Optional pre-seeded :class:`SearchContext` (e.g. carrying an
        incumbent from a heuristic); a fresh one is created by default.
    node_budget, time_budget:
        Optional budgets; when either is exhausted the best result found so
        far is returned with ``optimal=False``.
    """
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    optimal = True
    try:
        _basic_bb(graph, context, set(), set(), graph.left, graph.right, 0)
    except SearchAborted:
        optimal = False
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )
