"""Tests for the size-constrained (a, b) biclique problem."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    grid_union_of_bicliques,
    random_bipartite,
    star_bipartite,
)
from repro.graph.validation import is_biclique
from repro.mbb.size_constrained import (
    balanced_side_from_profile,
    find_biclique_of_size,
    has_biclique_of_size,
    maximal_biclique_profile,
    size_constrained_mbb,
)
from repro.baselines.brute_force import brute_force_side_size


class TestFindBicliqueOfSize:
    def test_zero_targets_always_satisfiable(self):
        assert find_biclique_of_size(BipartiteGraph(), 0, 0) is not None

    def test_targets_larger_than_sides_fail_fast(self):
        graph = complete_bipartite(3, 3)
        assert find_biclique_of_size(graph, 4, 1) is None
        assert find_biclique_of_size(graph, 1, 4) is None

    def test_negative_targets_raise(self):
        with pytest.raises(InvalidParameterError):
            find_biclique_of_size(complete_bipartite(2, 2), -1, 0)

    def test_complete_graph_all_feasible_pairs(self):
        graph = complete_bipartite(3, 4)
        for a in range(0, 4):
            for b in range(0, 5):
                witness = find_biclique_of_size(graph, a, b)
                assert witness is not None
                assert len(witness.left) >= a and len(witness.right) >= b
                assert is_biclique(graph, witness.left, witness.right)

    def test_star_graph(self):
        graph = star_bipartite(4)
        assert has_biclique_of_size(graph, 1, 4)
        assert not has_biclique_of_size(graph, 2, 1)

    def test_crown_graph_asymmetric_instances(self):
        graph = crown_graph(4)
        # Any 1 left vertex is adjacent to 3 right vertices.
        assert has_biclique_of_size(graph, 1, 3)
        assert not has_biclique_of_size(graph, 1, 4)
        # Balanced (2, 2) exists, (3, 3) does not (complement matching).
        assert has_biclique_of_size(graph, 2, 2)
        assert not has_biclique_of_size(graph, 3, 3)

    @pytest.mark.parametrize("seed", range(8))
    def test_consistency_with_mbb_oracle(self, seed):
        graph = random_bipartite(7, 7, 0.5, seed=seed)
        optimum = brute_force_side_size(graph)
        assert has_biclique_of_size(graph, optimum, optimum) or optimum == 0
        assert not has_biclique_of_size(graph, optimum + 1, optimum + 1)

    def test_witness_is_a_real_biclique(self):
        graph = grid_union_of_bicliques([3, 2], noise_edges=3, seed=1)
        witness = find_biclique_of_size(graph, 2, 3)
        if witness is not None:
            assert is_biclique(graph, witness.left, witness.right)

    def test_budget_returns_none(self):
        graph = random_bipartite(15, 15, 0.5, seed=2)
        assert find_biclique_of_size(graph, 6, 6, node_budget=1) is None

    def test_unknown_kernel_raises(self):
        with pytest.raises(InvalidParameterError):
            find_biclique_of_size(complete_bipartite(3, 3), 2, 2, kernel="quantum")


class TestKernelAgreement:
    """The bitset padding reduction and the set search decide identically."""

    @pytest.mark.parametrize("seed", range(10))
    def test_kernels_agree_on_random_instances(self, seed):
        graph = random_bipartite(6, 7, 0.5, seed=seed)
        for a in range(0, 6):
            for b in range(0, 6):
                bits = find_biclique_of_size(graph, a, b, kernel="bits")
                sets = find_biclique_of_size(graph, a, b, kernel="sets")
                assert (bits is None) == (sets is None), (seed, a, b)
                if bits is not None:
                    assert len(bits.left) >= a and len(bits.right) >= b
                    assert is_biclique(graph, bits.left, bits.right)

    @pytest.mark.parametrize("seed", range(5))
    def test_profiles_agree_across_kernels(self, seed):
        graph = random_bipartite(5, 6, 0.5, seed=40 + seed)
        assert maximal_biclique_profile(graph, kernel="bits") == (
            maximal_biclique_profile(graph, kernel="sets")
        )

    def test_asymmetric_padding_both_directions(self):
        graph = star_bipartite(4)
        # b > a exercises left-side padding, a > b right-side padding.
        assert has_biclique_of_size(graph, 1, 4, kernel="bits")
        assert not has_biclique_of_size(graph, 2, 1, kernel="bits")
        wide = crown_graph(5)
        assert has_biclique_of_size(wide, 4, 1, kernel="bits")
        assert not has_biclique_of_size(wide, 5, 1, kernel="bits")


class TestSizeConstrainedMBB:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle(self, seed):
        graph = random_bipartite(7, 7, 0.5, seed=seed)
        result = size_constrained_mbb(graph)
        assert result.optimal
        assert result.side_size == brute_force_side_size(graph)
        assert result.biclique.is_valid_in(graph)
        assert result.biclique.is_balanced

    def test_set_kernel_matches_bits(self):
        graph = random_bipartite(8, 8, 0.6, seed=3)
        bits = size_constrained_mbb(graph, kernel="bits")
        sets = size_constrained_mbb(graph, kernel="sets")
        assert bits.side_size == sets.side_size

    def test_budget_marks_result_non_optimal(self):
        graph = random_bipartite(15, 15, 0.5, seed=4)
        result = size_constrained_mbb(graph, node_budget=2)
        assert not result.optimal

    def test_empty_graph(self):
        result = size_constrained_mbb(BipartiteGraph())
        assert result.optimal and result.side_size == 0


class TestMaximalBicliqueProfile:
    def test_complete_graph_profile(self):
        graph = complete_bipartite(2, 3)
        profile = maximal_biclique_profile(graph)
        assert (2, 3) in profile
        # In a complete graph the only Pareto-maximal pair is the full one.
        assert profile == [(2, 3)]

    def test_star_graph_profile(self):
        graph = star_bipartite(3)
        profile = maximal_biclique_profile(graph)
        assert (1, 3) in profile
        assert all(b <= 3 for _, b in profile)

    def test_profile_is_pareto(self):
        graph = grid_union_of_bicliques([3, 1])
        profile = maximal_biclique_profile(graph)
        for i, (a1, b1) in enumerate(profile):
            for j, (a2, b2) in enumerate(profile):
                if i != j:
                    assert not (a1 <= a2 and b1 <= b2), profile

    @pytest.mark.parametrize("seed", range(5))
    def test_balanced_side_from_profile_matches_mbb(self, seed):
        graph = random_bipartite(6, 6, 0.5, seed=seed)
        profile = maximal_biclique_profile(graph)
        assert balanced_side_from_profile(profile) == brute_force_side_size(graph)

    def test_max_side_cap(self):
        graph = complete_bipartite(5, 5)
        profile = maximal_biclique_profile(graph, max_side=2)
        assert all(a <= 2 and b <= 2 for a, b in profile)
