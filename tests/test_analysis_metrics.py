"""Tests for the breakdown metrics behind Figures 4-6."""

from __future__ import annotations

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    planted_balanced_biclique,
    random_power_law_bipartite,
)
from repro.cores.orders import ORDER_BIDEGENERACY, ORDER_DEGENERACY, ORDER_DEGREE
from repro.analysis.metrics import (
    HeuristicGap,
    average_subgraph_density,
    heuristic_gaps,
    search_depth_ratio,
    subgraph_size_totals,
)


class TestSubgraphDensity:
    def test_densities_for_all_orders(self):
        graph = random_power_law_bipartite(60, 60, 3.0, seed=1)
        densities = average_subgraph_density(graph)
        assert set(densities) == {ORDER_DEGREE, ORDER_DEGENERACY, ORDER_BIDEGENERACY}
        assert all(0.0 <= value <= 1.0 for value in densities.values())

    def test_bidegeneracy_gives_densest_subgraphs_on_skewed_graph(self):
        graph = random_power_law_bipartite(150, 150, 3.0, seed=2)
        densities = average_subgraph_density(graph)
        assert densities[ORDER_BIDEGENERACY] >= densities[ORDER_DEGREE]

    def test_empty_graph(self):
        densities = average_subgraph_density(BipartiteGraph())
        assert all(value == 0.0 for value in densities.values())


class TestSubgraphSizeTotals:
    def test_totals_positive_and_lemma8_bound(self):
        from repro.cores.bicore import bidegeneracy

        graph = random_power_law_bipartite(100, 100, 3.0, seed=3)
        totals = subgraph_size_totals(graph)
        assert all(total >= graph.num_vertices for total in totals.values())
        # Lemma 8: the bidegeneracy order bounds the family size by
        # (|L|+|R|) * (bidegeneracy + 1).
        assert totals[ORDER_BIDEGENERACY] <= graph.num_vertices * (
            bidegeneracy(graph) + 1
        )


class TestSearchDepthRatio:
    def test_ratios_are_non_negative_and_small(self):
        graph = planted_balanced_biclique(40, 40, 5, background_density=0.03, seed=4)
        ratios = search_depth_ratio(graph)
        assert set(ratios) == {ORDER_DEGREE, ORDER_DEGENERACY, ORDER_BIDEGENERACY}
        assert all(value >= 0.0 for value in ratios.values())

    def test_empty_graph_returns_zeros(self):
        ratios = search_depth_ratio(BipartiteGraph())
        assert all(value == 0.0 for value in ratios.values())


class TestHeuristicGaps:
    def test_gap_dataclass_arithmetic(self):
        gap = HeuristicGap(optimum=7, global_heuristic=5, local_heuristic=7)
        assert gap.gap_global == 2
        assert gap.gap_local == 0

    def test_gaps_on_planted_graph(self):
        graph = planted_balanced_biclique(40, 40, 6, background_density=0.02, seed=5)
        gap = heuristic_gaps(graph)
        assert gap.optimum >= 6
        assert 0 <= gap.gap_local <= gap.gap_global

    def test_gap_zero_on_complete_graph(self):
        gap = heuristic_gaps(complete_bipartite(6, 6))
        assert gap.optimum == 6
        assert gap.gap_global == 0
        assert gap.gap_local == 0

    def test_supplied_optimum_is_used(self):
        graph = complete_bipartite(3, 3)
        gap = heuristic_gaps(graph, optimum=10)
        assert gap.optimum == 10
        assert gap.gap_global == 7
