"""Algorithm 8: ``verifyMBB`` — maximality verification.

The verification stage receives the vertex-centred subgraphs that survived
the bridging stage and proves (or improves) the incumbent by running the
dense-graph solver on each of them, with the centre vertex forced into the
result.  The subgraphs are first shrunk to their ``(best_side + 1)``-core
(Lemma 4 again, now with the possibly improved incumbent).

With the default :data:`~repro.mbb.dense.KERNEL_BITS` kernel each centred
subgraph arrives with the :class:`~repro.graph.bitset.IndexedBitGraph` the
bridging stage already built and cached on it, so no re-conversion happens
here; the core reduction is applied as a pair of vertex masks
(:func:`~repro.graph.bitset.k_core_masks`) and the exhaustive search runs
on bitmasks, so this stage never materialises additional
``BipartiteGraph`` copies.  The :data:`~repro.mbb.dense.KERNEL_SETS` path
preserves the original behaviour for ablations.

Because the surviving subgraphs are small (bounded by the bidegeneracy) and
dense, the exhaustive step behaves near-polynomially in practice, which is
the crux of the paper's ``O*(1.3803^δ̈)`` claim.

**Scheduling.**  Survivors are searched hardest-first — descending
min-side bound, positions breaking ties — in both execution modes: the
subgraphs most likely to improve the incumbent (and the slowest to
search) go first, so the early-incumbent effect prunes the long tail and
parallel stragglers start before the cheap work.

**Parallel execution.**  The stage can fan the survivors over a process
pool with a shared incumbent.  The machinery lives in the service layer
(``repro.api.parallel`` — pools, shared memory and
``multiprocessing.Value`` have no place in a kernel module) and installs
itself through :func:`register_parallel_verifier`, the same dependency
inversion ``repro.mbb.solver``/``repro.api.engine`` use for the layering
contract (reprolint RPL007).  :func:`verify_mbb` dispatches to it when
the caller passes :class:`ParallelVerifyOptions`; any decline or partial
failure degrades to the serial loop below, which is the source of truth
for what the stage computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.graph.bipartite import LEFT
from repro.graph.bitset import k_core_masks
from repro.graph.prepared import PreparedGraph
from repro.cores.core import k_core
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.dense import (
    BRANCH_TRIVIALITY_LAST,
    KERNEL_BITS,
    KERNEL_SETS,
    dense_mbb_on_bitgraph,
    dense_mbb_on_sets,
)
from repro.mbb.result import Biclique
from repro.mbb.vertex_centred import VertexCentredSubgraph


@dataclass(frozen=True)
class ParallelVerifyOptions:
    """How the verification stage may fan out over a process pool.

    ``workers``
        Worker processes (``None`` = one per CPU).  Values below 2 make
        parallel dispatch pointless; the verifier declines and the stage
        runs serially.
    ``threshold``
        Minimum number of surviving subgraphs before dispatch pays for
        the pool round trip; smaller families run serially.
    ``strict``
        Reproducible-witness mode: every task searches from the floor
        the stage *started* with (no mid-flight broadcasts) and results
        are applied in subgraph order, so the final witness is identical
        across runs and worker counts.  The default mode broadcasts
        improvements as they land — same final incumbent *size*, but the
        witness may vary with scheduling.
    ``max_pool_rebuilds``
        Bounded recovery from worker deaths (``BrokenProcessPool``),
        mirroring :class:`repro.api.engine.RetryPolicy`; once exhausted
        the unfinished subgraphs degrade to the serial path.
    """

    workers: Optional[int] = None
    threshold: int = 4
    strict: bool = False
    max_pool_rebuilds: int = 2


#: Parallel verifier installed by the service layer (see module docstring).
#: Signature: ``fn(ordered_subgraphs, context, *, branching,
#: use_core_pruning, kernel, prepared, order_name, options) -> bool`` —
#: ``True`` when the stage was fully handled (including any internal
#: serial degradation), ``False`` to decline so the serial loop runs.
_PARALLEL_VERIFIER: Optional[Callable[..., bool]] = None


def register_parallel_verifier(verifier: Optional[Callable[..., bool]]) -> None:
    """Install (or, with ``None``, remove) the parallel S3 verifier."""
    global _PARALLEL_VERIFIER
    _PARALLEL_VERIFIER = verifier


def subgraph_hardness(sub: VertexCentredSubgraph) -> Tuple[int, int]:
    """Sort key: descending min-side bound, generation position as tie-break."""
    return (-sub.min_side, sub.position)


def schedule_hardest_first(
    subgraphs: Iterable[VertexCentredSubgraph],
) -> List[VertexCentredSubgraph]:
    """The shared S3 schedule: hardest survivors first, deterministically.

    Both the serial loop and the parallel dispatcher consume this order,
    so switching execution modes never changes which subgraph a given
    schedule slot holds.
    """
    return sorted(subgraphs, key=subgraph_hardness)


def _search_subgraph_bits(
    sub: VertexCentredSubgraph,
    context: SearchContext,
    branching: str,
    use_core_pruning: bool,
) -> None:
    """Bitset search of a single centred subgraph, centre forced in."""
    bitgraph = sub.to_bitgraph()
    left_mask = bitgraph.all_left_mask
    right_mask = bitgraph.all_right_mask
    if use_core_pruning:
        left_mask, right_mask = k_core_masks(
            bitgraph, context.best_side + 1, left_mask, right_mask
        )
    side, label = sub.center
    if side == LEFT:
        index = bitgraph.left_index[label]
        bit = 1 << index
        if not left_mask & bit:
            return
        a = bit
        b = 0
        ca = left_mask ^ bit
        cb = bitgraph.adj_left[index] & right_mask
    else:
        index = bitgraph.right_index[label]
        bit = 1 << index
        if not right_mask & bit:
            return
        a = 0
        b = bit
        ca = bitgraph.adj_right[index] & left_mask
        cb = right_mask ^ bit
    if min((a | ca).bit_count(), (b | cb).bit_count()) <= context.best_side:
        return
    context.stats.subgraphs_searched += 1
    dense_mbb_on_bitgraph(
        bitgraph, context, a, b, ca, cb, branching=branching, depth=0
    )


def _search_subgraph(
    sub: VertexCentredSubgraph,
    context: SearchContext,
    branching: str,
    use_core_pruning: bool,
) -> None:
    """Set-kernel search of a single centred subgraph, centre forced in."""
    subgraph = sub.graph
    if use_core_pruning:
        subgraph = k_core(subgraph, context.best_side + 1)
    side, label = sub.center
    if side == LEFT:
        if not subgraph.has_left_vertex(label):
            return
        neighbours = set(subgraph.neighbors_left(label))
        a = {label}
        b: set = set()
        ca = subgraph.left - {label}
        cb = neighbours
    else:
        if not subgraph.has_right_vertex(label):
            return
        neighbours = set(subgraph.neighbors_right(label))
        a = set()
        b = {label}
        ca = neighbours
        cb = subgraph.right - {label}
    if min(len(a) + len(ca), len(b) + len(cb)) <= context.best_side:
        return
    context.stats.subgraphs_searched += 1
    dense_mbb_on_sets(
        subgraph,
        context,
        a,
        b,
        ca,
        cb,
        branching=branching,
        depth=0,
        kernel=KERNEL_SETS,
    )


def search_subgraph(
    sub: VertexCentredSubgraph,
    context: SearchContext,
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    use_core_pruning: bool = True,
    kernel: str = KERNEL_BITS,
) -> None:
    """Search one centred subgraph with its centre forced in.

    The single-subgraph unit of work shared by the serial loop, the
    parallel-S3 worker entry point and the parent-side degradation path,
    so every execution mode runs the identical search.
    """
    if kernel == KERNEL_BITS:
        _search_subgraph_bits(sub, context, branching, use_core_pruning)
    else:
        _search_subgraph(sub, context, branching, use_core_pruning)


def verify_serial(
    subgraphs: Sequence[VertexCentredSubgraph],
    context: SearchContext,
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    use_core_pruning: bool = True,
    kernel: str = KERNEL_BITS,
) -> Biclique:
    """The serial S3 loop over an already-scheduled subgraph sequence.

    Factored out of :func:`verify_mbb` so the parallel dispatcher can
    degrade any unfinished remainder to exactly this loop.
    """
    search = _search_subgraph_bits if kernel == KERNEL_BITS else _search_subgraph
    for sub in subgraphs:
        if context.aborted:
            break
        try:
            # Budgets are polled between subgraphs as well as inside the
            # kernel, so a deadline fires even when every remaining
            # subgraph would be pruned before entering a search node.
            context.checkpoint()
            search(sub, context, branching, use_core_pruning)
        except SearchAborted:
            break
    return context.best


def verify_mbb(
    subgraphs: Iterable[VertexCentredSubgraph],
    context: SearchContext,
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    use_core_pruning: bool = True,
    kernel: str = KERNEL_BITS,
    prepared: Optional[PreparedGraph] = None,
    order_name: Optional[str] = None,
    parallel: Optional[ParallelVerifyOptions] = None,
) -> Biclique:
    """Run the verification stage over all surviving centred subgraphs.

    The incumbent stored in ``context`` is updated in place and also
    returned.  When a budget is exhausted the incumbent found so far is
    returned and ``context.aborted`` is set.  ``kernel`` selects the
    bitset (default) or adjacency-set search implementation.

    Survivors are scheduled hardest-first (:func:`schedule_hardest_first`)
    in every mode.  When ``parallel`` options are passed *and* a parallel
    verifier is registered (:func:`register_parallel_verifier`), the
    stage is offered to it first — ``prepared`` (the snapshot whose order
    generated the survivors) and ``order_name`` are what workers need to
    regenerate their subgraphs from the shared segment.  A verifier that
    declines (too few survivors, no pool, no snapshot) leaves the serial
    loop to run unchanged, so parallel execution is always an
    optimisation, never a requirement.
    """
    ordered = schedule_hardest_first(subgraphs)
    if parallel is not None and _PARALLEL_VERIFIER is not None:
        handled = _PARALLEL_VERIFIER(
            ordered,
            context,
            branching=branching,
            use_core_pruning=use_core_pruning,
            kernel=kernel,
            prepared=prepared,
            order_name=order_name,
            options=parallel,
        )
        if handled:
            return context.best
    return verify_serial(
        ordered,
        context,
        branching=branching,
        use_core_pruning=use_core_pruning,
        kernel=kernel,
    )
