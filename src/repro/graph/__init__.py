"""Bipartite graph substrate used by every algorithm in the library.

The public surface of this package is:

* :class:`~repro.graph.bipartite.BipartiteGraph` — mutable adjacency-set
  bipartite graph with independent left/right label spaces.
* :class:`~repro.graph.bitset.IndexedBitGraph` — immutable indexed bitmask
  view of a bipartite graph; the branch-and-bound kernels run on it.
* :class:`~repro.graph.csr.CSRBipartite` — immutable flat CSR adjacency
  snapshot over dense int vertex ids; the bicore peel runs on it.
* :class:`~repro.graph.prepared.PreparedGraph` — once-indexed bundle of
  the CSR snapshot plus lazily memoised solve artifacts (``N_{<=2}``
  arrays, search orders, position arrays); threaded through the whole
  sparse framework and cached per graph by the engine.
* :func:`~repro.graph.complement.bipartite_complement` — the bipartite
  complement used by the polynomial-case solver.
* :mod:`~repro.graph.generators` — random and structured graph generators.
* :mod:`~repro.graph.io` — edge-list and biadjacency-matrix I/O.
* :mod:`~repro.graph.validation` — structural validators shared by tests.
"""

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.bitset import (
    IndexedBitGraph,
    core_numbers_masks,
    degeneracy_of_mask,
    iter_bits,
    k_core_masks,
)
from repro.graph.complement import bipartite_complement, complement_density
from repro.graph.csr import CSRBipartite
from repro.graph.prepared import (
    PreparedGraph,
    PreparedGraphShm,
    ensure_prepared_for,
    graph_fingerprint,
)
from repro.graph import buffers, generators, io, validation

__all__ = [
    "LEFT",
    "RIGHT",
    "BipartiteGraph",
    "CSRBipartite",
    "PreparedGraph",
    "PreparedGraphShm",
    "ensure_prepared_for",
    "graph_fingerprint",
    "buffers",
    "IndexedBitGraph",
    "iter_bits",
    "k_core_masks",
    "core_numbers_masks",
    "degeneracy_of_mask",
    "bipartite_complement",
    "complement_density",
    "generators",
    "io",
    "validation",
]
