"""Tests for the polynomial maximum vertex biclique solver (König)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_bipartite, crown_graph, random_bipartite
from repro.baselines.brute_force import brute_force_side_size
from repro.baselines.mvb import (
    hopcroft_karp_matching,
    maximum_vertex_biclique,
    minimum_vertex_cover,
    mvb_total_size,
)
from repro.graph.validation import is_biclique


def _to_networkx(graph: BipartiteGraph) -> nx.Graph:
    nx_graph = nx.Graph()
    left = [("L", u) for u in graph.left_vertices()]
    nx_graph.add_nodes_from(left, bipartite=0)
    nx_graph.add_nodes_from((("R", v) for v in graph.right_vertices()), bipartite=1)
    for u, v in graph.edges():
        nx_graph.add_edge(("L", u), ("R", v))
    return nx_graph


class TestHopcroftKarp:
    @pytest.mark.parametrize("seed", range(8))
    def test_matching_size_matches_networkx(self, seed):
        graph = random_bipartite(8, 9, 0.4, seed=seed)
        ours = hopcroft_karp_matching(graph)
        nx_graph = _to_networkx(graph)
        left_nodes = {n for n, d in nx_graph.nodes(data=True) if d["bipartite"] == 0}
        theirs = nx.bipartite.maximum_matching(nx_graph, top_nodes=left_nodes)
        # NetworkX returns both directions; ours returns left -> right only.
        assert len(ours) == len(theirs) // 2

    def test_matching_is_a_valid_matching(self):
        graph = random_bipartite(10, 10, 0.3, seed=3)
        matching = hopcroft_karp_matching(graph)
        assert len(set(matching.values())) == len(matching)
        assert all(graph.has_edge(u, v) for u, v in matching.items())

    def test_complete_graph_perfect_matching(self):
        assert len(hopcroft_karp_matching(complete_bipartite(5, 5))) == 5


class TestMinimumVertexCover:
    @pytest.mark.parametrize("seed", range(6))
    def test_cover_covers_every_edge_and_matches_koenig(self, seed):
        graph = random_bipartite(7, 8, 0.4, seed=seed)
        left_cover, right_cover = minimum_vertex_cover(graph)
        for u, v in graph.edges():
            assert u in left_cover or v in right_cover
        assert len(left_cover) + len(right_cover) == len(hopcroft_karp_matching(graph))


class TestMaximumVertexBiclique:
    def test_complete_graph_takes_everything(self):
        graph = complete_bipartite(3, 6)
        assert mvb_total_size(graph) == 9

    def test_crown_graph(self):
        graph = crown_graph(4)
        result = maximum_vertex_biclique(graph)
        assert is_biclique(graph, result.left, result.right)
        # Crown graph: best vertex biclique keeps all but a matched pair
        # structure; total is n (choose disjoint index sets maximising sum).
        assert result.total_size == 4

    @pytest.mark.parametrize("seed", range(8))
    def test_result_is_a_biclique_and_bounds_mbb(self, seed):
        graph = random_bipartite(8, 8, 0.5, seed=seed)
        result = maximum_vertex_biclique(graph)
        assert is_biclique(graph, result.left, result.right)
        # The MVB total size upper-bounds twice the MBB side size.
        assert 2 * brute_force_side_size(graph) <= result.total_size
