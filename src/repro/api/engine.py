"""The :class:`MBBEngine` service facade: one solve, or a parallel batch.

The engine is the single entry point everything else is a wrapper around:

* :meth:`MBBEngine.solve_graph` — solve an in-memory graph with a named
  backend (what :func:`repro.solve_mbb` delegates to);
* :meth:`MBBEngine.solve` — execute one :class:`~repro.api.request.SolveRequest`
  end to end (materialise the graph, run the backend, build the report);
* :meth:`MBBEngine.solve_many` — execute a batch of requests over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with results returned
  in request order regardless of completion order.  Requests cross the
  process boundary as their JSON wire form, so every batch run also
  exercises the serialisation path a future network server would use.

Budgets flow through one mechanism: the engine builds a single
:class:`~repro.mbb.context.SearchContext` per request carrying the node
budget, the time budget and an absolute deadline, and hands it to the
backend; solvers abort cooperatively through the context instead of each
plumbing its own budget arguments.

The engine also owns the :class:`PreparedGraphCache`: a bounded LRU of
:class:`~repro.graph.prepared.PreparedGraph` snapshots keyed by graph
content fingerprint.  Backends that declare ``supports_prepared`` (the
sparse framework and ``auto``) receive the cached snapshot, so repeated
``solve()`` calls, ``solve_many`` batches over one graph and
``repro-mbb sweep`` parameter sweeps amortise the whole
CSR + ``N_{<=2}`` + peel pipeline across solves.  Every engine shares
one process-wide cache by default — which is exactly what makes the
amortisation reach the process-pool workers, each of which constructs a
fresh engine per request — and each solve reports its hit/miss and
``prepare_seconds`` through :class:`~repro.mbb.result.SearchStats`.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.registry import SolverBackend, get_backend
from repro.api.request import SolveReport, SolveRequest
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.prepared import PreparedGraph, graph_fingerprint
from repro.mbb import solver as _solver
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.result import MBBResult

_KERNELS = (KERNEL_BITS, KERNEL_SETS)


class PreparedGraphCache:
    """Bounded LRU of :class:`PreparedGraph` snapshots keyed by content.

    The key is the graph's :func:`~repro.graph.prepared.graph_fingerprint`
    — content, not object identity, so two materialisations of the same
    request spec (e.g. across ``solve()`` calls or sweep cells) share one
    snapshot.  A fingerprint is a cache key, not a proof: every hit
    re-verifies ``cached.graph == graph`` and a mismatch (a ``repr``
    collision between distinct graphs) is handled as a miss that
    overwrites the colliding entry — a collision can cost a
    re-preparation but never leaks one graph's arrays into another
    graph's solve.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, PreparedGraph]" = OrderedDict()

    def get(self, graph: BipartiteGraph) -> Tuple[PreparedGraph, bool]:
        """Return ``(prepared, hit)`` for ``graph``, preparing on a miss."""
        fingerprint = graph_fingerprint(graph)
        cached = self._entries.get(fingerprint)
        if cached is not None and cached.graph == graph:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return cached, True
        self.misses += 1
        prepared = PreparedGraph.prepare(graph)
        self._entries[fingerprint] = prepared
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return prepared, False

    def clear(self) -> None:
        """Drop every cached snapshot (counters are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current size, for observability."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default cache shared by every engine that is not given a
#: private one.  Sharing at module level is what lets process-pool
#: workers — which build a fresh ``MBBEngine`` per request — amortise
#: preparation across the requests they each execute.
_SHARED_PREPARED_CACHE = PreparedGraphCache()


def _solve_request_json(payload: str) -> str:
    """Worker-process entry point: JSON request in, JSON report out.

    Module-level so it pickles by reference; the worker reconstructs the
    request from its wire form, which keeps the process-pool path on the
    exact same format a network server would receive.
    """
    report = MBBEngine().solve(SolveRequest.from_json(payload))
    return report.to_json()


class MBBEngine:
    """Facade dispatching solves to registered backends.

    Parameters
    ----------
    max_workers:
        Default process-pool size for :meth:`solve_many` (defaults to the
        CPU count, capped by the batch size).
    prepared_cache:
        The :class:`PreparedGraphCache` this engine threads through
        backends that declare ``supports_prepared``.  Defaults to one
        process-wide shared cache; pass a private instance to isolate a
        workload (or size the LRU differently).
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        prepared_cache: Optional[PreparedGraphCache] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers
        self.prepared_cache = (
            prepared_cache if prepared_cache is not None else _SHARED_PREPARED_CACHE
        )

    # ------------------------------------------------------------------
    # single solves
    # ------------------------------------------------------------------
    def solve_graph(
        self,
        graph: BipartiteGraph,
        *,
        backend: str = "auto",
        kernel: str = KERNEL_BITS,
        node_budget: Optional[int] = None,
        time_budget: Optional[float] = None,
        seed: int = 0,
        **backend_options: object,
    ) -> MBBResult:
        """Solve an in-memory graph with a named backend.

        This is the programmatic fast path used by :func:`repro.solve_mbb`;
        it skips the request/report wire format but runs the exact same
        validation and dispatch.
        """
        result, _, _ = self._dispatch(
            graph,
            backend=backend,
            kernel=kernel,
            node_budget=node_budget,
            time_budget=time_budget,
            seed=seed,
            **backend_options,
        )
        return result

    def solve(
        self, request: SolveRequest, *, graph: Optional[BipartiteGraph] = None
    ) -> SolveReport:
        """Execute one request end to end and return its report.

        ``graph`` lets a caller that already materialised the request's
        graph (e.g. to print its shape) skip a second materialisation; it
        must be the graph the request's spec describes.
        """
        if graph is None:
            graph = request.graph.materialise()
        result, resolved, kernel = self._dispatch(
            graph,
            backend=request.backend,
            kernel=request.kernel,
            node_budget=request.node_budget,
            time_budget=request.time_budget,
            seed=request.seed,
        )
        return SolveReport.from_result(
            request, result, backend=resolved, kernel=kernel, graph=graph
        )

    # ------------------------------------------------------------------
    # batch solves
    # ------------------------------------------------------------------
    def solve_many(
        self,
        requests: Iterable[SolveRequest],
        *,
        max_workers: Optional[int] = None,
        parallel: bool = True,
    ) -> List[SolveReport]:
        """Execute a batch of requests, in a process pool when possible.

        Results are returned in request order regardless of which worker
        finishes first, so a batch is deterministic given deterministic
        backends.  Each request enforces its own budgets inside its
        worker.  With ``parallel=False`` (or a single-request batch, or a
        platform where process pools are unavailable) the batch runs
        serially in-process and produces the same reports apart from
        timings.
        """
        batch: Sequence[SolveRequest] = list(requests)
        if not batch:
            return []
        if not parallel or len(batch) == 1:
            return [self.solve(request) for request in batch]
        workers = max_workers or self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(batch)))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError):
            # Process pools need working semaphores/fork support; fall
            # back to a serial batch on platforms that refuse them.  Only
            # pool *creation* is guarded: a request that fails inside a
            # worker propagates instead of silently re-running the batch.
            return [self.solve(request) for request in batch]
        with pool:
            futures = [
                pool.submit(_solve_request_json, request.to_json())
                for request in batch
            ]
            return [SolveReport.from_json(future.result()) for future in futures]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        graph: BipartiteGraph,
        *,
        backend: str,
        kernel: str,
        node_budget: Optional[int],
        time_budget: Optional[float],
        seed: int,
        **backend_options: object,
    ) -> Tuple[MBBResult, str, str]:
        """Validate, build the shared context, run the backend."""
        solver = get_backend(backend)
        self._validate(solver, kernel, node_budget, time_budget)
        # The time budget is expressed solely as an absolute deadline so
        # enter_node pays one clock read per search node, and so the
        # cutoff survives the context being handed across solver stages.
        context = SearchContext(node_budget=node_budget)
        if time_budget is not None:
            context.deadline = time.perf_counter() + time_budget
        resolved = backend
        if backend == "auto":
            from repro.api.backends import resolve_auto

            resolved = resolve_auto(graph)
        if (
            solver.info.supports_prepared
            and "prepared" not in backend_options
            # ``auto`` resolving to the dense solver would drop the
            # snapshot unused — don't pollute the cache for it.
            and resolved != "dense"
        ):
            prepare_start = time.perf_counter()
            prepared, hit = self.prepared_cache.get(graph)
            context.stats.prepare_seconds += time.perf_counter() - prepare_start
            if hit:
                context.stats.prepared_cache_hits += 1
            else:
                context.stats.prepared_cache_misses += 1
            backend_options["prepared"] = prepared
        result = solver.run(graph, context, kernel=kernel, seed=seed, **backend_options)
        return result, resolved, kernel

    @staticmethod
    def _validate(
        solver: SolverBackend,
        kernel: str,
        node_budget: Optional[int],
        time_budget: Optional[float],
    ) -> None:
        if kernel not in _KERNELS:
            raise InvalidParameterError(
                f"unknown kernel {kernel!r}; expected one of {_KERNELS}"
            )
        info = solver.info
        if info.kernels and kernel not in info.kernels:
            raise InvalidParameterError(
                f"backend {info.name!r} supports kernels {info.kernels}, got {kernel!r}"
            )
        if not info.supports_budgets and (
            node_budget is not None or time_budget is not None
        ):
            raise InvalidParameterError(
                f"backend {info.name!r} does not support node/time budgets"
            )
        if node_budget is not None and node_budget < 0:
            raise InvalidParameterError(
                f"node_budget must be non-negative, got {node_budget}"
            )
        if time_budget is not None and time_budget < 0:
            raise InvalidParameterError(
                f"time_budget must be non-negative, got {time_budget}"
            )


def _solve_graph_with_default_engine(
    graph: BipartiteGraph, **options: object
) -> MBBResult:
    """Module-level engine entry point for :func:`repro.mbb.solver.solve_mbb`.

    A fresh :class:`MBBEngine` per call is cheap — the expensive state
    (the prepared-graph cache) is process-wide and shared by default.
    Module-level (not a lambda/closure) so the reference stays picklable
    if it ever crosses a pool boundary (RPL004 discipline).
    """
    return MBBEngine().solve_graph(graph, **options)


# Dependency inversion for the layering contract (RPL007): the kernel
# layer's solve_mbb must not import this service module, so the engine
# installs itself into the solver's registration hook at import time.
_solver.register_engine(_solve_graph_with_default_engine)
