"""Polynomial-time solver for near-complete bipartite subgraphs.

This module implements the heart of the dense-graph algorithm
(Observations 1-3, Lemma 3 and Algorithm 2 of the paper): when every
candidate vertex misses at most two neighbours on the other side, the
bipartite complement of the candidate subgraph has maximum degree at most
two and therefore decomposes into disjoint paths and cycles.  Picking a
biclique in the original subgraph is then equivalent to picking an
*independent set* in that complement — the forbidden pairs are exactly the
complement edges — and independent sets on paths and cycles are polynomial.

The solver computes, for each complement component, the Pareto frontier of
``(left vertices chosen, right vertices chosen)`` over its independent
sets, combines the components with a dynamic program over the frontier
(the paper's table ``t``), adds back the "trivial" vertices with no missing
neighbour, and returns the best achievable balanced biclique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.mbb.context import SearchContext
from repro.mbb.reductions import NodeState
from repro.mbb.result import Biclique

VertexKey = Tuple[str, Vertex]


@dataclass(frozen=True)
class _Choice:
    """One Pareto point: how many vertices of each side and which ones."""

    a: int
    b: int
    witness: FrozenSet[VertexKey]

    def extend(self, key: VertexKey) -> "_Choice":
        """Return a new choice with ``key`` added to the selection."""
        if key[0] == LEFT:
            return _Choice(self.a + 1, self.b, self.witness | {key})
        return _Choice(self.a, self.b + 1, self.witness | {key})


_EMPTY_CHOICE = _Choice(0, 0, frozenset())


def _pareto(choices: Sequence[_Choice]) -> List[_Choice]:
    """Keep only Pareto-maximal ``(a, b)`` choices (ties keep one witness)."""
    best_b_for_a: Dict[int, _Choice] = {}
    for choice in choices:
        incumbent = best_b_for_a.get(choice.a)
        if incumbent is None or choice.b > incumbent.b:
            best_b_for_a[choice.a] = choice
    result: List[_Choice] = []
    best_b = -1
    for a in sorted(best_b_for_a, reverse=True):
        choice = best_b_for_a[a]
        if choice.b > best_b:
            result.append(choice)
            best_b = choice.b
    return result


def missing_neighbors(
    graph: BipartiteGraph, state: NodeState
) -> Dict[VertexKey, Set[VertexKey]]:
    """Complement adjacency restricted to the candidate sets of ``state``."""
    complement: Dict[VertexKey, Set[VertexKey]] = {}
    for u in state.ca:
        missing = state.cb - graph.neighbors_left(u)
        complement[(LEFT, u)] = {(RIGHT, v) for v in missing}
    for v in state.cb:
        missing = state.ca - graph.neighbors_right(v)
        complement[(RIGHT, v)] = {(LEFT, u) for u in missing}
    return complement


def is_polynomially_solvable(graph: BipartiteGraph, state: NodeState) -> bool:
    """Lemma 3 precondition: every candidate misses at most two neighbours."""
    for u in state.ca:
        if len(state.cb - graph.neighbors_left(u)) > 2:
            return False
    for v in state.cb:
        if len(state.ca - graph.neighbors_right(v)) > 2:
            return False
    return True


def _component_sequences(
    complement: Dict[VertexKey, Set[VertexKey]],
) -> List[Tuple[List[VertexKey], bool]]:
    """Split the complement into components and linearise each one.

    Returns a list of ``(sequence, is_cycle)`` pairs.  Every component of a
    graph with maximum degree two is a simple path or a simple cycle, so a
    walk from an endpoint (or from an arbitrary vertex for cycles) visits
    each vertex exactly once.
    """
    non_trivial = {key for key, misses in complement.items() if misses}
    seen: Set[VertexKey] = set()
    components: List[Tuple[List[VertexKey], bool]] = []
    for start in sorted(non_trivial, key=repr):
        if start in seen:
            continue
        # Collect the whole component first.
        stack = [start]
        members: Set[VertexKey] = {start}
        while stack:
            current = stack.pop()
            for neighbour in complement[current]:
                if neighbour not in members:
                    members.add(neighbour)
                    stack.append(neighbour)
        seen |= members
        endpoints = sorted(
            (key for key in members if len(complement[key] & members) <= 1),
            key=repr,
        )
        is_cycle = not endpoints
        first = endpoints[0] if endpoints else sorted(members, key=repr)[0]
        # Walk along the path/cycle.
        sequence = [first]
        visited = {first}
        current = first
        while True:
            next_candidates = [
                key for key in complement[current] if key in members and key not in visited
            ]
            if not next_candidates:
                break
            current = sorted(next_candidates, key=repr)[0]
            sequence.append(current)
            visited.add(current)
        components.append((sequence, is_cycle))
    return components


def _path_choices(sequence: Sequence[VertexKey]) -> List[_Choice]:
    """Pareto frontier of independent-set selections along a path."""
    if not sequence:
        return [_EMPTY_CHOICE]
    taken: List[_Choice] = []
    not_taken: List[_Choice] = [_EMPTY_CHOICE]
    for key in sequence:
        new_taken = _pareto([choice.extend(key) for choice in not_taken])
        new_not_taken = _pareto(taken + not_taken)
        taken, not_taken = new_taken, new_not_taken
    return _pareto(taken + not_taken)


def _cycle_choices(sequence: Sequence[VertexKey]) -> List[_Choice]:
    """Pareto frontier of independent-set selections around a cycle."""
    if len(sequence) <= 2:
        # Complement multi-edges cannot occur in a simple bipartite graph;
        # a "cycle" this short degenerates to a path.
        return _path_choices(sequence)
    first = sequence[0]
    without_first = _path_choices(sequence[1:])
    inner = _path_choices(sequence[2:-1])
    with_first = [choice.extend(first) for choice in inner]
    return _pareto(without_first + with_first)


def component_choices(
    sequence: Sequence[VertexKey], is_cycle: bool
) -> List[_Choice]:
    """Pareto ``(a, b)`` selections for one complement path or cycle."""
    if is_cycle:
        return _cycle_choices(sequence)
    return _path_choices(sequence)


def solve_polynomial_case(
    graph: BipartiteGraph,
    state: NodeState,
    context: SearchContext,
) -> Optional[Biclique]:
    """Solve a node whose candidate subgraph satisfies Lemma 3 exactly.

    Returns the best balanced biclique extending ``(A, B)`` inside the
    candidate sets, or ``None`` when even the best extension does not beat
    the incumbent stored in ``context``.  The caller is responsible for
    offering the returned biclique to the context.
    """
    complement = missing_neighbors(graph, state)
    trivial_left = [u for u in state.ca if not complement[(LEFT, u)]]
    trivial_right = [v for v in state.cb if not complement[(RIGHT, v)]]

    frontier: List[_Choice] = [_EMPTY_CHOICE]
    for sequence, is_cycle in _component_sequences(complement):
        options = component_choices(sequence, is_cycle)
        combined: List[_Choice] = []
        for base in frontier:
            for option in options:
                combined.append(
                    _Choice(
                        base.a + option.a,
                        base.b + option.b,
                        base.witness | option.witness,
                    )
                )
        frontier = _pareto(combined)

    base_left = len(state.a) + len(trivial_left)
    base_right = len(state.b) + len(trivial_right)
    best_choice: Optional[_Choice] = None
    best_side = context.best_side
    for choice in frontier:
        side = min(base_left + choice.a, base_right + choice.b)
        if side > best_side:
            best_side = side
            best_choice = choice
    if best_choice is None:
        # Even the unconstrained optimum of this node does not improve on
        # the incumbent.
        return None

    left = set(state.a) | set(trivial_left)
    right = set(state.b) | set(trivial_right)
    for side_tag, label in best_choice.witness:
        if side_tag == LEFT:
            left.add(label)
        else:
            right.add(label)
    return Biclique.of(left, right).balanced()


def maximum_balanced_biclique_near_complete(
    graph: BipartiteGraph,
) -> Biclique:
    """Convenience wrapper: solve a whole near-complete graph directly.

    The graph must satisfy the Lemma 3 condition globally (every vertex
    misses at most two neighbours on the other side); this is the
    "sufficiently dense, solvable in polynomial time directly" case the
    paper highlights for VLSI-style instances.
    """
    state = NodeState(set(), set(), graph.left, graph.right)
    context = SearchContext()
    if not is_polynomially_solvable(graph, state):
        raise ValueError(
            "graph is not near-complete: some vertex misses more than two "
            "neighbours; use dense_mbb instead"
        )
    result = solve_polynomial_case(graph, state, context)
    return result if result is not None else Biclique.empty()
