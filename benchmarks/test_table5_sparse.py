"""Benchmarks regenerating Table 5: sparse datasets (KONECT stand-ins).

Per-dataset benchmarks time ``hbvMBB`` on a representative subset of the 30
stand-ins, comparison benchmarks time the strongest baseline (``adp3``) and
``extBBCl`` on a smaller subset, and the reporting test runs the full
30-dataset table and prints it.

Expected shape (matching the paper): ``hbvMBB`` is the fastest algorithm on
every dataset, terminates at step S1 or S2 on a substantial fraction of
them, and never hits the time budget; ``extBBCl`` does on the tough ones.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.baselines.adapted import run_adapted_baseline
from repro.baselines.extbbclq import ext_bbclq
from repro.bench.table5 import format_table5, run_table5
from repro.mbb.sparse import SparseConfig, hbv_mbb
from repro.workloads.datasets import DATASETS, load_dataset

#: Subset used for the per-dataset timing benchmarks (small / medium / tough).
BENCH_DATASETS = (
    "unicodelang",
    "opsahl-ucforum",
    "jester",
    "github",
    "discogs-style",
    "dblp-author",
)


@pytest.mark.table
@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_hbv_mbb_dataset(benchmark, dataset):
    """Time the full sparse framework on one dataset stand-in."""
    graph = load_dataset(dataset)

    result = benchmark(lambda: hbv_mbb(graph, config=SparseConfig(time_budget=30.0)))
    assert result.optimal
    assert result.biclique.is_valid_in(graph)
    assert result.side_size >= DATASETS[dataset].planted_size


@pytest.mark.table
@pytest.mark.parametrize("dataset", ("unicodelang", "jester"))
def test_adp3_dataset(benchmark, dataset, bench_time_budget):
    """Time the strongest adapted baseline (SBMNAS + FMBE) for comparison."""
    graph = load_dataset(dataset)

    result = benchmark(
        lambda: run_adapted_baseline(graph, "adp3", time_budget=bench_time_budget)
    )
    assert result.biclique.is_valid_in(graph)


@pytest.mark.table
@pytest.mark.parametrize("dataset", ("unicodelang", "jester"))
def test_ext_bbclq_dataset(benchmark, dataset, bench_time_budget):
    """Time the ExtBBClq baseline for comparison (may hit the budget)."""
    graph = load_dataset(dataset)

    result = benchmark(lambda: ext_bbclq(graph, time_budget=bench_time_budget))
    assert result.biclique.is_valid_in(graph)


@pytest.mark.table
def test_report_table5(benchmark, capsys):
    """Regenerate and print the full 30-dataset Table 5."""
    rows = benchmark.pedantic(lambda: run_table5(time_budget=5.0), rounds=1, iterations=1)
    # hbvMBB must prove optimality on every dataset within the budget.
    assert all(row["hbvMBB"] != "-" for row in rows)
    # A substantial fraction of datasets terminate before the exhaustive step,
    # mirroring the paper's observation (14 of 30 at S1/S2).
    early = sum(1 for row in rows if row["step"] in ("S1", "S2"))
    assert early >= len(rows) // 4
    with capsys.disabled():
        print("\n=== Table 5 (stand-ins): running time in seconds ===")
        print(format_table5(rows))
