#!/usr/bin/env python3
"""VLSI defect tolerance: find the largest defect-free balanced sub-crossbar.

This is the dense-graph application that motivates ``denseMBB`` in the
paper: a nano-scale crossbar is a complete bipartite circuit between input
and output wires, some junctions are defective, and the designer wants the
largest *balanced* sub-crossbar whose junctions are all functional — i.e. a
maximum balanced biclique of the (dense) functional-junction graph.

Run with::

    python examples/vlsi_defect_tolerance.py
"""

from __future__ import annotations

import time

from repro.baselines.extbbclq import ext_bbclq
from repro.graph.generators import random_bipartite
from repro.mbb.dense import dense_mbb
from repro.mbb.heuristics import degree_heuristic

CROSSBAR_SIZE = 28
DEFECT_RATE = 0.12  # ~12% of junctions are defective -> density 0.88


def main() -> None:
    # The functional-junction graph: an edge means the junction works.
    crossbar = random_bipartite(
        CROSSBAR_SIZE, CROSSBAR_SIZE, 1.0 - DEFECT_RATE, seed=2021
    )
    print(
        f"crossbar: {CROSSBAR_SIZE}x{CROSSBAR_SIZE}, "
        f"{crossbar.num_edges} functional junctions "
        f"(density {crossbar.density:.2f})"
    )

    # denseMBB, seeded with a cheap greedy lower bound.
    started = time.perf_counter()
    seed_biclique = degree_heuristic(crossbar)
    result = dense_mbb(crossbar, initial_best=seed_biclique)
    dense_seconds = time.perf_counter() - started
    print()
    print(f"denseMBB : {result.side_size}x{result.side_size} defect-free sub-crossbar")
    print(f"           {dense_seconds:.3f}s, {result.stats.nodes} search nodes, "
          f"{result.stats.polynomial_cases} polynomial cases")
    print(f"  input wires : {sorted(result.biclique.left)}")
    print(f"  output wires: {sorted(result.biclique.right)}")
    assert result.biclique.is_valid_in(crossbar)

    # The prior state of the art for comparison (give it a small time budget;
    # on dense inputs it is orders of magnitude slower).
    started = time.perf_counter()
    baseline = ext_bbclq(crossbar, time_budget=10.0)
    baseline_seconds = time.perf_counter() - started
    status = "optimal" if baseline.optimal else "budget exhausted"
    print()
    print(f"extBBCl  : side {baseline.side_size} ({status}) in {baseline_seconds:.3f}s")

    yield_gain = (result.side_size**2) / max(1, baseline.side_size**2)
    print()
    print(
        f"usable junction count with denseMBB: {result.side_size ** 2} "
        f"({yield_gain:.2f}x the baseline's certified result)"
    )


if __name__ == "__main__":
    main()
