"""Scaled-down synthetic stand-ins for the 30 KONECT datasets of Table 5.

The paper evaluates the sparse framework on 30 real bipartite networks from
the Koblenz Network Collection (KONECT).  Those datasets cannot be
redistributed with this repository and cannot be downloaded in the offline
reproduction environment, so each one is replaced by a *synthetic stand-in*
that preserves the properties the algorithms are sensitive to:

* the left/right size ratio of the original network,
* its degree skew (heavy-tailed, generated with a bipartite Chung-Lu
  power-law model),
* its sparsity regime (average degree), and
* a planted balanced biclique playing the role of the dense community that
  determines the dataset's optimum (scaled from the paper's reported
  optimum).

Sizes are scaled down by roughly three orders of magnitude so that a pure
Python exact solver — and, more importantly, the much slower baselines —
can run the whole table in a benchmark harness.  The stand-ins were grown
by 1.5x after the bitset branch-and-bound kernel landed (>= 3x on the
dense suite, see ``BENCH_kernels.json``), narrowing the gap to the
originals while keeping the table runnable.  The registry keeps the
paper's reported numbers (sizes, density, optimum) alongside each
stand-in so EXPERIMENTS.md can show paper-vs-measured side by side.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import DatasetError
from repro.graph.bipartite import BipartiteGraph
from repro.workloads.synthetic import sparse_synthetic_graph


@dataclass(frozen=True)
class DatasetSpec:
    """One KONECT dataset stand-in."""

    name: str
    #: stand-in generator parameters
    n_left: int
    n_right: int
    avg_degree: float
    planted_size: int
    seed: int
    #: True for the 12 "tough" datasets of Table 6 / Figures 4-6.
    tough: bool = False
    #: Values reported by the paper for the original dataset (|L|, |R|,
    #: density x 1e-4, optimum side size) — for documentation only.
    paper_left: int = 0
    paper_right: int = 0
    paper_density_1e4: float = 0.0
    paper_optimum: int = 0

    def generate(self) -> BipartiteGraph:
        """Materialise the stand-in graph (deterministic per spec)."""
        return sparse_synthetic_graph(
            self.n_left,
            self.n_right,
            self.avg_degree,
            planted_size=self.planted_size,
            seed=self.seed,
        )


def _spec(
    name: str,
    shape: Tuple[int, int],
    avg_degree: float,
    planted: int,
    *,
    tough: bool = False,
    paper: Tuple[int, int, float, int] = (0, 0, 0.0, 0),
) -> DatasetSpec:
    # zlib.crc32 is stable across interpreter runs (unlike ``hash`` on
    # strings), which keeps every stand-in graph reproducible.
    seed = zlib.crc32(name.encode("utf-8")) & 0x7FFFFFFF
    return DatasetSpec(
        name=name,
        n_left=shape[0],
        n_right=shape[1],
        avg_degree=avg_degree,
        planted_size=planted,
        seed=seed,
        tough=tough,
        paper_left=paper[0],
        paper_right=paper[1],
        paper_density_1e4=paper[2],
        paper_optimum=paper[3],
    )


#: Registry of all 30 stand-ins, in the order of the paper's Table 5.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        _spec("unicodelang", (180, 420), 2.0, 3, paper=(254, 614, 8.0, 4)),
        _spec("moreno-crime", (390, 270), 1.5, 2, paper=(829, 551, 3.2, 2)),
        _spec("opsahl-ucforum", (450, 270), 6.0, 5, paper=(899, 522, 71.9, 5)),
        _spec("escorts", (750, 500), 3.0, 5, paper=(10106, 6624, 0.76, 6)),
        _spec("jester", (1350, 80), 6.0, 10, tough=True, paper=(173421, 100, 563.4, 100)),
        _spec("pics-ut", (450, 1350), 4.0, 8, tough=True, paper=(17122, 82035, 1.6, 30)),
        _spec("youtube-groupmemberships", (1050, 350), 3.0, 6, paper=(94238, 30087, 0.10, 12)),
        _spec("dbpedia-writer", (900, 480), 1.8, 4, paper=(89356, 46213, 0.035, 6)),
        _spec("dbpedia-starring", (680, 720), 2.2, 4, paper=(76099, 81085, 0.046, 6)),
        _spec("github", (600, 1200), 3.5, 7, tough=True, paper=(56519, 120867, 0.064, 12)),
        _spec("dbpedia-recordlabel", (1200, 140), 2.0, 4, paper=(168337, 18421, 0.075, 6)),
        _spec("dbpedia-producer", (450, 1280), 1.8, 4, paper=(48833, 138844, 0.031, 6)),
        _spec("dbpedia-location", (1280, 390), 1.6, 3, paper=(172091, 53407, 0.032, 5)),
        _spec("dbpedia-occupation", (980, 780), 1.8, 4, paper=(127577, 101730, 0.019, 6)),
        _spec("dbpedia-genre", (1350, 60), 2.5, 5, paper=(258934, 7783, 0.23, 7)),
        _spec("discogs-lgenre", (1350, 18), 3.0, 6, paper=(270771, 15, 1021.2, 15)),
        _spec(
            "bookcrossing-full-rating",
            (750, 1800),
            3.0,
            8,
            tough=True,
            paper=(105278, 340523, 0.032, 13),
        ),
        _spec(
            "flickr-groupmemberships",
            (1800, 600),
            4.0,
            12,
            tough=True,
            paper=(395979, 103631, 0.21, 47),
        ),
        _spec("actor-movie", (750, 2100), 3.0, 6, tough=True, paper=(127823, 383640, 0.030, 8)),
        _spec(
            "stackexchange-stackoverflow",
            (2100, 450),
            2.5,
            6,
            tough=True,
            paper=(545196, 96680, 0.025, 9),
        ),
        _spec("bibsonomy-2ui", (150, 2250), 4.0, 6, paper=(5794, 767447, 0.58, 8)),
        _spec("dbpedia-team", (2400, 120), 2.0, 4, paper=(901166, 34461, 0.044, 6)),
        _spec("reuters", (2250, 900), 4.0, 12, tough=True, paper=(781265, 283911, 0.27, 51)),
        _spec("discogs-style", (2400, 45), 4.0, 10, tough=True, paper=(1617943, 383, 38.9, 42)),
        _spec("gottron-trec", (1200, 2400), 5.0, 14, tough=True, paper=(556077, 1173225, 0.13, 101)),
        _spec("edit-frwiktionary", (90, 2700), 5.0, 8, paper=(5017, 1907247, 0.77, 19)),
        _spec(
            "discogs-affiliation",
            (2700, 450),
            4.0,
            9,
            tough=True,
            paper=(1754823, 270771, 0.030, 26),
        ),
        _spec("wiki-en-cat", (2700, 300), 2.2, 6, paper=(1853493, 182947, 0.011, 14)),
        _spec("edit-dewiki", (750, 2850), 3.5, 10, tough=True, paper=(425842, 3195148, 0.042, 49)),
        _spec("dblp-author", (2250, 90), 2.0, 5, paper=(1425813, 4000, 0.002, 10)),
    ]
}

#: The 12 tough datasets of Table 6 / Figures 4-6, in the paper's order.
TOUGH_DATASETS: Tuple[str, ...] = tuple(
    name for name, spec in DATASETS.items() if spec.tough
)


def tough_dataset_names() -> Tuple[str, ...]:
    """Names of the tough datasets (labelled D1..D12 in the figures)."""
    return TOUGH_DATASETS


def load_dataset(name: str) -> BipartiteGraph:
    """Generate the stand-in graph for a dataset by name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known datasets: {sorted(DATASETS)}"
        ) from None
    return spec.generate()
