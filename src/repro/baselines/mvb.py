"""Maximum *vertex* biclique via König's theorem (related work, §7).

Unlike the balanced variant, maximising ``|A| + |B|`` without the balance
constraint is polynomial: a biclique of ``G`` is an independent set of the
bipartite complement ``G̅`` (within-side pairs are never edges, cross pairs
of the biclique are non-edges of ``G̅``), and by König's theorem a maximum
independent set of a bipartite graph has size ``|V| - maximum matching``.

The module ships a self-contained Hopcroft–Karp matching implementation and
uses it both to solve the MVB problem and to derive the classic
``2 * MBB_side <= MVB_total`` sanity bound exploited by the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.complement import bipartite_complement
from repro.mbb.result import Biclique

_INFINITY = float("inf")


def hopcroft_karp_matching(graph: BipartiteGraph) -> Dict[Vertex, Vertex]:
    """Maximum matching of a bipartite graph as a left -> right mapping.

    Runs in ``O(E * sqrt(V))`` using the Hopcroft–Karp layered BFS / DFS
    phases.  Only the left-to-right half of the matching is returned; the
    reverse direction is implied.
    """
    match_left: Dict[Vertex, Optional[Vertex]] = {u: None for u in graph.left_vertices()}
    match_right: Dict[Vertex, Optional[Vertex]] = {v: None for v in graph.right_vertices()}
    distance: Dict[Vertex, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in match_left:
            if match_left[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = _INFINITY
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in graph.neighbors_left(u):
                partner = match_right[v]
                if partner is None:
                    found_augmenting = True
                elif distance[partner] == _INFINITY:
                    distance[partner] = distance[u] + 1
                    queue.append(partner)
        return found_augmenting

    def dfs(u: Vertex) -> bool:
        for v in graph.neighbors_left(u):
            partner = match_right[v]
            if partner is None or (
                distance[partner] == distance[u] + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INFINITY
        return False

    while bfs():
        for u in list(match_left):
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in match_left.items() if v is not None}


def minimum_vertex_cover(graph: BipartiteGraph) -> Tuple[Set[Vertex], Set[Vertex]]:
    """Minimum vertex cover ``(left_cover, right_cover)`` via König's theorem.

    Starting from unmatched left vertices, alternate unmatched/matched
    edges; the cover is (left vertices not reached) ∪ (right vertices
    reached).
    """
    matching = hopcroft_karp_matching(graph)
    matched_right_to_left = {v: u for u, v in matching.items()}
    reached_left: Set[Vertex] = {
        u for u in graph.left_vertices() if u not in matching
    }
    reached_right: Set[Vertex] = set()
    frontier = list(reached_left)
    while frontier:
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors_left(u):
                if v in reached_right:
                    continue
                if matching.get(u) == v:
                    continue  # only travel unmatched edges left -> right
                reached_right.add(v)
                partner = matched_right_to_left.get(v)
                if partner is not None and partner not in reached_left:
                    reached_left.add(partner)
                    next_frontier.append(partner)
        frontier = next_frontier
    left_cover = set(graph.left) - reached_left
    right_cover = reached_right
    return left_cover, right_cover


def maximum_vertex_biclique(graph: BipartiteGraph) -> Biclique:
    """Maximum vertex biclique (maximising ``|A| + |B|``, no balance).

    Computed as a maximum independent set of the bipartite complement: the
    complement's minimum vertex cover is removed from the vertex set and
    the remainder forms the biclique.
    """
    complement = bipartite_complement(graph)
    left_cover, right_cover = minimum_vertex_cover(complement)
    left = graph.left - left_cover
    right = graph.right - right_cover
    return Biclique.of(left, right)


def mvb_total_size(graph: BipartiteGraph) -> int:
    """``|A| + |B|`` of the maximum vertex biclique (an MBB upper bound)."""
    return maximum_vertex_biclique(graph).total_size
