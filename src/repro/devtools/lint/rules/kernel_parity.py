"""RPL003 — every ``kernel="bits"`` path keeps a ``"sets"`` counterpart.

History: the bitset kernels (PRs 1-3) are validated by property tests
that compare them against the original adjacency-set implementations; if
a refactor silently drops a ``sets`` path, the ablation benchmarks and
the cross-kernel oracle both lose their reference and the ``kernels``
capability metadata in the registry starts lying to callers.

Two sub-checks over library code (``src/repro/``):

* **dispatch parity** — a module that *dispatches* on the bits kernel
  (a comparison mentioning ``KERNEL_BITS`` or the literal ``"bits"``,
  e.g. ``if kernel == KERNEL_BITS:`` or ``kernel not in (KERNEL_BITS,
  KERNEL_SETS)``) must still reference the sets kernel somewhere —
  a ``KERNEL_SETS`` read or a ``"sets"`` literal.  Modules that merely
  take ``kernel=KERNEL_BITS`` as a default and forward it are not
  dispatching and are not flagged.
* **registry parity** — any call carrying a ``kernels=`` keyword (the
  :class:`repro.api.registry.BackendInfo` capability field) must not
  declare bits without sets.  Tuples are resolved through module-level
  aliases (``_BOTH_KERNELS = (KERNEL_BITS, KERNEL_SETS)``), ``KERNEL_*``
  names and string literals; unresolvable values are skipped rather
  than guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.lint.base import FileContext, Rule, register_rule
from repro.devtools.lint.findings import Finding

KERNEL_BITS_NAME = "KERNEL_BITS"
KERNEL_SETS_NAME = "KERNEL_SETS"
KERNEL_BITS_VALUE = "bits"
KERNEL_SETS_VALUE = "sets"


def _kernel_token(node: ast.AST) -> Optional[str]:
    """Resolve a node to ``"bits"``/``"sets"`` when it names a kernel."""
    if isinstance(node, ast.Name):
        if node.id == KERNEL_BITS_NAME:
            return KERNEL_BITS_VALUE
        if node.id == KERNEL_SETS_NAME:
            return KERNEL_SETS_VALUE
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in (KERNEL_BITS_VALUE, KERNEL_SETS_VALUE):
            return node.value
    return None


def _module_tuple_aliases(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = (KERNEL_BITS, ...)`` tuple aliases."""
    aliases: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            tokens: List[str] = []
            for element in node.value.elts:
                token = _kernel_token(element)
                if token is None:
                    break
                tokens.append(token)
            else:
                aliases[node.targets[0].id] = tuple(tokens)
    return aliases


@register_rule
class KernelParityRule(Rule):
    code = "RPL003"
    name = "kernel-parity"
    description = (
        'every kernel="bits" dispatch keeps a reachable "sets" ablation '
        "counterpart (code and registry metadata)"
    )
    rationale = (
        "The bitset kernel is the fast path but the sets kernel is the "
        "oracle: every ablation table and property test relies on the two "
        "producing identical results, so a bits-only dispatch silently "
        "removes the cross-check that caught the PR 3/PR 4 tie-break bugs. "
        "Any kernel dispatch that accepts \"bits\" must keep a reachable "
        "\"sets\" branch, and the backend registry metadata must agree."
    )
    example = (
        "# bad: the ablation counterpart is gone\n"
        "def solve(graph, kernel=KERNEL_BITS):\n"
        "    return _solve_bits(graph)                 # RPL003\n"
        "\n"
        "# good: both kernels stay reachable\n"
        "def solve(graph, kernel=KERNEL_BITS):\n"
        "    if kernel == KERNEL_BITS:\n"
        "        return _solve_bits(graph)\n"
        "    return _solve_sets(graph)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_library_code():
            return
        yield from self._check_dispatch_parity(ctx)
        yield from self._check_registry_parity(ctx)

    # ------------------------------------------------------------------
    # dispatch parity
    # ------------------------------------------------------------------
    def _check_dispatch_parity(self, ctx: FileContext) -> Iterator[Finding]:
        first_dispatch: Optional[ast.AST] = None
        sets_referenced = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                tokens = {
                    token
                    for sub in ast.walk(node)
                    for token in [_kernel_token(sub)]
                    if token is not None
                }
                if KERNEL_BITS_VALUE in tokens and first_dispatch is None:
                    first_dispatch = node
                if KERNEL_SETS_VALUE in tokens:
                    sets_referenced = True
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id == KERNEL_SETS_NAME:
                    sets_referenced = True
            elif isinstance(node, ast.Constant) and node.value == KERNEL_SETS_VALUE:
                sets_referenced = True
        if first_dispatch is not None and not sets_referenced:
            yield self.finding(
                ctx,
                first_dispatch,
                'module dispatches on kernel="bits" but never references the '
                '"sets" ablation kernel; keep a reachable sets counterpart',
            )

    # ------------------------------------------------------------------
    # registry parity
    # ------------------------------------------------------------------
    def _check_registry_parity(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _module_tuple_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg != "kernels":
                    continue
                tokens = self._resolve_kernels(keyword.value, aliases)
                if tokens is None:
                    continue
                if KERNEL_BITS_VALUE in tokens and KERNEL_SETS_VALUE not in tokens:
                    yield self.finding(
                        ctx,
                        keyword.value,
                        "backend capability metadata declares the bits kernel "
                        "without the sets ablation kernel; register both in "
                        "BackendInfo.kernels",
                    )

    @staticmethod
    def _resolve_kernels(
        node: ast.AST, aliases: Dict[str, Tuple[str, ...]]
    ) -> Optional[Tuple[str, ...]]:
        """Kernel names declared by a ``kernels=`` value, or None if opaque."""
        if isinstance(node, ast.Name) and node.id in aliases:
            return aliases[node.id]
        if isinstance(node, (ast.Tuple, ast.List)):
            tokens: List[str] = []
            for element in node.elts:
                token = _kernel_token(element)
                if token is None:
                    return None
                tokens.append(token)
            return tuple(tokens)
        return None
