"""Tests for :mod:`repro.devtools.lint` — the reprolint invariant analyzer.

Covers the rule framework (registry, suppressions, baseline round-trips,
deterministic ordering), one firing fixture per shipped rule (RPL001 to
RPL004 plus the RPL000 parse-failure path), the CLI command, and the
meta-test asserting the repository itself is clean of non-baselined
findings — the contract the CI ``invariants`` job enforces.
"""

import json
import pickle
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import (
    Baseline,
    BaselineError,
    Finding,
    PARSE_ERROR_CODE,
    all_rules,
    render_json,
    render_text,
    rule_table,
    run_lint,
)
from repro.mbb.context import SearchAborted, SearchContext

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_fixture(tmp_path, relpath, source, rules=(), baseline=None):
    """Write ``source`` at ``relpath`` under a scratch root and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([relpath], root=str(tmp_path), rules=rules, baseline=baseline)


def codes(result):
    return [finding.code for finding in result.new_findings]


# ----------------------------------------------------------------------
# framework: registry, ordering, parse failures
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_registered_rules(self):
        assert [rule.code for rule in all_rules()] == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
            "RPL009",
        ]

    def test_rule_subset_selection(self):
        assert [rule.code for rule in all_rules(["RPL004", "rpl001"])] == [
            "RPL001",
            "RPL004",
        ]

    def test_unknown_rule_code_raises(self):
        with pytest.raises(ValueError, match="RPL999"):
            all_rules(["RPL999"])

    def test_rule_table_lists_descriptions(self):
        table = rule_table()
        assert [row[0] for row in table] == [
            "RPL001",
            "RPL002",
            "RPL003",
            "RPL004",
            "RPL005",
            "RPL006",
            "RPL007",
            "RPL008",
            "RPL009",
        ]
        assert all(row[1] and row[2] for row in table)

    def test_every_rule_carries_explain_metadata(self):
        for rule in all_rules():
            assert rule.rationale, f"{rule.code} has no rationale for --explain"
            assert rule.example, f"{rule.code} has no example for --explain"

    def test_parse_failure_reports_rpl000(self, tmp_path):
        result = lint_fixture(tmp_path, "src/repro/broken.py", "def oops(:\n")
        assert codes(result) == [PARSE_ERROR_CODE]
        assert "does not parse" in result.new_findings[0].message

    def test_findings_are_deterministically_ordered(self, tmp_path):
        source = """
        import time

        def late():
            return time.perf_counter()

        def early():
            return time.time()
        """
        first = lint_fixture(tmp_path, "src/repro/clocks.py", source)
        second = lint_fixture(tmp_path, "src/repro/clocks.py", source)
        assert [f.location for f in first.new_findings] == [
            f.location for f in second.new_findings
        ]
        lines = [f.line for f in first.new_findings]
        assert lines == sorted(lines)

    def test_missing_lint_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/dir"], root=str(tmp_path))


# ----------------------------------------------------------------------
# RPL001 — budget checkpoint coverage
# ----------------------------------------------------------------------
class TestBudgetCheckpointRule:
    FIXTURE = """
    import time

    def ladder(context):
        while True:
            if context.deadline is not None and time.perf_counter() > context.deadline:
                break
            remaining = context.node_budget - context.stats.nodes
            if remaining <= 0:
                break
    """

    def test_fires_on_hand_rolled_budget_math(self, tmp_path):
        result = lint_fixture(
            tmp_path, "src/repro/mbb/fixture.py", self.FIXTURE, rules=["RPL001"]
        )
        assert codes(result) == ["RPL001", "RPL001"]
        messages = [f.message for f in result.new_findings]
        assert any("deadline" in message for message in messages)
        assert any("node_budget" in message for message in messages)

    def test_scoped_to_search_modules(self, tmp_path):
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", self.FIXTURE, rules=["RPL001"]
        )
        assert codes(result) == []

    def test_context_module_is_exempt(self, tmp_path):
        result = lint_fixture(
            tmp_path, "src/repro/mbb/context.py", self.FIXTURE, rules=["RPL001"]
        )
        assert codes(result) == []

    def test_none_guards_and_keywords_pass(self, tmp_path):
        source = """
        def fine(context, config):
            if context.deadline is not None:
                context.checkpoint()
            return make_context(node_budget=config.node_budget)
        """
        result = lint_fixture(
            tmp_path, "src/repro/cores/fixture.py", source, rules=["RPL001"]
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL002 — determinism discipline
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_wall_clock_fires_outside_allowlist(self, tmp_path):
        source = """
        import time

        def stamp():
            return time.perf_counter()
        """
        result = lint_fixture(
            tmp_path, "src/repro/workloads/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == ["RPL002"]
        assert "wall-clock" in result.new_findings[0].message

    def test_wall_clock_from_import_alias_fires(self, tmp_path):
        source = """
        from time import perf_counter as clock

        def stamp():
            return clock()
        """
        result = lint_fixture(
            tmp_path, "src/repro/workloads/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == ["RPL002"]

    @pytest.mark.parametrize(
        "relpath",
        [
            "src/repro/mbb/context.py",
            "src/repro/api/engine.py",
            "src/repro/bench/fixture.py",
            "tests/fixture.py",
        ],
    )
    def test_wall_clock_allowlist(self, tmp_path, relpath):
        source = """
        import time

        def stamp():
            return time.perf_counter()
        """
        result = lint_fixture(tmp_path, relpath, source, rules=["RPL002"])
        assert codes(result) == []

    def test_unseeded_random_fires(self, tmp_path):
        source = """
        import random

        def pick(items):
            return random.choice(items)
        """
        result = lint_fixture(
            tmp_path, "src/repro/workloads/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == ["RPL002"]
        assert "random.Random(seed)" in result.new_findings[0].message

    def test_seeded_random_instance_passes(self, tmp_path):
        source = """
        import random

        def pick(items, seed):
            return random.Random(seed).choice(items)
        """
        result = lint_fixture(
            tmp_path, "src/repro/workloads/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == []

    def test_set_iteration_into_append_fires_in_kernel_modules(self, tmp_path):
        source = """
        def order(graph):
            out = []
            for vertex in set(graph.vertices):
                out.append(vertex)
            return out
        """
        result = lint_fixture(
            tmp_path, "src/repro/cores/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == ["RPL002"]
        assert "ordering-sensitive" in result.new_findings[0].message

    def test_list_comprehension_over_set_algebra_fires(self, tmp_path):
        source = """
        def order(left, right):
            return [vertex for vertex in set(left) & set(right)]
        """
        result = lint_fixture(
            tmp_path, "src/repro/graph/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == ["RPL002"]

    def test_sorted_set_iteration_passes(self, tmp_path):
        source = """
        def order(graph):
            out = []
            for vertex in sorted(set(graph.vertices), key=repr):
                out.append(vertex)
            return out
        """
        result = lint_fixture(
            tmp_path, "src/repro/cores/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == []

    def test_order_insensitive_set_iteration_passes(self, tmp_path):
        source = """
        def best(graph):
            best = 0
            for vertex in set(graph.vertices):
                best = max(best, vertex.degree)
            return best
        """
        result = lint_fixture(
            tmp_path, "src/repro/cores/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == []

    def test_set_iteration_outside_kernel_modules_passes(self, tmp_path):
        source = """
        def order(items):
            out = []
            for item in set(items):
                out.append(item)
            return out
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL002"]
        )
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL003 — kernel parity
# ----------------------------------------------------------------------
class TestKernelParityRule:
    def test_bits_dispatch_without_sets_fires(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"

        def solve(graph, kernel=KERNEL_BITS):
            if kernel == KERNEL_BITS:
                return bits_path(graph)
            raise ValueError(kernel)
        """
        result = lint_fixture(
            tmp_path, "src/repro/mbb/fixture.py", source, rules=["RPL003"]
        )
        assert codes(result) == ["RPL003"]
        assert "sets" in result.new_findings[0].message

    def test_bits_dispatch_with_sets_counterpart_passes(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"
        KERNEL_SETS = "sets"

        def solve(graph, kernel=KERNEL_BITS):
            if kernel == KERNEL_BITS:
                return bits_path(graph)
            if kernel == KERNEL_SETS:
                return sets_path(graph)
            raise ValueError(kernel)
        """
        result = lint_fixture(
            tmp_path, "src/repro/mbb/fixture.py", source, rules=["RPL003"]
        )
        assert codes(result) == []

    def test_default_forwarding_without_dispatch_passes(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"

        def solve(graph, kernel=KERNEL_BITS):
            return inner(graph, kernel=kernel)
        """
        result = lint_fixture(
            tmp_path, "src/repro/bench/fixture.py", source, rules=["RPL003"]
        )
        assert codes(result) == []

    def test_bits_only_backend_metadata_fires(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"

        def register():
            register_backend(info(name="x", kernels=(KERNEL_BITS,)))
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL003"]
        )
        assert codes(result) == ["RPL003"]
        assert "BackendInfo.kernels" in result.new_findings[0].message

    def test_bits_only_metadata_through_alias_fires(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"
        _ONLY_BITS = (KERNEL_BITS,)

        def register():
            register_backend(info(name="x", kernels=_ONLY_BITS))
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL003"]
        )
        assert codes(result) == ["RPL003"]

    def test_both_kernel_metadata_passes(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"
        KERNEL_SETS = "sets"
        _BOTH = (KERNEL_BITS, KERNEL_SETS)

        def register():
            register_backend(info(name="x", kernels=_BOTH))
            register_backend(info(name="y", kernels=("bits", "sets")))
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL003"]
        )
        assert codes(result) == []

    def test_scoped_to_library_code(self, tmp_path):
        source = """
        KERNEL_BITS = "bits"

        def helper(kernel):
            return kernel == KERNEL_BITS
        """
        result = lint_fixture(tmp_path, "tests/fixture.py", source, rules=["RPL003"])
        assert codes(result) == []


# ----------------------------------------------------------------------
# RPL004 — pool safety
# ----------------------------------------------------------------------
class TestPoolSafetyRule:
    def test_submit_lambda_fires(self, tmp_path):
        source = """
        def fan_out(pool, graphs):
            return [pool.submit(lambda: solve(graph)) for graph in graphs]
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]
        assert "module-level" in result.new_findings[0].message

    def test_submit_locally_defined_callable_fires(self, tmp_path):
        source = """
        def fan_out(pool, graph):
            def work():
                return solve(graph)

            return pool.submit(work)
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]

    def test_submit_lambda_payload_fires(self, tmp_path):
        source = """
        def fan_out(pool, graph):
            return pool.submit(solve, lambda: graph)
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]
        assert "payload" in result.new_findings[0].message

    def test_submit_module_level_callable_passes(self, tmp_path):
        source = """
        def solve_json(payload):
            return payload

        def fan_out(pool, requests):
            return [pool.submit(solve_json, request.to_json()) for request in requests]
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == []

    def test_submit_synchronized_value_payload_fires(self, tmp_path):
        source = """
        import multiprocessing

        def fan_out(pool, positions):
            return pool.submit(solve, positions, multiprocessing.Value("q", 0))
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]
        assert "initargs inheritance" in result.new_findings[0].message

    def test_submit_synchronized_array_keyword_payload_fires(self, tmp_path):
        source = """
        from multiprocessing import RawArray

        def fan_out(pool, task):
            return pool.submit(solve, task, shared=RawArray("b", 8))
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]

    def test_synchronized_ctor_outside_payload_passes(self, tmp_path):
        source = """
        import multiprocessing

        def make_pool(workers, init):
            best = multiprocessing.Value("q", 0)
            pool = Executor(max_workers=workers, initializer=init, initargs=(best,))
            return pool.submit(solve, "payload")
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == []

    def test_cancel_hook_lambda_in_library_fires(self, tmp_path):
        source = """
        def run(context, target):
            context.cancel_hook = lambda: context.best_side >= target
        """
        result = lint_fixture(
            tmp_path, "src/repro/mbb/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]
        assert "unpicklable" in result.new_findings[0].message

    def test_cancel_hook_keyword_lambda_fires(self, tmp_path):
        source = """
        def run(target):
            return make_context(cancel_hook=lambda: target())
        """
        result = lint_fixture(
            tmp_path, "src/repro/mbb/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]

    def test_cancel_hook_lambda_in_tests_passes(self, tmp_path):
        source = """
        def test_cancel(context):
            context.cancel_hook = lambda: True
        """
        result = lint_fixture(tmp_path, "tests/fixture.py", source, rules=["RPL004"])
        assert codes(result) == []

    def test_cancel_hook_callable_object_passes(self, tmp_path):
        source = """
        class TargetReached:
            def __init__(self, context, target):
                self.context = context
                self.target = target

            def __call__(self):
                return self.context.best_side >= self.target

        def run(context, target):
            context.cancel_hook = TargetReached(context, target)
        """
        result = lint_fixture(
            tmp_path, "src/repro/mbb/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == []

    def test_nested_shm_attach_callable_fires(self, tmp_path):
        source = """
        def make_worker(name, fingerprint):
            def attach():
                return attach_shared_memory(name)

            return attach
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]
        assert "attach" in result.new_findings[0].message
        assert "module level" in result.new_findings[0].message

    def test_nested_from_shm_callable_fires(self, tmp_path):
        source = """
        def handoff(handle):
            def receive():
                return PreparedGraph.from_shm(handle.name, handle.fingerprint)

            return receive
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == ["RPL004"]

    def test_module_level_attach_callable_passes(self, tmp_path):
        source = """
        def attach_prepared(name, fingerprint):
            return PreparedGraph.from_shm(name, fingerprint)

        class Engine:
            def receive(self, handle):
                return PreparedGraph.from_shm(handle.name, handle.fingerprint)
        """
        result = lint_fixture(
            tmp_path, "src/repro/api/fixture.py", source, rules=["RPL004"]
        )
        assert codes(result) == []

    def test_nested_attach_callable_in_tests_passes(self, tmp_path):
        source = """
        def test_attach(handle):
            def receive():
                return PreparedGraph.from_shm(handle.name, handle.fingerprint)

            assert receive() is not None
        """
        result = lint_fixture(tmp_path, "tests/fixture.py", source, rules=["RPL004"])
        assert codes(result) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SOURCE = """
    import time

    def stamp():
        return time.perf_counter(){comment}
    """

    def test_disable_comment_suppresses_on_its_line(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            "src/repro/workloads/fixture.py",
            self.SOURCE.format(comment="  # reprolint: disable=RPL002"),
        )
        assert codes(result) == []
        assert result.suppressed == 1

    def test_disable_all_suppresses_every_code(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            "src/repro/workloads/fixture.py",
            self.SOURCE.format(comment="  # reprolint: disable=all"),
        )
        assert codes(result) == []
        assert result.suppressed == 1

    def test_mismatched_code_does_not_suppress(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            "src/repro/workloads/fixture.py",
            self.SOURCE.format(comment="  # reprolint: disable=RPL001"),
        )
        assert codes(result) == ["RPL002"]
        assert result.suppressed == 0

    def test_suppression_is_per_line(self, tmp_path):
        source = """
        import time

        def stamp():
            a = time.perf_counter()  # reprolint: disable=RPL002
            return a + time.perf_counter()
        """
        result = lint_fixture(tmp_path, "src/repro/workloads/fixture.py", source)
        assert codes(result) == ["RPL002"]
        assert result.suppressed == 1


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def finding(self, message="m", line=1):
        return Finding(
            path="src/x.py", line=line, column=1, code="RPL002", message=message
        )

    def test_split_absorbs_baselined_counts_only(self):
        baseline = Baseline.from_findings([self.finding()])
        new, accepted = baseline.split([self.finding(line=3), self.finding(line=9)])
        assert len(accepted) == 1 and len(new) == 1
        # The earlier occurrence is absorbed; the extra one is new.
        assert accepted[0].line == 3 and new[0].line == 9

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings([self.finding(), self.finding(line=5)])
        baseline.save(str(path))
        assert Baseline.load(str(path)) == baseline
        # The document itself is valid, versioned JSON.
        document = json.loads(path.read_text())
        assert document["version"] == 1
        assert document["entries"][0]["count"] == 2

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "absent.json"))) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(BaselineError):
            Baseline.load(str(path))
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(BaselineError):
            Baseline.load(str(path))

    def test_run_lint_with_baseline_reports_zero_new(self, tmp_path):
        source = """
        import time

        def stamp():
            return time.perf_counter()
        """
        dirty = lint_fixture(tmp_path, "src/repro/workloads/fixture.py", source)
        assert len(dirty.new_findings) == 1
        baseline = Baseline.from_findings(dirty.new_findings)
        clean = lint_fixture(
            tmp_path, "src/repro/workloads/fixture.py", source, baseline=baseline
        )
        assert clean.new_findings == []
        assert len(clean.baselined_findings) == 1
        assert clean.exit_code == 0


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
class TestReports:
    def test_text_report_lists_locations_and_summary(self, tmp_path):
        source = """
        import time

        def stamp():
            return time.perf_counter()
        """
        result = lint_fixture(tmp_path, "src/repro/workloads/fixture.py", source)
        text = render_text(result)
        assert "src/repro/workloads/fixture.py:5:12: RPL002" in text
        assert "1 new finding" in text

    def test_json_report_schema(self, tmp_path):
        source = """
        import time

        def stamp():
            return time.perf_counter()
        """
        result = lint_fixture(tmp_path, "src/repro/workloads/fixture.py", source)
        document = json.loads(render_json(result))
        assert document["schema_version"] == 1
        assert document["exit_code"] == 1
        assert document["new_findings"][0]["code"] == "RPL002"
        assert document["new_findings"][0]["path"] == "src/repro/workloads/fixture.py"


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestLintCli:
    SOURCE = textwrap.dedent(
        """
        import time

        def stamp():
            return time.perf_counter()
        """
    )

    def write_project(self, tmp_path):
        target = tmp_path / "src" / "repro" / "workloads" / "fixture.py"
        target.parent.mkdir(parents=True)
        target.write_text(self.SOURCE, encoding="utf-8")

    def test_lint_exits_nonzero_on_new_findings(self, tmp_path, capsys):
        self.write_project(tmp_path)
        assert main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPL002" in out

    def test_lint_json_output_is_valid(self, tmp_path, capsys):
        self.write_project(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["exit_code"] == 1

    def test_write_baseline_then_clean_run(self, tmp_path, capsys):
        self.write_project(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "reprolint-baseline.json").exists()
        capsys.readouterr()
        assert main(["lint", "--root", str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # --no-baseline surfaces the findings again.
        assert main(["lint", "--root", str(tmp_path), "--no-baseline"]) == 1

    def test_rules_subset(self, tmp_path):
        self.write_project(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--rules", "RPL001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL002", "RPL003", "RPL004"):
            assert code in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        self.write_project(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--rules", "RPL999"]) == 2
        assert "RPL999" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the satellite fixes the rules now pin
# ----------------------------------------------------------------------
class TestSatelliteFixes:
    def test_search_context_with_hooks_pickles(self):
        from repro.mbb.size_constrained import (
            _AnyHook,
            _ParentCancelled,
            _TargetSideReached,
        )

        parent = SearchContext()
        child = SearchContext()
        child.cancel_hook = _AnyHook(
            _TargetSideReached(child, 3), _ParentCancelled(parent)
        )
        clone = pickle.loads(pickle.dumps(child))
        assert clone.cancel_hook() is False
        parent.cancelled = True
        assert child.cancel_hook() is True

    def test_checkpoint_enforces_node_budget_on_request(self):
        context = SearchContext(node_budget=2)
        context.stats.record_node(0)
        context.checkpoint()  # default form still ignores the node budget
        context.stats.record_node(1)
        with pytest.raises(SearchAborted):
            context.checkpoint(enforce_node_budget=True)
        assert context.aborted

    def test_remaining_budget_helpers(self):
        unbounded = SearchContext()
        assert unbounded.remaining_node_budget() is None
        assert unbounded.remaining_time_budget() is None
        context = SearchContext(node_budget=5, time_budget=100.0)
        context.stats.record_node(0)
        context.stats.record_node(1)
        assert context.remaining_node_budget() == 3
        assert 0.0 < context.remaining_time_budget() <= 100.0

    def test_timed_stat_accumulates(self):
        context = SearchContext()
        with context.timed_stat("prepare_seconds"):
            pass
        with context.timed_stat("prepare_seconds"):
            pass
        assert context.stats.prepare_seconds >= 0.0


# ----------------------------------------------------------------------
# the meta-test: the repository itself stays clean
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_repo_has_zero_non_baselined_findings(self):
        baseline = Baseline.load(str(REPO_ROOT / "reprolint-baseline.json"))
        paths = [
            path
            for path in ("src", "tests", "benchmarks", "examples")
            if (REPO_ROOT / path).exists()
        ]
        result = run_lint(paths, root=str(REPO_ROOT), baseline=baseline)
        assert result.new_findings == [], render_text(result)
        assert result.checked_files > 100

    def test_checked_in_baseline_is_empty(self):
        # The goal state: every invariant violation fixed at the source,
        # nothing grandfathered.  A future staged cleanup may relax this.
        baseline = Baseline.load(str(REPO_ROOT / "reprolint-baseline.json"))
        assert len(baseline) == 0
