"""Kernel comparison — flat/bitset vs set-keyed inner loops, per stage.

Five comparisons are produced:

* **dense rows** time :func:`repro.mbb.dense.dense_mbb` with both
  branch-and-bound kernels (:data:`KERNELS`) on the Table 4 dense
  synthetic instances;
* **bridge rows** time :func:`repro.mbb.bridge.bridge_mbb` — the sparse
  framework's S2 stage — with both kernels on the largest KONECT
  stand-ins, from the same precomputed bidegeneracy order and an empty
  incumbent (the ``bd1``-style worst case where every centred subgraph
  must be peeled).  Sharing the order isolates exactly the part of the
  stage the ``kernel`` switch governs;
* **peel rows** time the bidegeneracy order itself
  (:func:`repro.cores.bicore.bicore_decomposition`) with the flat
  two-level bucket engine against the set-keyed heap ablation
  (:data:`PEEL_IMPLS`) on the same stand-ins — the stage's
  kernel-independent fixed cost that the bridge rows deliberately factor
  out;
* **subgraph rows** time vertex-centred subgraph *generation* — the
  other half of S2 — with the CSR generator
  (:func:`~repro.mbb.vertex_centred.iter_vertex_centred_subgraphs_csr`)
  against the label-keyed one, from the same precomputed bidegeneracy
  order and one shared prepared snapshot, on the same stand-ins;
* **engine cache rows** time a cold vs a warm
  :meth:`~repro.api.engine.MBBEngine.solve` of the same request against
  a fresh :class:`~repro.api.engine.PreparedGraphCache`, archiving the
  ``prepare_seconds``/``order_seconds`` stage stats that the cache hit
  collapses;
* **handoff rows** time moving one
  :class:`~repro.graph.prepared.PreparedGraph` to a pool worker with
  both transports ``solve_many`` can use: the pickle round-trip
  (serialise + deserialise every flat array) against the shared-memory
  export/attach path (:meth:`~repro.graph.prepared.PreparedGraph.to_shm`
  / :meth:`~repro.graph.prepared.PreparedGraph.from_shm`), where workers
  map the typed buffers zero-copy.  ``seconds`` is the cold cost (build
  the transport artifact *and* receive through it); ``warm_seconds`` is
  the receive-only cost every additional worker or batch pays once the
  blob/segment exists; ``bytes`` is the wire size of each transport.
  The cold export pays one extra full copy into the segment, so it only
  pays off from the second consumer on — the pool-relevant numbers are
  ``warm_speedup`` (attach vs deserialise) and ``roundtrip_vs_attach``
  (what a per-task pickling pool pays vs an attaching worker).

Each pair runs the same algorithm with the same tie-breaking, so dense
rows find the same optimum (node counts differ by a few percent), bridge
rows keep the same surviving subgraphs, peel rows produce the identical
vertex order, and subgraph rows yield byte-identical member-set families;
the time ratios therefore isolate the data-structure effect: hash-set
intersections, dict-keyed peels and tuple heap entries vs flat int arrays
and single ``&``/``bit_count`` operations on packed integers.

The resulting rows are archived as ``BENCH_kernels.json`` at the repository
root so regressions of the flat/bitset implementations are caught by
comparing against the committed baseline.
"""

from __future__ import annotations

import gc
import json
import pickle
from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table, run_backend, timed
from repro.graph.buffers import buffer_to_bytes
from repro.graph.prepared import PreparedGraph
from repro.cores.bicore import IMPL_BUCKET, IMPL_HEAP, bicore_decomposition
from repro.cores.orders import ORDER_BIDEGENERACY
from repro.mbb.bridge import bridge_mbb
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.heuristics import degree_heuristic
from repro.mbb.vertex_centred import (
    iter_vertex_centred_subgraphs,
    iter_vertex_centred_subgraphs_csr,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.synthetic import DenseCase, dense_case_graph

#: Table 4-style cases used for the comparison: doubling sides at the two
#: densities where the paper's dense experiments start and end.  The
#: side-48 case was added once the bitset kernel cut the 40x40 time by
#: >= 3x, extending the measured range beyond the original side-40 cap.
DEFAULT_KERNEL_CASES = (
    DenseCase(side=16, density=0.85),
    DenseCase(side=24, density=0.85),
    DenseCase(side=32, density=0.85),
    DenseCase(side=32, density=0.70),
    DenseCase(side=40, density=0.85),
    DenseCase(side=48, density=0.85),
)

#: Reduced dense sweep for CI smoke runs (seconds, not minutes).
SMOKE_KERNEL_CASES = (
    DenseCase(side=16, density=0.85),
    DenseCase(side=24, density=0.85),
)

#: KONECT stand-ins used for the bridging-stage comparison: the largest /
#: densest tough datasets, where S2 scans the most non-trivial centred
#: subgraphs.
DEFAULT_BRIDGE_DATASETS = (
    "jester",
    "flickr-groupmemberships",
    "discogs-style",
    "reuters",
    "gottron-trec",
)

#: Single small stand-in for CI smoke runs of the bridge comparison.
SMOKE_BRIDGE_DATASETS = ("unicodelang",)

#: Stand-ins for the bidegeneracy-peel comparison: the same largest tough
#: datasets the bridge rows use, where the ``N_{<=2}`` volume ``M`` is
#: greatest and the ordering overhead dominated the bridging stage before
#: the flat bucket engine landed.
DEFAULT_PEEL_DATASETS = DEFAULT_BRIDGE_DATASETS

#: Single small stand-in for CI smoke runs of the peel comparison.
SMOKE_PEEL_DATASETS = ("unicodelang",)

#: Stand-ins for the centred-subgraph generation comparison: the same
#: largest tough datasets, where S2 slices the most members per centre.
DEFAULT_SUBGRAPH_DATASETS = DEFAULT_BRIDGE_DATASETS

#: Single small stand-in for CI smoke runs of the subgraph comparison.
SMOKE_SUBGRAPH_DATASETS = ("unicodelang",)

#: Stand-ins for the cold-vs-warm engine cache comparison: mid-size
#: graphs the sparse backend solves to optimality in well under a
#: second, so the cache effect is not drowned by exhaustive search.
DEFAULT_ENGINE_CACHE_DATASETS = ("jester", "escorts")

#: Single small stand-in for CI smoke runs of the engine cache row.
SMOKE_ENGINE_CACHE_DATASETS = ("unicodelang",)

#: Stand-ins for the prepared-snapshot handoff comparison: the same
#: largest tough datasets, where the flat arrays a pool worker must
#: receive are biggest and the pickle round-trip hurts most.
DEFAULT_HANDOFF_DATASETS = DEFAULT_BRIDGE_DATASETS

#: Single small stand-in for CI smoke runs of the handoff comparison.
SMOKE_HANDOFF_DATASETS = ("unicodelang",)

#: Stand-ins for the parallel-S3 comparison: the same five largest tough
#: datasets, where the verification stage holds the most surviving
#: subgraphs to fan out.
DEFAULT_PARALLEL_S3_DATASETS = DEFAULT_BRIDGE_DATASETS

#: Single small stand-in for CI smoke runs of the parallel-S3 rows.
SMOKE_PARALLEL_S3_DATASETS = ("unicodelang",)

#: Worker counts the parallel-S3 rows sweep (1 = the serial baseline).
DEFAULT_PARALLEL_S3_WORKERS = (1, 2, 4, 8)

#: Reduced worker sweep for CI smoke runs.
SMOKE_PARALLEL_S3_WORKERS = (1, 2)

#: Transports compared by the handoff rows: pickling the whole prepared
#: bundle per worker (ablation baseline) vs exporting one shared-memory
#: segment that every worker attaches zero-copy (what ``solve_many``
#: uses by default).
HANDOFF_PICKLE = "pickle"
HANDOFF_SHM = "shm"
HANDOFF_TRANSPORTS = (HANDOFF_PICKLE, HANDOFF_SHM)

KERNELS = (KERNEL_SETS, KERNEL_BITS)

#: Centred-subgraph generators compared by the subgraph rows: label-keyed
#: position dicts (ablation baseline) vs the flat CSR walker (default).
GENERATOR_LABELS = "labels"
GENERATOR_CSR = "csr"
SUBGRAPH_GENERATORS = (GENERATOR_LABELS, GENERATOR_CSR)

#: Peel engines compared by the peel rows: set-keyed heap (baseline
#: ablation) vs the flat two-level bucket engine (default).
PEEL_IMPLS = (IMPL_HEAP, IMPL_BUCKET)


def run_kernel_case(
    case: DenseCase,
    *,
    instances: int = 2,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time both kernels on one dense case, averaged over instances."""
    rows: List[Dict[str, object]] = []
    for kernel in KERNELS:
        times: List[float] = []
        sides: List[int] = []
        nodes: List[int] = []
        timed_out = False
        for instance in range(instances):
            graph = dense_case_graph(case, instance)
            result, elapsed = run_backend(
                graph,
                "dense",
                kernel=kernel,
                time_budget=time_budget,
                initial_best=degree_heuristic(graph),
            )
            times.append(elapsed)
            sides.append(result.side_size)
            nodes.append(result.stats.nodes)
            if not result.optimal:
                timed_out = True
        rows.append(
            {
                "stage": "dense",
                "size": f"{case.side}x{case.side}",
                "density": case.density,
                "kernel": kernel,
                "seconds": mean(times),
                "nodes": max(nodes),
                "mbb_side": max(sides),
                "timed_out": timed_out,
            }
        )
    return rows


def run_bridge_case(
    dataset: str,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time the bridging stage (S2) with both kernels on one stand-in.

    The bidegeneracy order and the prepared snapshot — the
    kernel-independent fixed costs of the stage — are computed once and
    shared, so the measured time is the per-subgraph work the ``kernel``
    switch actually governs: member-set slicing, the core-decomposition
    peel, the degeneracy test and the local heuristic.  The incumbent
    starts empty (the ``bd1`` worst case: no size test kills a subgraph
    for free).  Each kernel is run ``repeats`` times and the minimum is
    reported, since these are sub-second measurements.
    """
    graph = load_dataset(dataset)
    prepared = PreparedGraph.prepare(graph)
    # The memoised order object (not a copy): its identity keys the
    # snapshot's order-view memoisation, so the position-space view is
    # built once here and shared by every timed repeat — it is part of
    # the stage's shared fixed input, exactly like the order itself.
    order = prepared.search_order(ORDER_BIDEGENERACY)
    prepared.order_view(order)
    rows: List[Dict[str, object]] = []
    for kernel in KERNELS:
        completed_seconds = float("inf")
        aborted_seconds = float("inf")
        survivors = 0
        side = 0
        for _ in range(max(1, repeats)):
            context = SearchContext(time_budget=time_budget)
            outcome, elapsed = timed(
                bridge_mbb,
                graph,
                context,
                kernel=kernel,
                total_order=order,
                prepared=prepared,
            )
            # Every archived column (seconds included) comes from completed
            # repeats only, so the row never mixes a full measurement with
            # a partial scan; aborted timings are the fallback when every
            # repeat blew the budget, and only then is timed_out reported.
            if context.aborted:
                aborted_seconds = min(aborted_seconds, elapsed)
            else:
                completed_seconds = min(completed_seconds, elapsed)
                survivors = len(outcome.surviving)
                side = context.best_side
        all_aborted = completed_seconds == float("inf")
        rows.append(
            {
                "stage": "bridge",
                "size": dataset,
                "density": round(graph.density, 5),
                "kernel": kernel,
                "seconds": aborted_seconds if all_aborted else completed_seconds,
                "survivors": survivors,
                "mbb_side": side,
                "timed_out": all_aborted,
            }
        )
    return rows


def run_bridge_comparison(
    datasets: Sequence[str] = DEFAULT_BRIDGE_DATASETS,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all bridging-stage rows, one per (dataset, kernel)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_bridge_case(dataset, repeats=repeats, time_budget=time_budget)
        )
    return rows


def run_peel_case(
    dataset: str,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time the bidegeneracy peel with both engines on one stand-in.

    Each engine computes the full decomposition end to end — including the
    ``N_{<=2}`` materialisation it consumes (dict-of-sets for the heap,
    CSR flat arrays for the bucket) — because that whole pipeline is the
    "bidegeneracy-order cost" a solve actually pays; the engines share
    nothing, so the ratio reflects exactly what switching ``impl=`` buys.
    The minimum over ``repeats`` runs is reported (sub-second
    measurements); ``time_budget`` caps the *repeat* loop per engine (the
    decomposition itself is not interruptible — it must finish to have an
    order to compare — so each engine always completes at least one run).
    Both engines must produce the identical peel order — the property the
    test suite guarantees — and the row records that the archived run
    verified it too.
    """
    graph = load_dataset(dataset)
    rows: List[Dict[str, object]] = []
    orders: Dict[str, List[object]] = {}
    for impl in PEEL_IMPLS:
        best_seconds = float("inf")
        bideg = 0
        spent = 0.0
        for _ in range(max(1, repeats)):
            (numbers, order), elapsed = timed(
                bicore_decomposition, graph, impl=impl
            )
            best_seconds = min(best_seconds, elapsed)
            bideg = max(numbers.values(), default=0)
            orders[impl] = order
            spent += elapsed
            if time_budget is not None and spent >= time_budget:
                break
        rows.append(
            {
                "stage": "peel",
                "size": dataset,
                "density": round(graph.density, 5),
                "impl": impl,
                "seconds": best_seconds,
                "vertices": graph.num_vertices,
                "bidegeneracy": bideg,
            }
        )
    orders_match = orders[IMPL_HEAP] == orders[IMPL_BUCKET]
    for row in rows:
        row["orders_match"] = orders_match
    return rows


def run_peel_comparison(
    datasets: Sequence[str] = DEFAULT_PEEL_DATASETS,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all peel rows, one per (dataset, impl)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_peel_case(dataset, repeats=repeats, time_budget=time_budget)
        )
    return rows


def run_subgraph_case(
    dataset: str,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time centred-subgraph generation with both generators on one stand-in.

    The bidegeneracy order and the prepared snapshot are computed once and
    shared (they are the inputs every S2 pass holds anyway); per timed
    repeat each generator then pays its own full pass, *including its own
    setup*: the label generator rebuilds its per-side position dicts, the
    CSR generator rebuilds the position-space order view (a fresh copy of
    the order defeats the snapshot's identity memoisation on purpose).
    That is the cold, symmetric comparison archived as ``seconds``; the
    CSR row additionally archives ``warm_seconds`` — the pass with the
    view memoised, which is what every repeated solve of one graph pays.
    An untimed verification pass first checks that both generators
    produce identical families — centres, positions and member sets —
    and the result is archived as ``families_match``.  The minimum over
    ``repeats`` runs is reported; ``time_budget`` caps the repeat loop
    per generator (each always completes at least once).
    """
    graph = load_dataset(dataset)
    prepared = PreparedGraph.prepare(graph)
    order = prepared.search_order(ORDER_BIDEGENERACY)

    def labels_family():
        return iter_vertex_centred_subgraphs(graph, order)

    def csr_family_cold():
        return iter_vertex_centred_subgraphs_csr(prepared, list(order))

    def csr_family_warm():
        return iter_vertex_centred_subgraphs_csr(prepared, order)

    # Materialise both families so a generator that stops early fails the
    # check instead of truncating the comparison.
    label_subgraphs = list(labels_family())
    csr_subgraphs = list(csr_family_cold())
    families_match = len(label_subgraphs) == len(csr_subgraphs) and all(
        a.center == b.center
        and a.position == b.position
        and a.left_members == b.left_members
        and a.right_members == b.right_members
        for a, b in zip(label_subgraphs, csr_subgraphs, strict=True)
    )
    del label_subgraphs, csr_subgraphs

    def consume(family_factory) -> int:
        return sum(sub.size for sub in family_factory())

    def best_of(family_factory) -> tuple:
        best_seconds = float("inf")
        total_size = 0
        spent = 0.0
        for _ in range(max(1, repeats)):
            total_size, elapsed = timed(consume, family_factory)
            best_seconds = min(best_seconds, elapsed)
            spent += elapsed
            if time_budget is not None and spent >= time_budget:
                break
        return best_seconds, total_size

    rows: List[Dict[str, object]] = []
    for generator, family_factory in (
        (GENERATOR_LABELS, labels_family),
        (GENERATOR_CSR, csr_family_cold),
    ):
        best_seconds, total_size = best_of(family_factory)
        row = {
            "stage": "subgraph",
            "size": dataset,
            "density": round(graph.density, 5),
            "generator": generator,
            "seconds": best_seconds,
            "subgraphs": graph.num_vertices,
            "total_size": total_size,
            "families_match": families_match,
        }
        if generator == GENERATOR_CSR:
            prepared.order_view(order)  # memoise: warm = repeated solves
            row["warm_seconds"] = best_of(csr_family_warm)[0]
        rows.append(row)
    return rows


def run_subgraph_comparison(
    datasets: Sequence[str] = DEFAULT_SUBGRAPH_DATASETS,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all subgraph-generation rows, one per (dataset, generator)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_subgraph_case(dataset, repeats=repeats, time_budget=time_budget)
        )
    return rows


def run_engine_cache_case(
    dataset: str,
    *,
    backend: str = "sparse",
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time a cold and a warm engine solve of one stand-in.

    Per repeat a fresh :class:`~repro.api.engine.PreparedGraphCache`
    backs a private engine and the identical request is solved twice, so
    the second solve hits the cache and its
    ``prepare_seconds``/``order_seconds`` stage stats collapse while the
    answer stays identical (archived as ``sides_match``).  The minimum
    cold and warm wall times over the repeats are reported — these are
    tens-of-millisecond solves, so a single pair would be noise — and
    wall time includes the request's graph materialisation, exactly what
    a repeated ``solve()`` caller pays.
    """
    from repro.api import (
        GraphSpec,
        MBBEngine,
        PreparedGraphCache,
        SolveRequest,
    )

    request = SolveRequest(
        graph=GraphSpec.dataset(dataset),
        backend=backend,
        time_budget=time_budget,
    )
    density = round(load_dataset(dataset).density, 5)
    best: Dict[str, tuple] = {}
    sides = set()
    for _ in range(max(1, repeats)):
        engine = MBBEngine(prepared_cache=PreparedGraphCache())
        for mode in ("cold", "warm"):
            report, elapsed = timed(engine.solve, request)
            sides.add(report.side_size)
            if mode not in best or elapsed < best[mode][1]:
                best[mode] = (report, elapsed)
    sides_match = len(sides) == 1
    rows: List[Dict[str, object]] = []
    for mode in ("cold", "warm"):
        report, elapsed = best[mode]
        rows.append(
            {
                "stage": "engine_cache",
                "size": dataset,
                "density": density,
                "mode": mode,
                "seconds": elapsed,
                "prepare_seconds": report.stats.get("prepare_seconds", 0.0),
                "order_seconds": report.stats.get("order_seconds", 0.0),
                "cache_hits": int(report.stats.get("prepared_cache_hits", 0)),
                "cache_misses": int(report.stats.get("prepared_cache_misses", 0)),
                "mbb_side": report.side_size,
                "timed_out": not report.optimal,
                "sides_match": sides_match,
            }
        )
    return rows


def run_engine_cache_comparison(
    datasets: Sequence[str] = DEFAULT_ENGINE_CACHE_DATASETS,
    *,
    backend: str = "sparse",
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all engine cache rows, one cold/warm pair per dataset."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_engine_cache_case(
                dataset,
                backend=backend,
                repeats=repeats,
                time_budget=time_budget,
            )
        )
    return rows


def _handoff_equal(original: PreparedGraph, received: PreparedGraph) -> bool:
    """True when a received bundle is byte-identical to the original.

    Compares the content fingerprint, the canonical vertex-key order and
    the raw bytes of every flat array (CSR adjacency plus the
    ``N_{<=2}`` pair) — the artifacts whose transfer the handoff rows
    time, and exactly what downstream peels and generators consume.
    """
    original_ptr, original_le2 = original.n_le2
    received_ptr, received_le2 = received.n_le2
    return (
        received.fingerprint == original.fingerprint
        and received.csr.keys == original.csr.keys
        and received.csr.num_left == original.csr.num_left
        and buffer_to_bytes(received.csr.indptr)
        == buffer_to_bytes(original.csr.indptr)
        and buffer_to_bytes(received.csr.indices)
        == buffer_to_bytes(original.csr.indices)
        and buffer_to_bytes(received_ptr) == buffer_to_bytes(original_ptr)
        and buffer_to_bytes(received_le2) == buffer_to_bytes(original_le2)
    )


def _pickle_round_trip(prepared: PreparedGraph) -> PreparedGraph:
    """Cold pickle transport: serialise the bundle and rebuild it."""
    return pickle.loads(pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL))


def _shm_round_trip(prepared: PreparedGraph) -> PreparedGraph:
    """Cold shm transport: export a fresh segment, attach, destroy it."""
    fresh = prepared.to_shm()
    try:
        return PreparedGraph.from_shm(fresh.name, fresh.fingerprint)
    finally:
        fresh.destroy()


def run_handoff_case(
    dataset: str,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time both prepared-snapshot handoff transports on one stand-in.

    The snapshot is prepared once with its ``N_{<=2}`` arrays forced, so
    both transports ship the identical artifact set.  Per transport the
    cold path pays the full producer+consumer round trip (``dumps`` +
    ``loads`` for pickle; ``to_shm`` + ``from_shm`` for shared memory,
    with the per-repeat segment destroyed inside the timed region so
    repeats do not accumulate segments), and the warm path pays only the
    consumer
    side against an existing blob/segment — what every *additional*
    worker attaching the same graph costs.  An untimed verification pass
    first checks that both transports reproduce the original bundle
    byte for byte (archived as ``results_match``).  The minimum over
    ``repeats`` runs is reported; ``time_budget`` caps the repeat loop
    per transport (each always completes at least once).
    """
    graph = load_dataset(dataset)
    prepared = PreparedGraph.prepare(graph)
    prepared.n_le2
    fingerprint = prepared.fingerprint

    blob = pickle.dumps(prepared, protocol=pickle.HIGHEST_PROTOCOL)

    handle = prepared.to_shm()
    try:
        results_match = _handoff_equal(prepared, pickle.loads(blob)) and (
            _handoff_equal(
                prepared, PreparedGraph.from_shm(handle.name, fingerprint)
            )
        )

        # (callable, args) pairs so the timed consumers stay module-level
        # — the same picklability discipline RPL004 demands of real pool
        # entry points.
        transports = (
            (
                HANDOFF_PICKLE,
                (_pickle_round_trip, prepared),
                (pickle.loads, blob),
                len(blob),
            ),
            (
                HANDOFF_SHM,
                (_shm_round_trip, prepared),
                (PreparedGraph.from_shm, handle.name, fingerprint),
                handle.nbytes,
            ),
        )
        rows: List[Dict[str, object]] = []
        for transport, cold, warm, nbytes in transports:
            best_cold = float("inf")
            best_warm = float("inf")
            spent = 0.0
            # Both transports churn multi-megabyte transients per repeat;
            # without pinning the collector, a cycle landing inside one
            # timed call swamps the millisecond-scale difference being
            # measured.
            gc.collect()
            gc.disable()
            try:
                for _ in range(max(1, repeats)):
                    _, cold_elapsed = timed(*cold)
                    _, warm_elapsed = timed(*warm)
                    best_cold = min(best_cold, cold_elapsed)
                    best_warm = min(best_warm, warm_elapsed)
                    spent += cold_elapsed + warm_elapsed
                    if time_budget is not None and spent >= time_budget:
                        break
            finally:
                gc.enable()
            rows.append(
                {
                    "stage": "handoff",
                    "size": dataset,
                    "density": round(graph.density, 5),
                    "transport": transport,
                    "seconds": best_cold,
                    "warm_seconds": best_warm,
                    "bytes": nbytes,
                    "vertices": graph.num_vertices,
                    "results_match": results_match,
                }
            )
        return rows
    finally:
        handle.destroy()


def run_handoff_comparison(
    datasets: Sequence[str] = DEFAULT_HANDOFF_DATASETS,
    *,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all handoff rows, one per (dataset, transport)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_handoff_case(dataset, repeats=repeats, time_budget=time_budget)
        )
    return rows


def run_parallel_s3_case(
    dataset: str,
    *,
    workers: Sequence[int] = DEFAULT_PARALLEL_S3_WORKERS,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Time the verification stage (S3) serial vs parallel on one stand-in.

    The stage is isolated the way the bridge rows isolate S2, and run in
    the same ``bd1``-style worst case: the snapshot, the bidegeneracy
    order and the *full* vertex-centred family are computed once, and
    each timed repeat re-runs only :func:`repro.mbb.verify.verify_mbb`
    from an empty incumbent — S3 must establish the optimum itself, so
    every subgraph the bounds cannot dismiss is searched.  ``workers=1``
    is the serial loop — the baseline every other worker count is
    compared against by :func:`parallel_s3_speedups` — and parallel rows
    archive whether dispatch actually happened (``s3_tasks``) plus the
    final side so ``sizes_match`` is checkable.  The minimum over
    ``repeats`` runs is reported; ``time_budget`` bounds each repeat
    through the context (an aborted repeat marks the row ``timed_out``).
    Rows carry ``cpu_count`` because the comparison is wall-clock: on a
    single-core host the parallel rows can only show dispatch overhead,
    and the archived numbers are meaningless without that context.
    """
    import os

    from repro.mbb.verify import ParallelVerifyOptions, verify_mbb

    graph = load_dataset(dataset)
    prepared = PreparedGraph.prepare(graph)
    order = prepared.search_order(ORDER_BIDEGENERACY)
    prepared.order_view(order)
    surviving = list(iter_vertex_centred_subgraphs(graph, order))
    density = round(graph.density, 5)
    cpu_count = os.cpu_count() or 1
    rows: List[Dict[str, object]] = []
    for count in workers:
        options = (
            None
            if count <= 1
            else ParallelVerifyOptions(workers=count, threshold=1)
        )
        best_seconds = float("inf")
        side = 0
        tasks = 0
        timed_out = False
        spent = 0.0
        for _ in range(max(1, repeats)):
            context = SearchContext(time_budget=time_budget)
            _, elapsed = timed(
                verify_mbb,
                surviving,
                context,
                prepared=prepared,
                order_name=ORDER_BIDEGENERACY,
                parallel=options,
            )
            best_seconds = min(best_seconds, elapsed)
            side = max(side, context.best.side_size)
            tasks = max(tasks, context.stats.s3_tasks)
            timed_out = timed_out or context.aborted
            spent += elapsed
            if time_budget is not None and spent >= time_budget:
                break
        rows.append(
            {
                "stage": "parallel_s3",
                "size": dataset,
                "density": density,
                "workers": count,
                "cpu_count": cpu_count,
                "seconds": best_seconds,
                "survivors": len(surviving),
                "s3_tasks": tasks,
                "mbb_side": side,
                "timed_out": timed_out,
            }
        )
    return rows


def run_parallel_s3_comparison(
    datasets: Sequence[str] = DEFAULT_PARALLEL_S3_DATASETS,
    *,
    workers: Sequence[int] = DEFAULT_PARALLEL_S3_WORKERS,
    repeats: int = 3,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all parallel-S3 rows, one per (dataset, worker count)."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        rows.extend(
            run_parallel_s3_case(
                dataset,
                workers=workers,
                repeats=repeats,
                time_budget=time_budget,
            )
        )
    return rows


def run_kernel_comparison(
    cases: Sequence[DenseCase] = DEFAULT_KERNEL_CASES,
    *,
    instances: int = 2,
    time_budget: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Produce all comparison rows, one per (case, kernel)."""
    rows: List[Dict[str, object]] = []
    for case in cases:
        rows.extend(
            run_kernel_case(case, instances=instances, time_budget=time_budget)
        )
    return rows


def _paired_cases(
    rows: Sequence[Dict[str, object]],
    pair_field: str,
    baseline: str,
    fast: str,
) -> List[tuple]:
    """Group rows into complete (stage, size, density) comparison pairs.

    Returns ``(stage, size, density, baseline_seconds, fast_seconds,
    baseline_row, fast_row)`` tuples, one per case in which both sides of
    the ``pair_field`` comparison are present — the shared skeleton of
    every speedup summary, so the pairing logic exists exactly once.
    """
    by_case: Dict[tuple, Dict[str, Dict[str, object]]] = {}
    for row in rows:
        key = (row.get("stage", "dense"), row["size"], row["density"])
        by_case.setdefault(key, {})[str(row[pair_field])] = row
    result: List[tuple] = []
    for (stage, size, density), pair in by_case.items():
        if baseline not in pair or fast not in pair:
            continue
        result.append(
            (
                stage,
                size,
                density,
                float(pair[baseline]["seconds"]),  # type: ignore[arg-type]
                float(pair[fast]["seconds"]),  # type: ignore[arg-type]
                pair[baseline],
                pair[fast],
            )
        )
    return result


def speedups(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-case ``sets seconds / bits seconds`` ratios.

    A pair in which either kernel timed out carries ``timed_out=True``:
    the aborted side's time is a truncated lower bound, so the ratio is a
    *lower bound on the real speedup* (when ``sets`` timed out) or
    meaningless (when ``bits`` did) rather than a measurement, and the
    committed-baseline comparison must not treat it as one.
    """
    return [
        {
            "stage": stage,
            "size": size,
            "density": density,
            "sets_seconds": sets_s,
            "bits_seconds": bits_s,
            "speedup": sets_s / bits_s if bits_s > 0 else float("inf"),
            "timed_out": bool(
                sets_row.get("timed_out") or bits_row.get("timed_out")
            ),
        }
        for stage, size, density, sets_s, bits_s, sets_row, bits_row in (
            _paired_cases(rows, "kernel", KERNEL_SETS, KERNEL_BITS)
        )
    ]


def peel_speedups(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-dataset ``heap seconds / bucket seconds`` ratios for peel rows."""
    return [
        {
            "stage": stage,
            "size": size,
            "density": density,
            "heap_seconds": heap_s,
            "bucket_seconds": bucket_s,
            "speedup": heap_s / bucket_s if bucket_s > 0 else float("inf"),
            "orders_match": bool(bucket_row.get("orders_match")),
        }
        for stage, size, density, heap_s, bucket_s, _, bucket_row in (
            _paired_cases(rows, "impl", IMPL_HEAP, IMPL_BUCKET)
        )
    ]


def subgraph_speedups(
    rows: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Per-dataset ``labels seconds / csr seconds`` ratios for subgraph rows.

    ``speedup`` is the cold, setup-inclusive ratio; ``warm_speedup`` uses
    the CSR pass with the order view already memoised (what repeated
    solves of one graph pay).
    """
    return [
        {
            "stage": stage,
            "size": size,
            "density": density,
            "labels_seconds": labels_s,
            "csr_seconds": csr_s,
            "speedup": labels_s / csr_s if csr_s > 0 else float("inf"),
            "warm_speedup": (
                labels_s / float(csr_row["warm_seconds"])  # type: ignore[arg-type]
                if float(csr_row.get("warm_seconds", 0.0)) > 0  # type: ignore[arg-type]
                else float("inf")
            ),
            "families_match": bool(csr_row.get("families_match")),
        }
        for stage, size, density, labels_s, csr_s, _, csr_row in (
            _paired_cases(rows, "generator", GENERATOR_LABELS, GENERATOR_CSR)
        )
    ]


def engine_cache_speedups(
    rows: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Per-dataset ``cold seconds / warm seconds`` ratios for cache rows."""
    return [
        {
            "stage": stage,
            "size": size,
            "density": density,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "cache_hit": int(warm_row.get("cache_hits", 0)) > 0,
            "warm_prepare_seconds": warm_row.get("prepare_seconds", 0.0),
            "sides_match": bool(warm_row.get("sides_match")),
        }
        for stage, size, density, cold_s, warm_s, _, warm_row in (
            _paired_cases(rows, "mode", "cold", "warm")
        )
    ]


def handoff_speedups(
    rows: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Per-dataset ``pickle / shm`` ratios for handoff rows.

    ``speedup`` compares the cold producer+consumer round trips;
    ``warm_speedup`` compares the consumer-only paths (one more worker
    receiving an already-exported graph); ``roundtrip_vs_attach`` is the
    steady-state operational ratio — the full pickle round trip a
    per-task pickling pool pays against the attach-only cost a worker
    pays under the exported segment (the export is amortised across the
    batch, the round trip is not); ``pickle_bytes`` / ``shm_bytes``
    archive the wire size of each transport.
    """
    return [
        {
            "stage": stage,
            "size": size,
            "density": density,
            "pickle_seconds": pickle_s,
            "shm_seconds": shm_s,
            "speedup": pickle_s / shm_s if shm_s > 0 else float("inf"),
            "roundtrip_vs_attach": (
                pickle_s / float(shm_row["warm_seconds"])  # type: ignore[arg-type]
                if float(shm_row.get("warm_seconds", 0.0)) > 0  # type: ignore[arg-type]
                else float("inf")
            ),
            "warm_speedup": (
                float(pickle_row["warm_seconds"])  # type: ignore[arg-type]
                / float(shm_row["warm_seconds"])  # type: ignore[arg-type]
                if float(shm_row.get("warm_seconds", 0.0)) > 0  # type: ignore[arg-type]
                else float("inf")
            ),
            "pickle_bytes": int(pickle_row["bytes"]),  # type: ignore[arg-type]
            "shm_bytes": int(shm_row["bytes"]),  # type: ignore[arg-type]
            "results_match": bool(shm_row.get("results_match")),
        }
        for stage, size, density, pickle_s, shm_s, pickle_row, shm_row in (
            _paired_cases(rows, "transport", HANDOFF_PICKLE, HANDOFF_SHM)
        )
    ]


def parallel_s3_speedups(
    rows: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Per-(dataset, worker-count) ``serial / parallel`` ratios.

    Grouped by hand rather than through :func:`_paired_cases` because a
    parallel-S3 case pairs one serial baseline (``workers == 1``) with
    *several* parallel rows.  ``dispatched`` records whether the pool
    actually ran (``s3_tasks > 0`` — a declined dispatch degrades to the
    serial loop and its "speedup" is just noise), ``sizes_match`` that
    the parallel stage reproduced the serial incumbent size, and a pair
    with an aborted side carries ``timed_out=True`` — its ratio is a
    truncated artifact, not a measurement.
    """
    by_case: Dict[tuple, Dict[int, Dict[str, object]]] = {}
    for row in rows:
        key = (row["size"], row["density"])
        by_case.setdefault(key, {})[int(row["workers"])] = row  # type: ignore[arg-type]
    result: List[Dict[str, object]] = []
    for (size, density), group in by_case.items():
        serial = group.get(1)
        if serial is None:
            continue
        serial_s = float(serial["seconds"])  # type: ignore[arg-type]
        for count in sorted(group):
            if count == 1:
                continue
            row = group[count]
            parallel_s = float(row["seconds"])  # type: ignore[arg-type]
            result.append(
                {
                    "stage": "parallel_s3",
                    "size": size,
                    "density": density,
                    "workers": count,
                    "serial_seconds": serial_s,
                    "parallel_seconds": parallel_s,
                    "speedup": (
                        serial_s / parallel_s if parallel_s > 0 else float("inf")
                    ),
                    "dispatched": int(row.get("s3_tasks", 0)) > 0,  # type: ignore[arg-type]
                    "sizes_match": row["mbb_side"] == serial["mbb_side"],
                    "timed_out": bool(
                        serial.get("timed_out") or row.get("timed_out")
                    ),
                }
            )
    return result


def format_kernel_comparison(
    rows: Sequence[Dict[str, object]],
    bridge_rows: Sequence[Dict[str, object]] = (),
    peel_rows: Sequence[Dict[str, object]] = (),
    subgraph_rows: Sequence[Dict[str, object]] = (),
    engine_cache_rows: Sequence[Dict[str, object]] = (),
    handoff_rows: Sequence[Dict[str, object]] = (),
    parallel_s3_rows: Sequence[Dict[str, object]] = (),
) -> str:
    """Render raw rows (per stage) plus the speedup summaries."""
    summary = speedups(list(rows) + list(bridge_rows))
    sections = [format_table(list(rows))]
    if bridge_rows:
        sections.append(format_table(list(bridge_rows)))
    if peel_rows:
        sections.append(format_table(list(peel_rows)))
    if subgraph_rows:
        sections.append(format_table(list(subgraph_rows)))
    if engine_cache_rows:
        sections.append(format_table(list(engine_cache_rows)))
    if handoff_rows:
        sections.append(format_table(list(handoff_rows)))
    if parallel_s3_rows:
        sections.append(format_table(list(parallel_s3_rows)))
    sections.append(
        format_table(summary) if summary else "(no complete kernel pairs)"
    )
    if peel_rows:
        peel_summary = peel_speedups(peel_rows)
        sections.append(
            format_table(peel_summary)
            if peel_summary
            else "(no complete peel pairs)"
        )
    if subgraph_rows:
        subgraph_summary = subgraph_speedups(subgraph_rows)
        sections.append(
            format_table(subgraph_summary)
            if subgraph_summary
            else "(no complete subgraph pairs)"
        )
    if engine_cache_rows:
        cache_summary = engine_cache_speedups(engine_cache_rows)
        sections.append(
            format_table(cache_summary)
            if cache_summary
            else "(no complete engine cache pairs)"
        )
    if handoff_rows:
        handoff_summary = handoff_speedups(handoff_rows)
        sections.append(
            format_table(handoff_summary)
            if handoff_summary
            else "(no complete handoff pairs)"
        )
    if parallel_s3_rows:
        parallel_summary = parallel_s3_speedups(parallel_s3_rows)
        sections.append(
            format_table(parallel_summary)
            if parallel_summary
            else "(no complete parallel S3 pairs)"
        )
    return "\n\n".join(sections)


def write_benchmark_json(
    rows: Sequence[Dict[str, object]],
    path: str,
    bridge_rows: Sequence[Dict[str, object]] = (),
    peel_rows: Sequence[Dict[str, object]] = (),
    subgraph_rows: Sequence[Dict[str, object]] = (),
    engine_cache_rows: Sequence[Dict[str, object]] = (),
    handoff_rows: Sequence[Dict[str, object]] = (),
    parallel_s3_rows: Sequence[Dict[str, object]] = (),
) -> None:
    """Archive comparison rows (plus speedups) as a JSON document."""
    document = {
        "rows": list(rows),
        "bridge_rows": list(bridge_rows),
        "peel_rows": list(peel_rows),
        "subgraph_rows": list(subgraph_rows),
        "engine_cache_rows": list(engine_cache_rows),
        "handoff_rows": list(handoff_rows),
        "parallel_s3_rows": list(parallel_s3_rows),
        "speedups": speedups(list(rows) + list(bridge_rows)),
        "peel_speedups": peel_speedups(peel_rows),
        "subgraph_speedups": subgraph_speedups(subgraph_rows),
        "engine_cache_speedups": engine_cache_speedups(engine_cache_rows),
        "handoff_speedups": handoff_speedups(handoff_rows),
        "parallel_s3_speedups": parallel_s3_speedups(parallel_s3_rows),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
