"""Algorithm 6: ``bridgeMBB`` — from a sparse graph to small dense subgraphs.

The bridging stage takes the residual graph left over after the heuristic
stage, computes the requested total search order (bidegeneracy by default),
slices the graph into vertex-centred subgraphs along that order and prunes
each subgraph with progressively stronger tests:

1. **size test** — a subgraph with fewer than ``best_side + 1`` vertices on
   either side cannot contain an improving balanced biclique; applied to
   the member sets before any subgraph representation is materialised;
2. **degeneracy test** — neither can one whose degeneracy is at most the
   incumbent side size;
3. **local heuristic** — the core-number greedy is run on each survivor,
   which frequently lifts the incumbent to the global optimum before any
   exhaustive search happens (the ``heuLocal`` series of Figure 4).

The subgraphs that survive are handed to ``verifyMBB`` (Algorithm 8).

With the default :data:`~repro.mbb.dense.KERNEL_BITS` kernel every
per-subgraph computation runs on :class:`~repro.graph.bitset.
IndexedBitGraph` masks: the subgraph is indexed once straight from the
member sets, the degeneracy test and the seed ranking share a single
:func:`~repro.graph.bitset.core_numbers_masks` bucket peel, the greedy runs
through :func:`~repro.mbb.heuristics.core_heuristic_bits`, and survivors
keep their bitgraph cached so the verification stage searches the same
object without re-converting.  The original adjacency-set implementation
stays selectable as :data:`~repro.mbb.dense.KERNEL_SETS` for the ablation
benchmarks; both kernels apply the same exact tests with the same
tie-breaking, so they keep the same subgraphs.

Budgets are enforced between subgraphs: each centred subgraph polls
:meth:`~repro.mbb.context.SearchContext.checkpoint`, so a deadline or
cancellation hook firing mid-stage aborts within one subgraph and the
incumbent found so far is reported with ``context.aborted`` set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.bitset import core_numbers_masks
from repro.graph.prepared import PreparedGraph, ensure_prepared_for
from repro.cores.core import core_numbers
from repro.cores.orders import ORDER_BIDEGENERACY, search_order
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.heuristics import core_heuristic, core_heuristic_bits
from repro.mbb.result import Biclique
from repro.mbb.vertex_centred import (
    VertexCentredSubgraph,
    VertexKey,
    iter_vertex_centred_subgraphs,
    iter_vertex_centred_subgraphs_csr,
)


@dataclass
class BridgeOutcome:
    """Result of the bridging stage."""

    best: Biclique
    surviving: List[VertexCentredSubgraph] = field(default_factory=list)
    local_heuristic_best: Biclique = field(default_factory=Biclique.empty)
    #: True when a budget or cancellation cut the scan short; the stage's
    #: conclusions are then best-effort, never proofs.
    aborted: bool = False

    @property
    def exhausted(self) -> bool:
        """True when every centred subgraph was *provably* pruned away.

        An aborted scan with no survivors is not exhaustion — subgraphs it
        never reached could still hold an improvement — so this stays
        ``False`` whenever :attr:`aborted` is set, and callers may treat
        ``exhausted`` as an optimality certificate.
        """
        return not self.surviving and not self.aborted


def _scan_bits(
    sub: VertexCentredSubgraph,
    target: int,
    use_core_pruning: bool,
    use_local_heuristic: bool,
) -> Optional[Biclique]:
    """Bitset prunes + local heuristic for one subgraph that passed the size test.

    Returns the local-heuristic candidate (possibly empty) when the
    subgraph survives, ``None`` when the degeneracy test killed it.  One
    :func:`core_numbers_masks` peel feeds both the degeneracy test and the
    heuristic's seed ranking; the degeneracy is cached on ``sub``.
    """
    bitgraph = sub.to_bitgraph()
    cores = None
    if use_core_pruning:
        cores = core_numbers_masks(bitgraph)
        sub.degeneracy = max(
            (value for side in cores for value in side), default=0
        )
        if sub.degeneracy < target:
            return None
    if not use_local_heuristic:
        return Biclique.empty()
    return core_heuristic_bits(bitgraph, cores=cores)


def _scan_sets(
    sub: VertexCentredSubgraph,
    target: int,
    use_core_pruning: bool,
    use_local_heuristic: bool,
) -> Optional[Biclique]:
    """Adjacency-set counterpart of :func:`_scan_bits` (``sets`` ablation).

    Also runs the bucket peel once: the degeneracy is the maximum of the
    core numbers that the local heuristic needs anyway (an earlier revision
    peeled the same subgraph twice here and a third time in the re-filter).
    """
    subgraph = sub.graph
    cores = None
    if use_core_pruning:
        cores = core_numbers(subgraph)
        sub.degeneracy = max(cores.values(), default=0)
        if sub.degeneracy < target:
            return None
    if not use_local_heuristic:
        return Biclique.empty()
    return core_heuristic(subgraph, cores=cores)


def bridge_mbb(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    order: str = ORDER_BIDEGENERACY,
    use_core_pruning: bool = True,
    use_local_heuristic: bool = True,
    kernel: str = KERNEL_BITS,
    total_order: Optional[Sequence[VertexKey]] = None,
    prepared: Optional[PreparedGraph] = None,
) -> BridgeOutcome:
    """Run the bridging stage on the (already reduced) residual graph.

    Parameters
    ----------
    graph:
        The residual graph produced by the heuristic stage.
    context:
        Shared search context carrying the incumbent found so far.  Its
        :meth:`~repro.mbb.context.SearchContext.checkpoint` is polled once
        per centred subgraph; when a budget fires the stage stops, sets
        ``context.aborted`` and returns the subgraphs scanned so far.
    order:
        Total search order; one of ``degree``, ``degeneracy``,
        ``bidegeneracy`` (the ablations ``bd4``/``bd5`` use the first two).
    use_core_pruning:
        When ``False`` the degeneracy test is skipped (``bd2`` ablation).
    use_local_heuristic:
        When ``False`` the per-subgraph greedy is skipped.
    kernel:
        :data:`~repro.mbb.dense.KERNEL_BITS` (default) runs every
        per-subgraph computation on bitmasks;
        :data:`~repro.mbb.dense.KERNEL_SETS` keeps the adjacency-set
        implementation for ablations.
    total_order:
        Optional precomputed total search order (must be the order that
        ``order`` names, over exactly this graph's vertices).  Computing
        the bidegeneracy order is the kernel-independent fixed cost of
        this stage; callers that already hold it — ``hbv_mbb``, which
        computes it once and records its wall time as the
        ``order_seconds`` stage stat, repeated solves on one residual
        graph, or the kernel benchmarks isolating the data-structure
        effect — pass it here to skip the recomputation.
    prepared:
        Optional :class:`~repro.graph.prepared.PreparedGraph` of exactly
        this graph.  The default ``bits`` kernel generates the centred
        subgraphs from its CSR snapshot
        (:func:`~repro.mbb.vertex_centred.iter_vertex_centred_subgraphs_csr`),
        preparing one on the fly when none is passed; the ``sets``
        ablation keeps the label-keyed generator.  Both generators yield
        identical subgraphs in identical order (property-tested), so the
        kernels still keep the same survivors and incumbents.
    """
    if kernel not in (KERNEL_BITS, KERNEL_SETS):
        raise InvalidParameterError(
            f"unknown kernel {kernel!r}; expected one of "
            f"{(KERNEL_BITS, KERNEL_SETS)}"
        )
    outcome = BridgeOutcome(best=context.best)
    if graph.num_vertices == 0:
        return outcome

    if prepared is not None:
        ensure_prepared_for(prepared, graph)
    scan = _scan_bits if kernel == KERNEL_BITS else _scan_sets
    if total_order is None:
        total_order = search_order(graph, order, prepared=prepared)
    else:
        # A stale order (e.g. computed before the heuristic stage's core
        # reductions shrank the graph) would otherwise surface as a bare
        # KeyError deep inside member-set construction.
        expected = {(LEFT, u) for u in graph.left_vertices()}
        expected.update((RIGHT, v) for v in graph.right_vertices())
        if len(total_order) != len(expected) or set(total_order) != expected:
            raise InvalidParameterError(
                "total_order must be a permutation of the graph's "
                "(side, label) vertex keys; it covers a different vertex set "
                "(was it computed on a pre-reduction graph?)"
            )
    if kernel == KERNEL_BITS:
        # The default pipeline walks the flat CSR snapshot; the ``sets``
        # ablation keeps the label-keyed generator so the historical
        # tuple-hashing S2 loop stays measurable.
        if prepared is None:
            prepared = PreparedGraph.prepare(graph)
        subgraphs = iter_vertex_centred_subgraphs_csr(prepared, total_order)
    else:
        subgraphs = iter_vertex_centred_subgraphs(graph, total_order)
    surviving: List[VertexCentredSubgraph] = []
    local_best = Biclique.empty()
    try:
        for sub in subgraphs:
            context.checkpoint()
            context.stats.subgraphs_generated += 1
            target = context.best_side + 1
            # Trivial size test on the member sets: nothing (bitgraph or
            # BipartiteGraph) is materialised for subgraphs it kills.
            if sub.min_side < target:
                context.stats.subgraphs_pruned += 1
                continue
            candidate = scan(
                sub, target, use_core_pruning, use_local_heuristic
            )
            if candidate is None:
                context.stats.subgraphs_pruned += 1
                continue
            if candidate.side_size > local_best.side_size:
                local_best = candidate
            if context.offer_biclique(candidate):
                context.stats.local_heuristic_side = max(
                    context.stats.local_heuristic_side, context.best_side
                )
            surviving.append(sub)
    except SearchAborted:
        # context.aborted is set; report the incumbent and whatever was
        # scanned so far so the caller can return a best-effort result.
        outcome.aborted = True

    # The incumbent may have improved while scanning; re-filter the kept
    # subgraphs with the final bound so the verification stage sees as few
    # of them as possible.  The degeneracy cached during the scan makes the
    # second pass peel-free.
    final_target = context.best_side + 1
    filtered: List[VertexCentredSubgraph] = []
    for sub in surviving:
        if sub.min_side < final_target:
            context.stats.subgraphs_pruned += 1
            continue
        if (
            use_core_pruning
            and sub.degeneracy is not None
            and sub.degeneracy < final_target
        ):
            context.stats.subgraphs_pruned += 1
            continue
        filtered.append(sub)

    outcome.best = context.best
    outcome.surviving = filtered
    outcome.local_heuristic_best = local_best
    return outcome
