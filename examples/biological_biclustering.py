#!/usr/bin/env python3
"""Biological biclustering: a maximum balanced biclique as an exact bicluster.

The sparse-graph application from the paper: gene-condition (or
protein-protein interaction) data forms a large sparse bipartite graph, and
a balanced biclique is a bicluster — a set of genes that all respond to the
same set of conditions.  The example builds a synthetic expression dataset
with an embedded co-expression module and recovers it exactly with the
sparse framework ``hbvMBB``, showing which stage of the framework finished
the job.

Run with::

    python examples/biological_biclustering.py
"""

from __future__ import annotations

import time

from repro import SparseConfig, bidegeneracy, hbv_mbb
from repro.workloads.synthetic import sparse_synthetic_graph

NUM_GENES = 900
NUM_CONDITIONS = 300
MODULE_SIZE = 9  # the embedded co-expression module (genes x conditions)


def main() -> None:
    # Gene-condition incidence: an edge means the gene is differentially
    # expressed under that condition.  Real expression data is heavy-tailed;
    # the generator mimics that and embeds a MODULE_SIZE^2 co-expression
    # module on the hub genes/conditions.
    data = sparse_synthetic_graph(
        NUM_GENES,
        NUM_CONDITIONS,
        avg_degree=3.0,
        planted_size=MODULE_SIZE,
        seed=7,
    )
    print(
        f"expression graph: {NUM_GENES} genes x {NUM_CONDITIONS} conditions, "
        f"{data.num_edges} associations (density {data.density:.5f})"
    )
    print(f"bidegeneracy δ̈ = {bidegeneracy(data)} "
          f"(the exhaustive search is confined to subgraphs of this size)")

    started = time.perf_counter()
    result = hbv_mbb(data, config=SparseConfig(time_budget=60.0))
    elapsed = time.perf_counter() - started

    print()
    print(f"maximum balanced bicluster: {result.side_size} genes x "
          f"{result.side_size} conditions")
    print(f"  solved in {elapsed:.3f}s, terminated at step {result.terminated_at} "
          f"(S1 = heuristic, S2 = bridging, S3 = verification)")
    print(f"  genes     : {sorted(result.biclique.left)}")
    print(f"  conditions: {sorted(result.biclique.right)}")
    print(f"  heuristic incumbent side: {result.stats.heuristic_side}")
    print(f"  vertex-centred subgraphs generated / pruned: "
          f"{result.stats.subgraphs_generated} / {result.stats.subgraphs_pruned}")

    assert result.biclique.is_valid_in(data)
    assert result.side_size >= MODULE_SIZE, "the planted module must be recovered"


if __name__ == "__main__":
    main()
