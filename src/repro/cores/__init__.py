"""Core and bicore decompositions, sparsity measures, and search orders.

This package implements the sparsity machinery of the paper:

* classical core numbers / degeneracy (used by the reductions of Lemma 4,
  the early-termination test of Lemma 5 and the ``bd5`` ablation);
* 2-hop neighbourhoods ``N_{<=2}`` (Definitions 1-2);
* bicore numbers, bidegeneracy ``δ̈`` and the bidegeneracy order
  (Definitions 3-5, Algorithm 7, Lemma 10) — the paper's novel sparsity
  measure;
* a uniform interface over the three total search orders compared in the
  evaluation (degree, degeneracy, bidegeneracy; Lemmas 6-8).

Vertices are addressed as ``(side, label)`` pairs where ``side`` is
:data:`repro.graph.LEFT` or :data:`repro.graph.RIGHT`, so the decomposition
works even when the two sides reuse the same labels.
"""

from repro.cores.core import (
    core_numbers,
    degeneracy,
    degeneracy_order,
    k_core,
)
from repro.cores.two_hop import (
    n2_neighbors,
    n_le2_flat,
    n_le2_neighbors,
    n_le2_sizes,
)
from repro.cores.bicore import (
    ALL_IMPLS,
    IMPL_BUCKET,
    IMPL_EXACT,
    IMPL_HEAP,
    bicore_decomposition,
    bicore_numbers,
    bidegeneracy,
    bidegeneracy_order,
    residual_bicore_numbers,
)
from repro.cores.orders import (
    ORDER_BIDEGENERACY,
    ORDER_DEGENERACY,
    ORDER_DEGREE,
    search_order,
)

__all__ = [
    "core_numbers",
    "degeneracy",
    "degeneracy_order",
    "k_core",
    "n2_neighbors",
    "n_le2_flat",
    "n_le2_neighbors",
    "n_le2_sizes",
    "ALL_IMPLS",
    "IMPL_BUCKET",
    "IMPL_EXACT",
    "IMPL_HEAP",
    "bicore_decomposition",
    "bicore_numbers",
    "bidegeneracy",
    "bidegeneracy_order",
    "residual_bicore_numbers",
    "ORDER_DEGREE",
    "ORDER_DEGENERACY",
    "ORDER_BIDEGENERACY",
    "search_order",
]
