"""Smoke tests: every example script runs end to end without errors."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    """Execute the example as ``__main__`` and require some printed output."""
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script.name} printed nothing"


def test_examples_directory_has_quickstart_plus_scenarios():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4
