"""Heuristic MBB baselines: POLS-style and SBMNAS-style local search.

The paper's ``adp1``-``adp4`` baselines replace the greedy heuristic stage
of the sparse framework with the two strongest published heuristics:

* **POLS** (Wang, Cai, Yin 2018) — a local search over *pairs*: a move adds
  a compatible (left, right) pair to the current balanced biclique, swaps a
  pair in for a pair out, or drops a pair when stuck.
* **SBMNAS** (Li, Hao, Wu 2020) — a general swap-based multiple-neighbourhood
  adaptive search where each move may add, swap or drop several vertices at
  once; the neighbourhood to explore next is chosen adaptively from recent
  success rates.

The implementations below are faithful to the published move structures
but deliberately compact: they serve as the heuristic stage of exact
pipelines (and as comparison points in Figure 4), not as contributions of
their own.  Both are deterministic given a seed and bounded by an
iteration budget.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.result import Biclique

RandomLike = Optional[int]


def _common_right(graph: BipartiteGraph, left: Set[Vertex]) -> Set[Vertex]:
    """Right vertices adjacent to every vertex of ``left`` (all of R if empty)."""
    if not left:
        return graph.right
    iterator = iter(left)
    result = set(graph.neighbors_left(next(iterator)))
    for u in iterator:
        result &= graph.neighbors_left(u)
    return result


def _common_left(graph: BipartiteGraph, right: Set[Vertex]) -> Set[Vertex]:
    """Left vertices adjacent to every vertex of ``right`` (all of L if empty)."""
    if not right:
        return graph.left
    iterator = iter(right)
    result = set(graph.neighbors_right(next(iterator)))
    for v in iterator:
        result &= graph.neighbors_right(v)
    return result


def _addable_pairs(
    graph: BipartiteGraph, a: Set[Vertex], b: Set[Vertex]
) -> List[Tuple[Vertex, Vertex]]:
    """Pairs ``(u, v)`` that can extend the balanced biclique ``(a, b)``."""
    candidate_left = _common_left(graph, b) - a
    candidate_right = _common_right(graph, a) - b
    pairs = []
    for u in candidate_left:
        for v in candidate_right & graph.neighbors_left(u):
            pairs.append((u, v))
    return pairs


def _greedy_seed(graph: BipartiteGraph, rng: random.Random) -> Tuple[Set[Vertex], Set[Vertex]]:
    """Random high-degree edge used as the initial balanced biclique."""
    if graph.num_edges == 0:
        return set(), set()
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    # Bias towards high-degree endpoints but keep some randomness.
    edges.sort(
        key=lambda e: -(graph.degree_left(e[0]) + graph.degree_right(e[1]))
    )
    u, v = edges[min(rng.randrange(1 + len(edges) // 10), len(edges) - 1)]
    return {u}, {v}


def pols(
    graph: BipartiteGraph,
    *,
    iterations: int = 2000,
    seed: RandomLike = 0,
) -> Biclique:
    """POLS-style pair-operation local search for a large balanced biclique.

    Parameters
    ----------
    iterations:
        Total number of moves (adds, swaps, drops) attempted.
    seed:
        Seed for the pseudo-random tie-breaking and perturbation.
    """
    rng = random.Random(seed)
    a, b = _greedy_seed(graph, rng)
    best = Biclique.of(a, b)
    stagnation = 0
    for _ in range(iterations):
        pairs = _addable_pairs(graph, a, b)
        if pairs:
            # Add the pair that keeps the most future pairs available,
            # breaking ties randomly.
            rng.shuffle(pairs)
            u, v = max(
                pairs,
                key=lambda p: len(graph.neighbors_left(p[0]))
                + len(graph.neighbors_right(p[1])),
            )
            a.add(u)
            b.add(v)
            stagnation = 0
        else:
            stagnation += 1
            if not a or stagnation > 3:
                # Perturb: drop a random pair (restart from an edge if empty).
                if a and b:
                    a.discard(rng.choice(sorted(a, key=repr)))
                    b.discard(rng.choice(sorted(b, key=repr)))
                if not a or not b:
                    a, b = _greedy_seed(graph, rng)
                stagnation = 0
            else:
                # Pair swap: remove the least connected pair and retry.
                if a and b:
                    u_out = min(a, key=lambda u: (graph.degree_left(u), repr(u)))
                    v_out = min(b, key=lambda v: (graph.degree_right(v), repr(v)))
                    a.discard(u_out)
                    b.discard(v_out)
        if min(len(a), len(b)) > best.side_size:
            best = Biclique.of(a, b)
    return best.balanced()


def sbmnas(
    graph: BipartiteGraph,
    *,
    iterations: int = 2000,
    seed: RandomLike = 0,
) -> Biclique:
    """SBMNAS-style multiple-neighbourhood adaptive search.

    Three neighbourhoods are available — add a pair, swap one vertex on one
    side, drop two pairs (a stronger perturbation) — and the probability of
    picking each adapts to its recent success at improving the incumbent.
    """
    rng = random.Random(seed)
    a, b = _greedy_seed(graph, rng)
    best = Biclique.of(a, b)
    weights = {"add": 1.0, "swap": 1.0, "drop": 1.0}

    def pick_move() -> str:
        total = sum(weights.values())
        threshold = rng.random() * total
        running = 0.0
        for name, weight in weights.items():
            running += weight
            if running >= threshold:
                return name
        return "add"

    for _ in range(iterations):
        move = pick_move()
        improved = False
        if move == "add":
            pairs = _addable_pairs(graph, a, b)
            if pairs:
                u, v = max(
                    pairs,
                    key=lambda p: (
                        len(graph.neighbors_left(p[0]) & _common_right(graph, a)),
                        repr(p),
                    ),
                )
                a.add(u)
                b.add(v)
                improved = True
        elif move == "swap" and a and b:
            # Swap the weakest left vertex for an outsider that keeps the
            # right side intact (mirrored for the right side at random).
            if rng.random() < 0.5:
                u_out = min(a, key=lambda u: (len(graph.neighbors_left(u) & b), repr(u)))
                replacements = _common_left(graph, b) - a
                if replacements:
                    a.discard(u_out)
                    a.add(min(replacements, key=repr))
                    improved = True
            else:
                v_out = min(b, key=lambda v: (len(graph.neighbors_right(v) & a), repr(v)))
                replacements = _common_right(graph, a) - b
                if replacements:
                    b.discard(v_out)
                    b.add(min(replacements, key=repr))
                    improved = True
        elif move == "drop" and len(a) >= 2 and len(b) >= 2:
            for _ in range(2):
                a.discard(rng.choice(sorted(a, key=repr)))
                b.discard(rng.choice(sorted(b, key=repr)))
            improved = False
        if not a or not b:
            a, b = _greedy_seed(graph, rng)
        if min(len(a), len(b)) > best.side_size:
            best = Biclique.of(a, b)
            improved = True
        # Adaptive weight update: reward successful neighbourhoods.
        weights[move] = min(5.0, max(0.2, weights[move] * (1.25 if improved else 0.9)))
    return best.balanced()
