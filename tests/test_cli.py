"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.generators import planted_balanced_biclique
from repro.graph.io import read_edge_list, write_edge_list


class TestSolveCommand:
    def test_solve_edge_list_file(self, tmp_path, capsys):
        graph = planted_balanced_biclique(15, 15, 4, background_density=0.05, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        exit_code = main(["solve", "--input", str(path), "--show-vertices"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "maximum balanced biclique side size: 4" in out
        assert "left" in out and "right" in out

    def test_solve_dataset_stand_in(self, capsys):
        exit_code = main(["solve", "--dataset", "unicodelang", "--method", "sparse"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "terminated at step" in out

    def test_solve_unknown_dataset_reports_error(self, capsys):
        exit_code = main(["solve", "--dataset", "does-not-exist"])
        err = capsys.readouterr().err
        assert exit_code == 1
        assert "error" in err

    def test_method_choices_are_validated(self):
        with pytest.raises(SystemExit):
            main(["solve", "--dataset", "unicodelang", "--method", "quantum"])

    def test_backend_flag_accepts_registry_names(self, tmp_path, capsys):
        graph = planted_balanced_biclique(10, 10, 3, background_density=0.1, seed=2)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        exit_code = main(
            ["solve", "--input", str(path), "--backend", "size-constrained"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "backend: size-constrained" in out

    def test_json_output_is_valid_report(self, tmp_path, capsys):
        graph = planted_balanced_biclique(12, 12, 4, background_density=0.1, seed=3)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        exit_code = main(["solve", "--input", str(path), "--json"])
        out = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(out)
        assert payload["side_size"] >= 4
        assert payload["optimal"] is True
        assert payload["request"]["graph"]["kind"] == "path"
        from repro.api import SolveReport

        assert SolveReport.from_json(out).side_size == payload["side_size"]

    def test_node_budget_flag(self, capsys):
        exit_code = main(
            [
                "solve",
                "--dataset",
                "moreno-crime",
                "--backend",
                "basic",
                "--node-budget",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "best effort" in out


class TestBatchCommand:
    def _requests_file(self, tmp_path, count=3):
        requests = [
            {
                "graph": {
                    "kind": "random",
                    "n_left": 8,
                    "n_right": 8,
                    "density": 0.5,
                    "seed": seed,
                },
                "backend": "dense",
                "tag": f"cell-{seed}",
            }
            for seed in range(count)
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests), encoding="utf-8")
        return path

    def test_batch_prints_reports_in_order(self, tmp_path, capsys):
        path = self._requests_file(tmp_path)
        exit_code = main(["batch", str(path), "--serial"])
        out = capsys.readouterr().out
        assert exit_code == 0
        reports = json.loads(out)
        assert [report["request"]["tag"] for report in reports] == [
            "cell-0",
            "cell-1",
            "cell-2",
        ]

    def test_batch_writes_output_file(self, tmp_path, capsys):
        path = self._requests_file(tmp_path)
        out_path = tmp_path / "reports.json"
        exit_code = main(["batch", str(path), "--serial", "--output", str(out_path)])
        assert exit_code == 0
        assert "wrote 3 reports" in capsys.readouterr().out
        reports = json.loads(out_path.read_text(encoding="utf-8"))
        assert len(reports) == 3

    def test_batch_rejects_non_array_payload(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a batch"}', encoding="utf-8")
        exit_code = main(["batch", str(path)])
        assert exit_code == 2
        assert "array" in capsys.readouterr().err

    def test_batch_surfaces_per_request_failures(self, tmp_path, capsys):
        requests = [
            {
                "graph": {
                    "kind": "random",
                    "n_left": 6,
                    "n_right": 6,
                    "density": 0.5,
                    "seed": 1,
                },
                "backend": "dense",
                "tag": "good",
            },
            {
                "graph": {
                    "kind": "random",
                    "n_left": 6,
                    "n_right": 6,
                    "density": 0.5,
                    "seed": 2,
                },
                "backend": "brute_force",
                "node_budget": 5,  # brute_force rejects budgets
                "tag": "bad",
            },
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests), encoding="utf-8")
        exit_code = main(["batch", str(path), "--serial", "--no-retry"])
        captured = capsys.readouterr()
        assert exit_code == 1
        reports = json.loads(captured.out)
        assert [(r["request"]["tag"], r["status"]) for r in reports] == [
            ("good", "ok"),
            ("bad", "error"),
        ]
        assert reports[1]["error"]["kind"] == "invalid_parameter"
        assert "bad" in captured.err
        assert "invalid_parameter" in captured.err

    def test_batch_accepts_retry_flags(self, tmp_path, capsys):
        path = self._requests_file(tmp_path, count=2)
        exit_code = main(["batch", str(path), "--serial", "--max-retries", "1"])
        assert exit_code == 0
        assert len(json.loads(capsys.readouterr().out)) == 2

    def test_batch_rejects_negative_max_retries(self, tmp_path, capsys):
        path = self._requests_file(tmp_path, count=1)
        exit_code = main(["batch", str(path), "--max-retries", "-1"])
        assert exit_code == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_batch_missing_file_is_a_clean_error(self, tmp_path, capsys):
        exit_code = main(["batch", str(tmp_path / "absent.json")])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_batch_malformed_json_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("not json {", encoding="utf-8")
        exit_code = main(["batch", str(path)])
        assert exit_code == 2
        assert "valid JSON" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_emits_batch_consumable_requests(self, capsys):
        exit_code = main(
            ["sweep", "--datasets", "unicodelang,moreno-crime", "--backends", "mvb"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(out)
        assert [entry["tag"] for entry in payload["requests"]] == [
            "unicodelang:mvb",
            "moreno-crime:mvb",
        ]

    def test_sweep_tough_expands_all_tough_stand_ins(self, capsys):
        from repro.workloads.datasets import TOUGH_DATASETS

        exit_code = main(
            ["sweep", "--datasets", "tough", "--backends", "sparse,dense"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(out)
        assert len(payload["requests"]) == 2 * len(TOUGH_DATASETS)

    def test_sweep_output_file_feeds_batch(self, tmp_path, capsys):
        sweep_path = tmp_path / "sweep.json"
        exit_code = main(
            [
                "sweep",
                "--datasets",
                "unicodelang",
                "--backends",
                "mvb",
                "--output",
                str(sweep_path),
            ]
        )
        assert exit_code == 0
        assert "wrote 1 requests" in capsys.readouterr().out
        # The generated file is directly consumable by the batch command.
        exit_code = main(["batch", str(sweep_path), "--serial"])
        out = capsys.readouterr().out
        assert exit_code == 0
        reports = json.loads(out)
        assert len(reports) == 1
        assert reports[0]["request"]["tag"] == "unicodelang:mvb"
        assert reports[0]["backend"] == "mvb"

    def test_sweep_unknown_dataset_is_clean_error(self, capsys):
        exit_code = main(["sweep", "--datasets", "nope", "--backends", "mvb"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_sweep_unknown_backend_is_clean_error(self, capsys):
        exit_code = main(["sweep", "--datasets", "unicodelang", "--backends", "warp"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err


class TestBackendsCommand:
    def test_backends_lists_registry(self, capsys):
        exit_code = main(["backends"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for name in ("dense", "sparse", "basic", "size-constrained", "extbbclq"):
            assert name in out

    def test_backends_json(self, capsys):
        exit_code = main(["backends", "--json"])
        out = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(out)
        names = {entry["name"] for entry in payload}
        assert {"dense", "sparse", "local_search"} <= names


class TestGenerateCommand:
    def test_generate_dense_graph(self, tmp_path, capsys):
        path = tmp_path / "dense.txt"
        exit_code = main(
            ["generate", str(path), "--left", "10", "--right", "12", "--density", "0.5"]
        )
        assert exit_code == 0
        graph = read_edge_list(path)
        assert graph.num_left <= 10 and graph.num_right <= 12
        assert "wrote" in capsys.readouterr().out

    def test_generate_sparse_graph(self, tmp_path):
        path = tmp_path / "sparse.txt"
        exit_code = main(
            ["generate", str(path), "--left", "30", "--right", "30", "--avg-degree", "2.0"]
        )
        assert exit_code == 0
        assert path.exists()

    def test_generate_requires_exactly_one_model(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        exit_code = main(["generate", str(path), "--left", "5", "--right", "5"])
        assert exit_code == 2
        assert "exactly one" in capsys.readouterr().err


class TestInformationCommands:
    def test_datasets_lists_all_thirty(self, capsys):
        exit_code = main(["datasets"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("\n") >= 30
        assert "jester" in out and "dblp-author" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestBenchCommand:
    @pytest.mark.bench
    def test_bench_figure6(self, capsys):
        exit_code = main(["bench", "figure6"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "bidegeneracy" in out

    def test_bench_kernels_writes_json(self, tmp_path, capsys):
        # --smoke keeps this a smoke test: two dense cases plus one
        # bridging-stage dataset plus one peel dataset (the CI workflow
        # runs the same command).
        out_path = tmp_path / "kernels.json"
        exit_code = main(
            [
                "bench",
                "kernels",
                "--smoke",
                "--time-budget",
                "0.05",
                "--write-json",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "speedup" in out or "kernel" in out
        document = json.loads(out_path.read_text(encoding="utf-8"))
        assert {row["kernel"] for row in document["rows"]} == {"bits", "sets"}
        assert all(row["stage"] == "dense" for row in document["rows"])
        # The S2 comparison ships alongside the dense rows.
        assert {row["kernel"] for row in document["bridge_rows"]} == {"bits", "sets"}
        assert all(row["stage"] == "bridge" for row in document["bridge_rows"])
        stages = {row["stage"] for row in document["speedups"]}
        assert stages == {"dense", "bridge"}
        # The bidegeneracy-peel comparison ships as peel_rows: bucket vs
        # heap engines producing the identical order.
        assert {row["impl"] for row in document["peel_rows"]} == {"bucket", "heap"}
        assert all(row["stage"] == "peel" for row in document["peel_rows"])
        assert all(row["orders_match"] is True for row in document["peel_rows"])
        assert all(
            summary["heap_seconds"] > 0 and summary["bucket_seconds"] > 0
            for summary in document["peel_speedups"]
        )

    @pytest.mark.bench
    def test_bench_kernels_full_sweep_reaches_side_48(self, tmp_path):
        out_path = tmp_path / "kernels_full.json"
        exit_code = main(
            ["bench", "kernels", "--time-budget", "0.05", "--write-json", str(out_path)]
        )
        assert exit_code == 0
        document = json.loads(out_path.read_text(encoding="utf-8"))
        # The extended dense suite reaches beyond side 40.
        assert any(row["size"] == "48x48" for row in document["rows"])

    def test_write_json_rejected_for_other_artefacts(self, capsys):
        exit_code = main(["bench", "figure6", "--write-json", "x.json"])
        assert exit_code == 2
        assert "kernels" in capsys.readouterr().err

    def test_smoke_rejected_for_other_artefacts(self, capsys):
        exit_code = main(["bench", "table4", "--smoke"])
        assert exit_code == 2
        assert "kernels" in capsys.readouterr().err
