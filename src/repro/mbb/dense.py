"""Algorithm 3: ``denseMBB`` — reduction, branch and bound for dense graphs.

The solver augments the basic enumeration with the three ingredients of the
paper's dense-graph contribution:

1. **Reductions** (Lemmas 1 and 2) applied at every node until fixpoint.
2. **Polynomial cases** (Lemma 3 / Algorithm 2): as soon as every candidate
   misses at most two neighbours on the other side, the node is handed to
   the path/cycle dynamic program instead of being branched.
3. **Triviality-last branching**: when branching is unavoidable, pick a
   vertex missing at least three neighbours; committing or discarding such
   a vertex shrinks the candidate sets quickly (worst branching factor
   ``(4, 1)``), which yields the ``O*(1.3803^n)`` bound and, on genuinely
   dense inputs, drives the search into the polynomial case within a few
   levels.

The ``branching`` parameter exposes a "naive" mode (no polynomial case, no
triviality-last selection) used by the ``bd3`` ablation of Table 6.

Two interchangeable kernels implement the inner loop:

* :data:`KERNEL_BITS` (default) — the graph is indexed into an
  :class:`~repro.graph.bitset.IndexedBitGraph` and every node carries four
  integer bitmasks; neighbourhood/candidate intersections are single ``&``
  operations and cardinalities are ``int.bit_count()`` calls.
* :data:`KERNEL_SETS` — the original adjacency-set implementation, kept for
  ablation/benchmark comparisons and as the fallback for graphs whose
  labels resist indexing.

Both kernels run the same algorithm and report through the same
:class:`~repro.mbb.context.SearchContext`; they always find the same
optimum, but their search trees (and hence node counts) can differ by a
few percent because branch-selection ties are broken in different orders.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph
from repro.mbb.bounds import is_bounded, offer_completions, offer_completions_bits
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.polynomial import (
    solve_polynomial_case,
    solve_polynomial_case_bits,
)
from repro.mbb.reductions import (
    BitNodeState,
    NodeState,
    reduce_node,
    reduce_node_bits,
)
from repro.mbb.result import Biclique, MBBResult

#: Branch on a vertex missing >= 3 neighbours (the paper's strategy).
BRANCH_TRIVIALITY_LAST = "triviality_last"
#: Branch on an arbitrary candidate and never invoke the polynomial solver.
BRANCH_NAIVE = "naive"

_BRANCHING_MODES = (BRANCH_TRIVIALITY_LAST, BRANCH_NAIVE)

#: Indexed bitmask kernel (default).
KERNEL_BITS = "bits"
#: Original adjacency-set kernel (ablation / fallback).
KERNEL_SETS = "sets"

_KERNELS = (KERNEL_BITS, KERNEL_SETS)


def _check_branching(branching: str) -> None:
    if branching not in _BRANCHING_MODES:
        raise InvalidParameterError(
            f"unknown branching mode {branching!r}; expected one of {_BRANCHING_MODES}"
        )


def _check_kernel(kernel: str) -> None:
    if kernel not in _KERNELS:
        raise InvalidParameterError(
            f"unknown kernel {kernel!r}; expected one of {_KERNELS}"
        )


# ----------------------------------------------------------------------
# set kernel
# ----------------------------------------------------------------------
def _select_branch_vertex(
    graph: BipartiteGraph, state: NodeState
) -> Optional[Tuple[str, Vertex, Set[Vertex]]]:
    """Pick the candidate vertex with the most missing neighbours (>= 3).

    Returns ``(side, vertex, neighbours_in_other_candidate_set)`` or
    ``None`` when every candidate misses at most two neighbours (i.e. the
    node is polynomially solvable).
    """
    best: Optional[Tuple[int, str, Vertex, Set[Vertex]]] = None
    for u in state.ca:
        neighbours = graph.neighbors_left(u) & state.cb
        missing = len(state.cb) - len(neighbours)
        if missing >= 3 and (best is None or missing > best[0]):
            best = (missing, "L", u, neighbours)
    for v in state.cb:
        neighbours = graph.neighbors_right(v) & state.ca
        missing = len(state.ca) - len(neighbours)
        if missing >= 3 and (best is None or missing > best[0]):
            best = (missing, "R", v, neighbours)
    if best is None:
        return None
    return best[1], best[2], best[3]


def _select_any_vertex(
    graph: BipartiteGraph, state: NodeState
) -> Optional[Tuple[str, Vertex, Set[Vertex]]]:
    """Naive branching: pick the candidate on the lagging side, any vertex."""
    prefer_left = len(state.a) <= len(state.b)
    if prefer_left and state.ca:
        u = max(state.ca, key=lambda x: (len(graph.neighbors_left(x) & state.cb), repr(x)))
        return "L", u, graph.neighbors_left(u) & state.cb
    if state.cb:
        v = max(state.cb, key=lambda x: (len(graph.neighbors_right(x) & state.ca), repr(x)))
        return "R", v, graph.neighbors_right(v) & state.ca
    if state.ca:
        u = max(state.ca, key=lambda x: (len(graph.neighbors_left(x) & state.cb), repr(x)))
        return "L", u, graph.neighbors_left(u) & state.cb
    return None


def _dense_mbb(
    graph: BipartiteGraph,
    context: SearchContext,
    state: NodeState,
    depth: int,
    branching: str,
) -> None:
    context.enter_node(depth)
    if is_bounded(context, len(state.a), len(state.b), len(state.ca), len(state.cb)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return

    reduce_node(graph, state, context)
    offer_completions(context, state.a, state.b, state.ca, state.cb)
    if is_bounded(context, len(state.a), len(state.b), len(state.ca), len(state.cb)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return
    if not state.ca or not state.cb:
        context.record_leaf(depth)
        return

    if branching == BRANCH_TRIVIALITY_LAST:
        selection = _select_branch_vertex(graph, state)
        if selection is None:
            # Lemma 3 applies: hand the node to the polynomial solver.
            context.stats.polynomial_cases += 1
            context.record_leaf(depth)
            result = solve_polynomial_case(graph, state, context)
            if result is not None:
                context.offer_biclique(result)
            return
    else:
        selection = _select_any_vertex(graph, state)
        if selection is None:
            context.record_leaf(depth)
            return

    side, vertex, neighbours = selection
    if side == "L":
        include = NodeState(
            state.a | {vertex}, set(state.b), state.ca - {vertex}, set(neighbours)
        )
        exclude = NodeState(
            set(state.a), set(state.b), state.ca - {vertex}, set(state.cb)
        )
    else:
        include = NodeState(
            set(state.a), state.b | {vertex}, set(neighbours), state.cb - {vertex}
        )
        exclude = NodeState(
            set(state.a), set(state.b), set(state.ca), state.cb - {vertex}
        )
    _dense_mbb(graph, context, include, depth + 1, branching)
    _dense_mbb(graph, context, exclude, depth + 1, branching)


# ----------------------------------------------------------------------
# bitset kernel
# ----------------------------------------------------------------------
def _select_any_vertex_bits(
    graph: IndexedBitGraph, state: BitNodeState
) -> Optional[Tuple[str, int, int]]:
    """Bitset naive branching: lagging side, candidate keeping most alive."""

    def pick(adj, candidates: int, others: int) -> Tuple[int, int]:
        best_low = 0
        best_neighbours = 0
        best_kept = -1
        remaining = candidates
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            neighbours = adj[low.bit_length() - 1] & others
            kept = neighbours.bit_count()
            if kept > best_kept:
                best_kept = kept
                best_low = low
                best_neighbours = neighbours
        return best_low, best_neighbours

    prefer_left = state.a.bit_count() <= state.b.bit_count()
    if prefer_left and state.ca:
        low, neighbours = pick(graph.adj_left, state.ca, state.cb)
        return "L", low, neighbours
    if state.cb:
        low, neighbours = pick(graph.adj_right, state.cb, state.ca)
        return "R", low, neighbours
    if state.ca:
        low, neighbours = pick(graph.adj_left, state.ca, state.cb)
        return "L", low, neighbours
    return None


def _dense_mbb_bits(
    graph: IndexedBitGraph,
    context: SearchContext,
    state: BitNodeState,
    depth: int,
    branching: str,
) -> None:
    context.enter_node(depth)
    if is_bounded(
        context,
        state.a.bit_count(),
        state.b.bit_count(),
        state.ca.bit_count(),
        state.cb.bit_count(),
    ):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return

    best_left, best_right = reduce_node_bits(graph, state, context)
    offer_completions_bits(context, graph, state.a, state.b, state.ca, state.cb)
    if is_bounded(
        context,
        state.a.bit_count(),
        state.b.bit_count(),
        state.ca.bit_count(),
        state.cb.bit_count(),
    ):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return
    if not state.ca or not state.cb:
        context.record_leaf(depth)
        return

    if branching == BRANCH_TRIVIALITY_LAST:
        # The reduction's final scans already found, per side, the survivor
        # missing the most (>= 3) opposite candidates.
        if best_left is None and best_right is None:
            # Lemma 3 applies: hand the node to the polynomial solver.
            context.stats.polynomial_cases += 1
            context.record_leaf(depth)
            result = solve_polynomial_case_bits(graph, state, context)
            if result is not None:
                context.offer_biclique(result)
            return
        if best_right is None or (
            best_left is not None and best_left[0] >= best_right[0]
        ):
            selection = ("L", best_left[1], best_left[2])
        else:
            selection = ("R", best_right[1], best_right[2])
    else:
        selection = _select_any_vertex_bits(graph, state)
        if selection is None:
            context.record_leaf(depth)
            return

    side, bit, neighbours = selection
    if side == "L":
        include = BitNodeState(state.a | bit, state.b, state.ca ^ bit, neighbours)
        exclude = BitNodeState(state.a, state.b, state.ca ^ bit, state.cb)
    else:
        include = BitNodeState(state.a, state.b | bit, neighbours, state.cb ^ bit)
        exclude = BitNodeState(state.a, state.b, state.ca, state.cb ^ bit)
    _dense_mbb_bits(graph, context, include, depth + 1, branching)
    _dense_mbb_bits(graph, context, exclude, depth + 1, branching)


def dense_mbb_on_bitgraph(
    graph: IndexedBitGraph,
    context: SearchContext,
    a: int,
    b: int,
    ca: int,
    cb: int,
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    depth: int = 0,
) -> None:
    """Run the bitset ``denseMBB`` kernel from an arbitrary node.

    The four arguments are masks over ``graph``'s indices satisfying the
    solver invariant (every candidate adjacent to the whole opposite
    partial side).  Used by the sparse framework's verification stage,
    which keeps its vertex-centred subgraphs in bitset form end to end.
    """
    _check_branching(branching)
    try:
        _dense_mbb_bits(graph, context, BitNodeState(a, b, ca, cb), depth, branching)
    except SearchAborted:
        pass


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def dense_mbb_on_sets(
    graph: BipartiteGraph,
    context: SearchContext,
    a: Iterable[Vertex],
    b: Iterable[Vertex],
    ca: Iterable[Vertex],
    cb: Iterable[Vertex],
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    depth: int = 0,
    kernel: str = KERNEL_BITS,
) -> None:
    """Run ``denseMBB`` from an arbitrary node (used by ``verifyMBB``).

    The caller provides the partial biclique ``(a, b)`` and the candidate
    sets; results are reported through ``context``.  The candidate sets
    must already satisfy the solver invariant (every candidate adjacent to
    the whole opposite partial side).

    With the default :data:`KERNEL_BITS` the relevant slice of ``graph`` is
    indexed once into an :class:`IndexedBitGraph` and the search runs on
    bitmasks; :data:`KERNEL_SETS` runs directly on the adjacency sets.
    """
    _check_branching(branching)
    _check_kernel(kernel)
    if kernel == KERNEL_BITS:
        a = set(a)
        b = set(b)
        ca = set(ca)
        cb = set(cb)
        bitgraph = IndexedBitGraph.from_bipartite(graph, a | ca, b | cb)
        dense_mbb_on_bitgraph(
            bitgraph,
            context,
            bitgraph.left_mask(a),
            bitgraph.right_mask(b),
            bitgraph.left_mask(ca),
            bitgraph.right_mask(cb),
            branching=branching,
            depth=depth,
        )
        return
    state = NodeState(set(a), set(b), set(ca), set(cb))
    try:
        _dense_mbb(graph, context, state, depth, branching)
    except SearchAborted:
        pass


def dense_mbb(
    graph: BipartiteGraph,
    *,
    context: Optional[SearchContext] = None,
    initial_best: Optional[Biclique] = None,
    branching: str = BRANCH_TRIVIALITY_LAST,
    kernel: str = KERNEL_BITS,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Find a maximum balanced biclique with the dense-graph algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph to search.  The algorithm is correct on any
        bipartite graph; it is *fast* on dense ones (edge density roughly
        0.7 and above), where it converges to polynomially solvable
        subproblems within a near-constant number of branchings.
    context:
        Optional pre-seeded search context (shared incumbent / budgets).
    initial_best:
        Optional known balanced biclique used to seed the incumbent.
    branching:
        :data:`BRANCH_TRIVIALITY_LAST` (default) or :data:`BRANCH_NAIVE`
        for the ``bd3`` ablation.
    kernel:
        :data:`KERNEL_BITS` (default) for the indexed bitset inner loop or
        :data:`KERNEL_SETS` for the original adjacency-set implementation.
        If the graph cannot be indexed (e.g. labels without a usable
        ``repr`` ordering), the set kernel is used as a fallback.
    node_budget, time_budget:
        Optional budgets; exhausted budgets return ``optimal=False``.
    """
    _check_branching(branching)
    _check_kernel(kernel)
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    if initial_best is not None:
        context.offer_biclique(initial_best)
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    optimal = True

    bitgraph: Optional[IndexedBitGraph] = None
    if kernel == KERNEL_BITS:
        try:
            bitgraph = IndexedBitGraph.from_bipartite(graph)
        except (TypeError, OverflowError):
            bitgraph = None

    try:
        if bitgraph is not None:
            state_bits = BitNodeState(
                0, 0, bitgraph.all_left_mask, bitgraph.all_right_mask
            )
            _dense_mbb_bits(bitgraph, context, state_bits, 0, branching)
        else:
            state = NodeState(set(), set(), graph.left, graph.right)
            _dense_mbb(graph, context, state, 0, branching)
    except SearchAborted:
        optimal = False
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )
